"""Ablations beyond the paper's figures (DESIGN.md §7).

- keep-alive duration sweep (§V's "flexible durations" claim): PULSE's
  improvements persist at 5/10/15-minute windows;
- probability-mode ablation: how the per-offset probability shape
  (exact / cumulative / survival / hazard) moves the cost/accuracy
  balance — all modes respect the "higher probability -> higher
  accuracy" principle and all beat OpenWhisk on cost.
"""

from functools import partial

from conftest import run_once

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.core.pulse import PulseConfig, PulsePolicy
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_policies
from repro.experiments.sensitivity import keep_alive_duration_sweep
from repro.runtime.metrics import aggregate_results, percent_improvement


def test_keep_alive_duration_sweep(benchmark, bench_config, bench_trace):
    sweep = run_once(
        benchmark, keep_alive_duration_sweep, bench_config, bench_trace
    )
    print()
    rows = []
    for duration, points in sweep.items():
        p = points[0]
        rows.append(
            {
                "window_min": duration,
                "service_time_%": p.service_time,
                "keepalive_cost_%": p.keepalive_cost,
                "accuracy_%": p.accuracy,
            }
        )
    print(
        format_table(
            rows, title="Ablation: PULSE vs OpenWhisk across keep-alive durations"
        )
    )
    for row in rows:
        assert row["keepalive_cost_%"] > 0


def test_probability_mode_ablation(benchmark, bench_config, bench_trace):
    modes = ["exact", "cumulative", "survival", "hazard"]
    policies = {"OpenWhisk": OpenWhiskPolicy}
    policies.update(
        {
            mode: partial(PulsePolicy, PulseConfig(probability_mode=mode))
            for mode in modes
        }
    )
    results = run_once(benchmark, run_policies, bench_trace, policies, bench_config)
    base = aggregate_results(results["OpenWhisk"])
    rows = []
    for mode in modes:
        agg = aggregate_results(results[mode])
        rows.append(
            {
                "mode": mode,
                "keepalive_cost_%": percent_improvement(
                    base["keepalive_cost_usd"],
                    agg["keepalive_cost_usd"],
                    higher_is_better=False,
                ),
                "service_time_%": percent_improvement(
                    base["service_time_s"],
                    agg["service_time_s"],
                    higher_is_better=False,
                ),
                "accuracy_%": percent_improvement(
                    base["accuracy_percent"],
                    agg["accuracy_percent"],
                    higher_is_better=True,
                ),
            }
        )
    print()
    print(format_table(rows, title="Ablation: per-offset probability shape"))
    for row in rows:
        assert row["keepalive_cost_%"] > 0
        assert row["accuracy_%"] > -6.0
