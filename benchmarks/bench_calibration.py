"""Extension: calibration of the inter-arrival probability estimator.

The function-centric optimizer is only as good as its probabilities;
this bench scores them (Brier skill vs the base rate, reliability bins,
top-band hit rate) on the calibrated trace. Shape: the estimator has
clearly positive skill overall, near-perfect skill on timer functions,
and its reliability bins track the diagonal.
"""

from conftest import run_once

from repro.core.forecast_eval import evaluate_estimator
from repro.experiments.reporting import format_table


def test_estimator_calibration(benchmark, bench_trace):
    report = run_once(benchmark, evaluate_estimator, bench_trace)
    print()
    print(
        f"Estimator calibration: Brier={report.brier_score:.4f} "
        f"(base rate {report.brier_of_base_rate:.4f}), "
        f"skill={report.skill:.3f}, "
        f"top-band hit rate={report.top_band_hit_rate:.3f}, "
        f"n={report.n_predictions}"
    )
    print(
        format_table(
            [
                {"mean_predicted": mp, "observed_frequency": obs, "n": n}
                for mp, obs, n in report.reliability
            ],
            title="Reliability (predicted-probability bins vs outcomes)",
        )
    )
    assert report.skill > 0.1
    assert report.n_predictions > 1000
    # Large bins must sit near the diagonal.
    for mean_pred, observed, n in report.reliability:
        if n > 200:
            assert abs(mean_pred - observed) < 0.25
