"""Memory-capacity extension (DESIGN.md §8, grounded in §III-A).

Prints, per platform memory capacity, both policies' warm-start
fractions and the number of *random forced downgrades* the platform's
pressure valve performed. Shape: under tight capacity the fixed policy
suffers many forced downgrades and loses warm starts; PULSE's flattening
keeps memory under the cap and preempts nearly all of them.
"""

from conftest import run_once

from repro.experiments.capacity import memory_capacity_study
from repro.experiments.reporting import format_table


def test_memory_capacity_pressure_valve(benchmark, bench_config, bench_trace):
    points = run_once(
        benchmark,
        memory_capacity_study,
        (6000.0, 9000.0, 12000.0),
        bench_config,
        bench_trace,
    )
    print()
    print(
        format_table(
            [
                {
                    "capacity_mb": p.capacity_mb,
                    "openwhisk_warm": p.openwhisk_warm_fraction,
                    "pulse_warm": p.pulse_warm_fraction,
                    "openwhisk_forced": p.openwhisk_forced_downgrades,
                    "pulse_forced": p.pulse_forced_downgrades,
                }
                for p in points
            ],
            title="Memory-capacity study: forced random downgrades",
        )
    )
    tightest = points[0]
    assert tightest.openwhisk_forced_downgrades > 5 * max(
        tightest.pulse_forced_downgrades, 1.0
    )
    assert tightest.pulse_warm_fraction >= tightest.openwhisk_warm_fraction
    # With generous capacity the cap stops mattering for PULSE entirely.
    assert points[-1].pulse_forced_downgrades <= points[0].pulse_forced_downgrades
