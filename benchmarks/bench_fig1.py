"""Figure 1 — diverse inter-arrival patterns across functions.

Prints five functions' within-window inter-arrival histograms
(percentage of invocations per minute 1..10 after an invocation). Shape
to match the paper: the five panels have visibly different shapes
(front-loaded, uniform, late, bimodal, periodic spike).
"""

from conftest import run_once

from repro.experiments.motivation import figure1_histograms, histogram_divergence
from repro.experiments.reporting import format_series


def test_figure1_interarrival_histograms(benchmark, bench_trace):
    hists = run_once(benchmark, figure1_histograms, bench_trace)
    print()
    print("Figure 1: % of invocations per minute of the 10-minute window")
    for name, h in hists.items():
        print(" ", format_series(h, label=f"{name:24s}"))
    assert len(hists) == 5
    # The shapes must be clearly diverse (pairwise L1 over percentages).
    assert histogram_divergence(list(hists.values())) > 100.0
