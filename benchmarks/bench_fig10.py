"""Figure 10 — probability-threshold techniques T1 vs T2.

Prints both schemes' improvement triplets over OpenWhisk. Shape to match
the paper: T1 and T2 produce comparable results — PULSE is robust to the
threshold scheme as long as higher probability maps to higher accuracy.
"""

from conftest import run_once

from repro.experiments.reporting import format_table
from repro.experiments.sensitivity import figure10_threshold_schemes


def test_figure10_threshold_schemes(benchmark, bench_config, bench_trace):
    points = run_once(
        benchmark, figure10_threshold_schemes, bench_config, bench_trace
    )
    print()
    print(
        format_table(
            [
                {
                    "scheme": p.label,
                    "service_time_%": p.service_time,
                    "keepalive_cost_%": p.keepalive_cost,
                    "accuracy_%": p.accuracy,
                }
                for p in points
            ],
            title="Figure 10: % improvement over OpenWhisk, T1 vs T2",
        )
    )
    by = {p.label: p for p in points}
    for label in ("T1", "T2"):
        assert by[label].keepalive_cost > 0
        assert by[label].accuracy > -5.0
    # Comparable results: same sign, cost improvements within 25 points.
    assert abs(by["T1"].keepalive_cost - by["T2"].keepalive_cost) < 25.0
