"""Figure 11 — keep-alive memory thresholds M1/M2/M3 (5/10/15 %).

Prints PULSE's improvement triplet over OpenWhisk at each KM_T value.
Shape to match the paper: PULSE balances the three metrics at every
memory constraint — improvements are positive for cost at all
thresholds, with small accuracy dips.
"""

from conftest import run_once

from repro.experiments.reporting import format_table
from repro.experiments.sensitivity import figure11_memory_thresholds


def test_figure11_memory_thresholds(benchmark, bench_config, bench_trace):
    points = run_once(
        benchmark, figure11_memory_thresholds, bench_config, bench_trace
    )
    print()
    print(
        format_table(
            [
                {
                    "KM_T": p.label,
                    "service_time_%": p.service_time,
                    "keepalive_cost_%": p.keepalive_cost,
                    "accuracy_%": p.accuracy,
                }
                for p in points
            ],
            title="Figure 11: % improvement over OpenWhisk across memory thresholds",
        )
    )
    assert len(points) == 3
    for p in points:
        assert p.keepalive_cost > 0
        assert p.accuracy > -5.0
