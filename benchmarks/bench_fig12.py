"""Figure 12 — local window sizes (10/60/120 minutes).

Prints PULSE's improvement triplet over OpenWhisk at each local-window
size. Shape to match the paper: consistent improvements across the
spectrum of window sizes.
"""

from conftest import run_once

from repro.experiments.reporting import format_table
from repro.experiments.sensitivity import figure12_local_windows


def test_figure12_local_window_sizes(benchmark, bench_config, bench_trace):
    points = run_once(benchmark, figure12_local_windows, bench_config, bench_trace)
    print()
    print(
        format_table(
            [
                {
                    "local_window": p.label,
                    "service_time_%": p.service_time,
                    "keepalive_cost_%": p.keepalive_cost,
                    "accuracy_%": p.accuracy,
                }
                for p in points
            ],
            title="Figure 12: % improvement over OpenWhisk across local windows",
        )
    )
    assert len(points) == 3
    for p in points:
        assert p.keepalive_cost > 0
        assert p.accuracy > -5.0
