"""Figure 2 — the same function's inter-arrival pattern drifts over time.

Prints one function's window histogram over the first/middle/last period
of the trace. Shape to match the paper: the three panels differ — the
regime the function follows changes across the trace.
"""

from conftest import run_once

from repro.experiments.motivation import figure2_drift, histogram_divergence
from repro.experiments.reporting import format_series


def test_figure2_interarrival_drift(benchmark, bench_trace):
    panels = run_once(benchmark, figure2_drift, bench_trace)
    print()
    print("Figure 2: one function's histogram across trace periods")
    for label, h in panels.items():
        print(" ", format_series(h, label=f"{label:16s}"))
    assert len(panels) == 3
    assert histogram_divergence(list(panels.values())) > 30.0
