"""Figure 4 — individual-function optimization lowers memory; peaks persist.

Prints the keep-alive memory series of (a) the fixed policy and (b)
PULSE's function-centric stage alone. Shapes to match the paper: the
individual stage reduces average memory but its peak-to-average ratio
stays elevated — motivating the cross-function stage.
"""

from conftest import run_once

from repro.experiments.memory import figure4_and_7_memory
from repro.experiments.reporting import format_series


def test_figure4_individual_optimization_memory(benchmark, bench_config):
    res = run_once(benchmark, figure4_and_7_memory, bench_config)
    ow, ind = res["openwhisk"], res["individual_only"]
    print()
    print("Figure 4: keep-alive memory (MB) over time")
    print(" ", format_series(ow.memory_series_mb, label="(a) OpenWhisk fixed  "))
    print(" ", format_series(ind.memory_series_mb, label="(b) individual-only  "))
    print(
        f"  avg: {ow.mean_memory_mb:.0f} -> {ind.mean_memory_mb:.0f} MB; "
        f"peak-to-avg: {ow.peakiness:.2f} -> {ind.peakiness:.2f}"
    )
    # Individual optimization reduces memory ...
    assert ind.mean_memory_mb < ow.mean_memory_mb
    # ... but does not flatten the spikes (peaks persist).
    assert ind.peakiness >= 0.9 * ow.peakiness
