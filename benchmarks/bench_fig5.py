"""Figure 5 — accuracy vs keep-alive cost trade-off.

Prints the three scatter points (lowest-only, highest-only, PULSE).
Shape to match the paper: PULSE's cost sits near the lowest-quality
point while its accuracy stays near the highest-quality point.
"""

from conftest import run_once

from repro.experiments.reporting import format_table
from repro.experiments.tradeoff import figure5_tradeoff


def test_figure5_cost_accuracy_tradeoff(benchmark, bench_config, bench_trace):
    points = run_once(benchmark, figure5_tradeoff, bench_config, bench_trace)
    print()
    print(
        format_table(
            [
                {
                    "policy": p.label,
                    "keepalive_cost_usd": p.keepalive_cost_usd,
                    "accuracy_percent": p.accuracy_percent,
                }
                for p in points
            ],
            title="Figure 5: accuracy vs keep-alive cost",
        )
    )
    by = {p.label: p for p in points}
    low, high, pulse = by["lowest quality"], by["highest quality"], by["PULSE"]
    assert low.keepalive_cost_usd < high.keepalive_cost_usd
    assert low.accuracy_percent < high.accuracy_percent
    # PULSE: cost meaningfully below highest-only ...
    assert pulse.keepalive_cost_usd < 0.85 * high.keepalive_cost_usd
    # ... accuracy meaningfully above lowest-only, approaching highest.
    acc_span = high.accuracy_percent - low.accuracy_percent
    assert pulse.accuracy_percent > low.accuracy_percent + 0.4 * acc_span
