"""Figure 6 — PULSE vs OpenWhisk: headline improvements and cost error.

Prints (a) the percentage improvements over the fixed policy on the
three headline metrics and (b) sparklines of the per-minute keep-alive
cost error vs the ideal. Shapes to match the paper: keep-alive cost
improves by tens of percent (paper: 39.5 %), service time by high single
digits (paper: 8.8 %), accuracy dips under a few percent (paper: 0.6 %),
and OpenWhisk's cost error sits far above PULSE's.
"""

from conftest import run_once

from repro.experiments.headline import figure6_headline
from repro.experiments.reporting import format_bar_chart, format_series
from repro.utils.stats import summarize


def test_figure6_headline_vs_openwhisk(benchmark, bench_config, bench_trace):
    res = run_once(benchmark, figure6_headline, bench_config, bench_trace)
    print()
    print("Figure 6(a): % improvement of PULSE over OpenWhisk")
    print(format_bar_chart(res.improvements, unit="%"))
    print("Figure 6(b): per-minute keep-alive cost error vs ideal (%)")
    print(" ", format_series(res.openwhisk_cost_error, label="OpenWhisk"))
    print(" ", format_series(res.pulse_cost_error, label="PULSE    "))
    deltas = summarize(
        ow.keepalive_cost_usd - pu.keepalive_cost_usd
        for ow, pu in zip(res.openwhisk_runs, res.pulse_runs)
    )
    print(f"  paired per-run cost saving: {deltas}")
    imp = res.improvements
    assert 10.0 < imp["keepalive_cost"] < 80.0  # paper: 39.5 %
    assert 0.0 < imp["service_time"] < 30.0  # paper: 8.8 %
    assert -5.0 < imp["accuracy"] <= 0.5  # paper: -0.6 %
    assert res.openwhisk_cost_error.mean() > res.pulse_cost_error.mean()
