"""Figure 7 — full PULSE smooths the memory peaks.

Prints the fixed policy's and full PULSE's memory series with their
delivered accuracies. Shapes to match the paper: PULSE reduces average
keep-alive memory, removes the abrupt spikes (lower peak-to-average
ratio than the fixed policy AND than the individual-only stage), and
loses only a fraction of a percent of accuracy.
"""

from conftest import run_once

from repro.experiments.memory import figure4_and_7_memory
from repro.experiments.reporting import format_series


def test_figure7_pulse_memory_smoothing(benchmark, bench_config):
    res = run_once(benchmark, figure4_and_7_memory, bench_config)
    ow, ind, pulse = res["openwhisk"], res["individual_only"], res["pulse"]
    print()
    print("Figure 7: keep-alive memory (MB) over time")
    print(
        " ",
        format_series(ow.memory_series_mb, label="(a) OpenWhisk fixed"),
        f" accuracy={ow.accuracy_percent:.2f}%",
    )
    print(
        " ",
        format_series(pulse.memory_series_mb, label="(b) PULSE          "),
        f" accuracy={pulse.accuracy_percent:.2f}%",
    )
    print(
        f"  avg: {ow.mean_memory_mb:.0f} -> {pulse.mean_memory_mb:.0f} MB; "
        f"max: {ow.max_memory_mb:.0f} -> {pulse.max_memory_mb:.0f} MB"
    )
    assert pulse.mean_memory_mb < ow.mean_memory_mb
    assert pulse.max_memory_mb < ow.max_memory_mb
    # The global stage flattens what the individual stage left spiky.
    assert pulse.max_memory_mb <= ind.max_memory_mb
    # Accuracy within a few percent of the fixed policy's.
    assert ow.accuracy_percent - pulse.accuracy_percent < 4.0
