"""Figure 8 — integrating PULSE into Wild and IceBreaker.

Prints the percent change in accuracy / keep-alive cost / service time
of <technique>+PULSE over <technique> alone. Shapes to match the paper:
both integrations slash keep-alive cost (Wild's dramatically — the paper
reports −99 % — because PULSE cuts Wild's long 99th-percentile
keep-alive tails), and accuracy dips well under a percent of the
variant-unaware baselines... at most a few percent here.
"""

from conftest import run_once

from repro.experiments.integration import figure8_integration
from repro.experiments.reporting import format_bar_chart


def test_figure8_integration(benchmark, bench_config, bench_trace):
    results = run_once(benchmark, figure8_integration, bench_config, bench_trace)
    print()
    for r in results:
        print(f"Figure 8: {r.technique}+PULSE vs {r.technique} (% improvement)")
        print(
            format_bar_chart(
                {
                    "accuracy": r.accuracy,
                    "keepalive_cost": r.keepalive_cost,
                    "service_time": r.service_time,
                },
                unit="%",
            )
        )
        print()
    by = {r.technique: r for r in results}
    # Both integrations cut keep-alive cost; Wild's cut is the larger one
    # (its long keep-alive tails are what PULSE trims away).
    assert by["Wild"].keepalive_cost > 30.0
    assert by["IceBreaker"].keepalive_cost > 5.0
    assert by["Wild"].keepalive_cost > by["IceBreaker"].keepalive_cost
    # Accuracy stays close to the variant-unaware baselines.
    assert by["Wild"].accuracy > -5.0
    assert by["IceBreaker"].accuracy > -5.0
