"""Figure 9 — decision overhead and accuracy: MILP vs PULSE.

Prints (a) the per-run overhead/service-time ratios of both optimizers
and (b) their accuracies. Shapes to match the paper: MILP's overhead
ratio sits roughly an order of magnitude above PULSE's, and MILP's
accuracy is no better (the joint optimization favours cheap variants).
"""

import numpy as np
from conftest import run_once

from repro.experiments.overhead import figure9_overhead
from repro.experiments.reporting import format_table


def test_figure9_milp_vs_pulse(benchmark, bench_config, bench_trace):
    res = run_once(benchmark, figure9_overhead, bench_config, bench_trace)
    print()
    print(
        format_table(
            [
                {
                    "technique": "PULSE",
                    "median_overhead/service": float(
                        np.median(res.pulse_overhead_ratio)
                    ),
                    "accuracy_percent": res.pulse_accuracy,
                },
                {
                    "technique": "MILP",
                    "median_overhead/service": float(
                        np.median(res.milp_overhead_ratio)
                    ),
                    "accuracy_percent": res.milp_accuracy,
                },
            ],
            title="Figure 9: optimizer overhead and accuracy",
        )
    )
    print(f"  MILP / PULSE overhead factor: {res.overhead_factor:.1f}x")
    ratios = list(res.pulse_overhead_ratio) + list(res.milp_overhead_ratio)
    if min(ratios) > 0:
        from repro.utils.stats import ascii_histogram

        print("  distribution of overhead/service over runs (both policies):")
        print(ascii_histogram(ratios, bins=6, log_bins=True))
    assert res.overhead_factor > 2.0  # paper shows ~an order of magnitude
    assert res.milp_accuracy <= res.pulse_accuracy + 0.5
