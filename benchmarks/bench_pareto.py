"""Extension: the cost-accuracy Pareto frontier of PULSE configurations.

Prints every swept configuration's (cost, accuracy) and marks the
Pareto-optimal set. Shape: the fixed anchors bracket the frontier
(all-lowest is the cheapest point, all-highest the most accurate), and
at least one PULSE configuration is Pareto-optimal strictly between
them — the mixed-quality idea buys points the fixed policies cannot
reach.
"""

from conftest import run_once

from repro.experiments.pareto import pulse_configuration_sweep
from repro.experiments.reporting import format_table


def test_pareto_frontier_of_configurations(benchmark, bench_config, bench_trace):
    points = run_once(
        benchmark, pulse_configuration_sweep, bench_config, bench_trace
    )
    print()
    print(
        format_table(
            [
                {
                    "configuration": p.label,
                    "keepalive_cost_usd": p.keepalive_cost_usd,
                    "accuracy_percent": p.accuracy_percent,
                    "frontier": "*" if p.on_frontier else "",
                }
                for p in sorted(points, key=lambda p: p.keepalive_cost_usd)
            ],
            title="PULSE configuration sweep (cost vs accuracy)",
        )
    )
    by = {p.label: p for p in points}
    # The anchors behave as anchors.
    assert by["all-lowest"].keepalive_cost_usd == min(
        p.keepalive_cost_usd for p in points
    )
    assert by["all-highest"].accuracy_percent == max(
        p.accuracy_percent for p in points
    )
    # At least one PULSE configuration sits on the frontier between them.
    pulse_frontier = [
        p
        for p in points
        if p.on_frontier and p.label not in ("all-lowest", "all-highest")
    ]
    assert pulse_frontier
    for p in pulse_frontier:
        assert p.accuracy_percent > by["all-lowest"].accuracy_percent
        assert p.keepalive_cost_usd < by["all-highest"].keepalive_cost_usd
