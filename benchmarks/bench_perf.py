"""Engine throughput — reference minute loop vs event-driven fast path.

Unlike the figure/table benches this one measures the *engine*, not the
paper: one lean run (no series, no container pool, no events) per engine
per policy on the bench trace. The fast path must not be slower than the
reference for the fixed policy — by construction it does strictly less
work there. ``scripts/bench_perf.py`` is the heavier, JSON-emitting
version with the interleaved best-of-N methodology; this bench is the
in-harness smoke.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.pulse import PulsePolicy
from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.utils.profiling import interleaved_best_of

LEAN = SimulationConfig(
    record_series=False, track_containers=False, record_events=False
)


def _run(trace, assignment, factory, engine: str):
    return Simulation(trace, assignment, factory(), LEAN).run(engine=engine)


def test_reference_engine_fixed(benchmark, bench_trace, bench_assignment):
    r = run_once(
        benchmark, _run, bench_trace, bench_assignment, OpenWhiskPolicy,
        "reference",
    )
    assert r.n_invocations == bench_trace.total_invocations()


def test_fast_engine_fixed(benchmark, bench_trace, bench_assignment):
    r = run_once(
        benchmark, _run, bench_trace, bench_assignment, OpenWhiskPolicy, "fast"
    )
    assert r.n_invocations == bench_trace.total_invocations()


def test_fast_engine_pulse(benchmark, bench_trace, bench_assignment):
    r = run_once(
        benchmark, _run, bench_trace, bench_assignment, PulsePolicy, "fast"
    )
    assert r.n_invocations == bench_trace.total_invocations()


def test_fast_not_slower_than_reference(bench_trace, bench_assignment):
    """Paired interleaved timing: the fast path strictly reduces the work
    of a fixed-policy lean run, so its best-of-N must win."""
    ref_t, fast_t = interleaved_best_of(
        [
            lambda: _run(
                bench_trace, bench_assignment, OpenWhiskPolicy, "reference"
            ),
            lambda: _run(bench_trace, bench_assignment, OpenWhiskPolicy, "fast"),
        ],
        repeats=5,
    )
    speedup = ref_t.best / fast_t.best
    print(f"\nfast-path speedup (fixed policy, lean run): x{speedup:.2f}")
    assert fast_t.best <= ref_t.best
