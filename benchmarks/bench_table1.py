"""Table I — comparative analysis of model variants.

Regenerates the per-variant characterization (warm service time,
keep-alive cost, accuracy) with the simulated Lambda profiling campaign
and prints the table. Shape to match the paper: within every family,
higher-quality variants have higher service time, keep-alive cost and
accuracy; the published GPT/BERT/DenseNet scalars are recovered.
"""

from conftest import run_once

from repro.experiments.reporting import format_table
from repro.experiments.table1 import table1_characterization


def test_table1_variant_characterization(benchmark):
    report, rows = run_once(
        benchmark,
        table1_characterization,
        n_warm_samples=300,
        n_cold_samples=10,
        seed=2024,
    )
    print()
    print(
        format_table(
            rows,
            columns=[
                "model",
                "service_time_s",
                "keepalive_cost_cents_per_hour",
                "accuracy_percent",
                "cold_service_time_s",
                "memory_mb",
            ],
            title="Table I: model variants (measured by the simulated profiler)",
        )
    )
    by_model = {r["model"]: r for r in rows}
    # Published values recovered within measurement noise.
    assert abs(by_model["GPT-Small"]["service_time_s"] - 12.90) < 0.5
    assert abs(by_model["BERT-Large"]["keepalive_cost_cents_per_hour"] - 6.12) < 0.2
    # Monotone orderings within each family.
    for fam in ("GPT-Small", "GPT-Medium", "GPT-Large"):
        assert fam in by_model
    assert (
        by_model["GPT-Small"]["service_time_s"]
        < by_model["GPT-Medium"]["service_time_s"]
        < by_model["GPT-Large"]["service_time_s"]
    )
    assert (
        by_model["DenseNet-121"]["accuracy_percent"]
        < by_model["DenseNet-169"]["accuracy_percent"]
        < by_model["DenseNet-201"]["accuracy_percent"]
    )
