"""Tables II & III — strategy comparison over the two post-peak windows.

Prints both tables (all-high / all-low / random-mixed / intelligent over
the 10 minutes after each of the two most prominent invocation peaks).
Shapes to match the paper: service time, cost and accuracy all order
high > mixed > low; the intelligent oracle's accuracy approaches all-high
at lower cost; every strategy serves the same number of (warm)
invocations.
"""

from conftest import run_once

from repro.experiments.peaks import tables2_3_peak_strategies
from repro.experiments.reporting import format_table


def test_tables2_3_peak_strategies(benchmark, bench_trace, bench_assignment):
    tables = run_once(
        benchmark, tables2_3_peak_strategies, bench_trace, bench_assignment
    )
    print()
    for name, rows in tables.items():
        printable = [
            {
                "strategy": r.strategy,
                "service_time_s": r.service_time_s,
                "keepalive_cost_usd": r.keepalive_cost_usd,
                "accuracy_percent": r.accuracy_percent,
                "invocations": r.n_invocations,
            }
            for r in rows
        ]
        print(format_table(printable, title=name))
        print()
    for rows in tables.values():
        by = {r.strategy: r for r in rows}
        assert (
            by["all_high"].keepalive_cost_usd
            > by["random_mixed"].keepalive_cost_usd
            > by["all_low"].keepalive_cost_usd
        )
        assert by["all_high"].accuracy_percent >= by["intelligent"].accuracy_percent
        assert by["intelligent"].accuracy_percent >= by["all_low"].accuracy_percent
        assert by["all_high"].service_time_s > by["all_low"].service_time_s
        assert len({r.n_invocations for r in rows}) == 1  # equal warm starts
