"""Shared scale settings for the benchmark harness.

Every bench reproduces one of the paper's tables or figures at reduced
scale (the paper runs 1000 simulations over a two-week trace; benches run
a handful over 1-2 days so the whole harness finishes in minutes) and
prints the rows/series the paper reports. Scale up by editing
``BENCH_RUNS`` / ``BENCH_HORIZON`` or calling the functions in
``repro.experiments`` directly with paper-scale parameters.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentConfig, default_trace
from repro.traces.schema import MINUTES_PER_DAY

BENCH_RUNS = 2
BENCH_HORIZON = 2 * MINUTES_PER_DAY
BENCH_SEED = 2024


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        n_runs=BENCH_RUNS, horizon_minutes=BENCH_HORIZON, seed=BENCH_SEED
    )


@pytest.fixture(scope="session")
def bench_trace(bench_config):
    return default_trace(bench_config)


@pytest.fixture(scope="session")
def bench_assignment(bench_trace):
    from repro.experiments.assignments import sample_assignment

    return sample_assignment(bench_trace.n_functions, seed=BENCH_SEED)


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with a single measured invocation (simulations are
    seconds long; calibration loops would multiply runtime pointlessly)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
