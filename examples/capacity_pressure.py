#!/usr/bin/env python3
"""Finite platform memory: random pressure-valve downgrades vs PULSE.

§III-A of the paper motivates the cross-function optimizer with the
provider's finite memory: when keep-alive consumption exceeds what is
available, platforms shed *random* keep-alives — possibly exactly the
functions about to be invoked. This example puts a hard memory capacity
on the simulated platform and shows that the fixed 10-minute policy
triggers the random valve constantly, while PULSE's utility-guided
flattening keeps memory below the cap and almost never lets the platform
choose victims at random.

Run:  python examples/capacity_pressure.py
"""

from repro import SyntheticTraceConfig, generate_trace
from repro.experiments.capacity import memory_capacity_study
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentConfig

CAPACITIES_MB = (5000.0, 7000.0, 9000.0, 12000.0)


def main() -> None:
    config = ExperimentConfig(n_runs=3, horizon_minutes=2880, seed=13)
    trace = generate_trace(
        SyntheticTraceConfig(horizon_minutes=config.horizon_minutes, seed=13)
    )
    print(f"workload: {trace}")
    print(f"sweeping platform memory capacity over {CAPACITIES_MB} MB\n")

    points = memory_capacity_study(CAPACITIES_MB, config, trace)
    print(
        format_table(
            [
                {
                    "capacity_mb": p.capacity_mb,
                    "forced_downgrades (OpenWhisk)": p.openwhisk_forced_downgrades,
                    "forced_downgrades (PULSE)": p.pulse_forced_downgrades,
                    "warm_fraction (OpenWhisk)": p.openwhisk_warm_fraction,
                    "warm_fraction (PULSE)": p.pulse_warm_fraction,
                }
                for p in points
            ],
            title="Random pressure-valve activity per policy:",
        )
    )
    print()
    tight = points[0]
    print(
        f"At the tightest capacity ({tight.capacity_mb:.0f} MB) the fixed policy "
        f"suffers {tight.openwhisk_forced_downgrades:.0f} random downgrades per "
        f"run vs PULSE's {tight.pulse_forced_downgrades:.0f}, and loses "
        f"{100 * (tight.pulse_warm_fraction - tight.openwhisk_warm_fraction):.1f} "
        "percentage points of warm starts to them."
    )


if __name__ == "__main__":
    main()
