#!/usr/bin/env python3
"""Writing your own keep-alive policy against the platform simulator.

The engine drives any `repro.runtime.policy.KeepAlivePolicy`. This
example implements a simple *budgeted* policy — keep the highest variant
alive only while a per-function memory-minute budget lasts, then fall
back to the lowest variant — and compares it against OpenWhisk, the
all-low baseline and PULSE on the same workload.

This is the extension surface a provider would use to prototype their
own keep-alive strategy against the paper's metrics.

Run:  python examples/custom_policy.py
"""

from repro import PulsePolicy, Simulation, SyntheticTraceConfig, generate_trace
from repro.baselines import AllLowQualityPolicy, OpenWhiskPolicy
from repro.experiments.assignments import sample_assignment
from repro.experiments.reporting import format_table
from repro.models.variants import ModelVariant
from repro.runtime.policy import KeepAlivePolicy


class BudgetedKeepAlivePolicy(KeepAlivePolicy):
    """Highest quality while a per-function MB-minute budget lasts.

    Every planned highest-variant minute draws its memory footprint from
    the function's budget; once exhausted, the function keeps the lowest
    variant alive instead (never nothing — cold starts hurt more than a
    cheap container).
    """

    name = "budgeted"

    def __init__(self, budget_mb_minutes: float = 200_000.0):
        super().__init__()
        if budget_mb_minutes <= 0:
            raise ValueError("budget must be positive")
        self.budget_mb_minutes = budget_mb_minutes
        self._remaining: dict[int, float] = {}

    def on_bind(self) -> None:
        self._remaining = {
            fid: self.budget_mb_minutes for fid in range(self.n_functions)
        }

    def cold_variant(self, function_id: int, minute: int) -> ModelVariant:
        family = self.family(function_id)
        if self._remaining[function_id] > 0:
            return family.highest
        return family.lowest

    def plan(self, function_id: int, minute: int) -> list[ModelVariant | None]:
        family = self.family(function_id)
        plan: list[ModelVariant | None] = []
        for _ in range(self.keep_alive_window):
            if self._remaining[function_id] >= family.highest.memory_mb:
                self._remaining[function_id] -= family.highest.memory_mb
                plan.append(family.highest)
            else:
                plan.append(family.lowest)
        return plan


def main() -> None:
    trace = generate_trace(SyntheticTraceConfig(horizon_minutes=2880, seed=5))
    assignment = sample_assignment(trace.n_functions, seed=5)

    rows = []
    for policy in (
        OpenWhiskPolicy(),
        AllLowQualityPolicy(),
        BudgetedKeepAlivePolicy(budget_mb_minutes=150_000.0),
        PulsePolicy(),
    ):
        rows.append(Simulation(trace, assignment, policy).run().summary())

    print(format_table(rows, title="Custom policy vs the built-ins:"))
    print()
    print(
        "The budgeted policy interpolates between OpenWhisk and all-low by "
        "construction;\nPULSE reaches a better cost/accuracy point because its "
        "spend follows invocation\nprobability instead of a fixed budget."
    )


if __name__ == "__main__":
    main()
