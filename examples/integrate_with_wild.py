#!/usr/bin/env python3
"""Integrating PULSE into existing warm-up techniques (Figure 8's story).

Runs Serverless-in-the-Wild and IceBreaker standalone (variant-unaware:
they keep the highest-quality model alive in their predicted windows) and
with PULSE layered on top (the base technique keeps its predicted
concurrency; PULSE picks the variants and flattens memory peaks), then
prints the per-technique improvement triplets.

Run:  python examples/integrate_with_wild.py
"""

from repro import Simulation, SimulationConfig, SyntheticTraceConfig, generate_trace
from repro.experiments.assignments import sample_assignment
from repro.experiments.reporting import format_table
from repro.runtime.metrics import percent_improvement
from repro.sota import IceBreakerPolicy, PulseIntegratedPolicy, WildPolicy


def main() -> None:
    trace = generate_trace(SyntheticTraceConfig(horizon_minutes=2880, seed=11))
    assignment = sample_assignment(trace.n_functions, seed=11)
    # Wild keeps containers until the 99th idle-time percentile; the
    # schedule capacity must accommodate those long plans.
    config = SimulationConfig(keep_alive_window=240)

    runs = {}
    for factory in (
        WildPolicy,
        lambda: PulseIntegratedPolicy(WildPolicy()),
        IceBreakerPolicy,
        lambda: PulseIntegratedPolicy(IceBreakerPolicy()),
    ):
        result = Simulation(trace, assignment, factory(), config).run()
        runs[result.policy_name] = result

    print(format_table([r.summary() for r in runs.values()], title="All four runs:"))
    print()
    for base in ("Wild", "IceBreaker"):
        b, i = runs[base], runs[f"{base}+PULSE"]
        print(
            f"{base}+PULSE vs {base}:  "
            "cost %+.1f%%   service time %+.1f%%   accuracy %+.2f%%"
            % (
                percent_improvement(
                    b.keepalive_cost_usd, i.keepalive_cost_usd, higher_is_better=False
                ),
                percent_improvement(
                    b.total_service_time_s,
                    i.total_service_time_s,
                    higher_is_better=False,
                ),
                percent_improvement(
                    b.mean_accuracy, i.mean_accuracy, higher_is_better=True
                ),
            )
        )


if __name__ == "__main__":
    main()
