#!/usr/bin/env python3
"""Peak smoothing: how PULSE's two optimizers shape keep-alive memory.

Reproduces the story of Figures 4 and 7 on one run: the fixed policy's
memory series spikes at invocation bursts; the function-centric stage
alone lowers the average but keeps the spikes; the cross-function stage
(Algorithm 1 peak detection + Algorithm 2 utility downgrades) flattens
them. Also prints PULSE's internal diagnostics: how many minutes were
flagged as peaks, how many downgrades ran, and which functions absorbed
them (the priority structure).

Run:  python examples/peak_smoothing.py
"""

from repro import PulseConfig, PulsePolicy, Simulation, SyntheticTraceConfig, generate_trace
from repro.baselines import OpenWhiskPolicy
from repro.experiments.assignments import sample_assignment
from repro.experiments.reporting import format_series


def main() -> None:
    trace = generate_trace(SyntheticTraceConfig(horizon_minutes=2880, seed=7))
    assignment = sample_assignment(trace.n_functions, seed=7)

    openwhisk = Simulation(trace, assignment, OpenWhiskPolicy()).run()

    individual = PulsePolicy(PulseConfig(enable_global=False))
    individual_run = Simulation(trace, assignment, individual).run()

    pulse = PulsePolicy()
    pulse_run = Simulation(trace, assignment, pulse).run()

    print("keep-alive memory (MB) over the two days:")
    print(" ", format_series(openwhisk.memory_series_mb, label="fixed 10-min     "))
    print(" ", format_series(individual_run.memory_series_mb, label="function-centric "))
    print(" ", format_series(pulse_run.memory_series_mb, label="full PULSE       "))

    print()
    for label, run in [
        ("fixed 10-min", openwhisk),
        ("function-centric", individual_run),
        ("full PULSE", pulse_run),
    ]:
        mem = run.memory_series_mb
        print(
            f"  {label:18s} avg={mem.mean():7.0f} MB  max={mem.max():7.0f} MB  "
            f"accuracy={run.mean_accuracy:.2f}%  cost=${run.keepalive_cost_usd:.2f}"
        )

    print()
    print("PULSE cross-function diagnostics:")
    print(f"  peak minutes flagged : {pulse.n_peak_minutes}")
    print(f"  downgrades performed : {pulse.n_downgrades}")
    print("  downgrade counts per function (the priority structure):")
    for spec, count in zip(trace.functions, pulse.priority_counts):
        family = assignment[spec.function_id].name
        bar = "#" * min(int(count), 60)
        print(f"    {spec.name:22s} [{family:8s}] {count:5d} {bar}")


if __name__ == "__main__":
    main()
