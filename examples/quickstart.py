#!/usr/bin/env python3
"""Quickstart: PULSE vs the fixed 10-minute keep-alive policy.

Generates the calibrated Azure-like trace, assigns one ML model family to
each of the 12 functions, runs the OpenWhisk fixed policy and PULSE over
the same workload, and prints the paper's three headline metrics.

Run:  python examples/quickstart.py
"""

from repro import SyntheticTraceConfig, generate_trace, simulate
from repro.experiments.assignments import sample_assignment
from repro.experiments.reporting import format_table
from repro.runtime.metrics import percent_improvement


def main() -> None:
    # A 2-day, 12-function trace (the paper uses the full 2-week Azure
    # trace; bump horizon_minutes for paper scale).
    trace = generate_trace(SyntheticTraceConfig(horizon_minutes=2880, seed=2024))
    print(f"workload: {trace}")

    # One model family per function, balanced across the zoo.
    assignment = sample_assignment(trace.n_functions, seed=1)

    rows = []
    results = {}
    # Policies resolve by registry name (repro.list_policies() shows all).
    for name in ("openwhisk", "pulse"):
        result = simulate(trace, assignment=assignment, policy=name)
        results[result.policy_name] = result
        rows.append(result.summary())

    print()
    print(format_table(rows, title="One run, same workload and assignment:"))

    ow, pulse = results["OpenWhisk"], results["PULSE"]
    print()
    print("PULSE vs OpenWhisk:")
    print(
        "  keep-alive cost: %+.1f%%   service time: %+.1f%%   accuracy: %+.2f%%"
        % (
            percent_improvement(
                ow.keepalive_cost_usd, pulse.keepalive_cost_usd, higher_is_better=False
            ),
            percent_improvement(
                ow.total_service_time_s,
                pulse.total_service_time_s,
                higher_is_better=False,
            ),
            percent_improvement(
                ow.mean_accuracy, pulse.mean_accuracy, higher_is_better=True
            ),
        )
    )


if __name__ == "__main__":
    main()
