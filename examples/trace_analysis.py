#!/usr/bin/env python3
"""Working with workload traces: the Azure CSV schema and the analyses
behind the paper's motivation figures.

1. generates the calibrated synthetic trace and writes it out as per-day
   CSVs in the public Azure Functions dataset schema;
2. loads it back with the Azure loader (exactly how you would load the
   real dataset: point `load_azure_csv` at its per-day files);
3. prints per-function activity statistics, the Figure-1 inter-arrival
   histograms and the two most prominent invocation peaks used by
   Tables II/III.

Run:  python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro import SyntheticTraceConfig, generate_trace
from repro.experiments.motivation import figure1_histograms
from repro.experiments.reporting import format_series, format_table
from repro.traces import load_azure_csv, write_azure_csv
from repro.traces.analysis import activity_summary, invocation_peaks
from repro.traces.azure import top_functions


def main() -> None:
    trace = generate_trace(SyntheticTraceConfig(horizon_minutes=2880, seed=3))

    with tempfile.TemporaryDirectory() as tmp:
        paths = write_azure_csv(trace, Path(tmp))
        print(f"wrote {len(paths)} Azure-schema day files to {tmp}")
        loaded = load_azure_csv(paths)
        print(f"loaded back: {loaded}")

    # The paper keeps the 12 most commonly used functions of the trace.
    top = top_functions(trace, 12)
    print()
    print(format_table(activity_summary(top), title="Per-function activity:"))

    print()
    print("Figure-1-style inter-arrival histograms (5 most diverse functions):")
    for name, hist in figure1_histograms(top).items():
        print(" ", format_series(hist, label=f"{name:24s}"))

    peaks = invocation_peaks(top, n_peaks=2)
    totals = top.total_per_minute()
    print()
    print(
        "Two most prominent invocation peaks (Tables II/III): "
        + ", ".join(f"minute {m} ({totals[m]} invocations)" for m in peaks)
    )


if __name__ == "__main__":
    main()
