#!/usr/bin/env python3
"""Engine performance benchmark: reference loop vs event-driven fast path.

Times single runs of representative policies (fixed highest / fixed
lowest / PULSE) on the default 2-day synthetic trace in the lean engine
configuration (``record_series=False, track_containers=False,
record_events=False``), plus sweep throughput through
``run_policies`` at ``n_jobs`` in {1, 4}. Writes ``BENCH_perf.json``.

Methodology
-----------
Wall-clock noise on runs this short (~10-50 ms) is large, so each
(reference, fast) pair is timed *interleaved* (ref fast ref fast ...)
with the GC suspended around each sample, and both best-of-N (min) and
median are reported; the speedup headline uses the min, the
least-noise-contaminated estimate (see ``repro.utils.profiling``).

Usage::

    PYTHONPATH=src python scripts/bench_perf.py            # full, ~1 min
    PYTHONPATH=src python scripts/bench_perf.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import os
import platform
from dataclasses import replace

from repro.core.pulse import PulsePolicy
from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.baselines.static import AllLowQualityPolicy
from repro.experiments.assignments import sample_assignment
from repro.experiments.runner import ExperimentConfig, run_policies
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.traces.schema import MINUTES_PER_DAY
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from repro.utils.profiling import interleaved_best_of
from repro.utils.atomicio import atomic_write_json

SEED = 2024

POLICIES = {
    "fixed-highest": OpenWhiskPolicy,
    "fixed-lowest": AllLowQualityPolicy,
    "pulse": PulsePolicy,
}


def bench_single_runs(trace, assignment, repeats: int) -> dict:
    """Interleaved ref-vs-fast timing of one lean run per policy."""
    lean = SimulationConfig(
        record_series=False, track_containers=False, record_events=False
    )
    out = {}
    for name, factory in POLICIES.items():

        def run(engine: str) -> None:
            Simulation(trace, assignment, factory(), lean).run(engine=engine)

        ref_t, fast_t = interleaved_best_of(
            [lambda: run("reference"), lambda: run("fast")], repeats=repeats
        )
        out[name] = {
            "reference": ref_t.as_dict(),
            "fast": fast_t.as_dict(),
            "speedup_best": ref_t.best / fast_t.best,
            "speedup_median": ref_t.median / fast_t.median,
            "fast_runs_per_s": 1.0 / fast_t.best,
            "fast_minutes_per_s": trace.horizon / fast_t.best,
            "reference_runs_per_s": 1.0 / ref_t.best,
            "reference_minutes_per_s": trace.horizon / ref_t.best,
        }
        print(
            f"{name:14s} ref {ref_t.best * 1e3:7.2f} ms   "
            f"fast {fast_t.best * 1e3:7.2f} ms   "
            f"speedup x{out[name]['speedup_best']:.2f} (min) "
            f"x{out[name]['speedup_median']:.2f} (med)"
        )
    return out


def bench_observability(trace, assignment, repeats: int) -> dict:
    """Observed vs unobserved PULSE runs on the fast path.

    The disabled path must be free (``observe=None`` leaves only
    ``is not None`` tests in the hot loops), so ``unobserved`` here is
    directly comparable to the lean single-run numbers above; the
    ``overhead_enabled`` ratio is the full price of recording every
    decision, metric and span.
    """
    lean = SimulationConfig(
        record_series=False, track_containers=False, record_events=False
    )

    def run(observe: bool) -> None:
        cfg = replace(lean, observe=observe)
        Simulation(trace, assignment, PulsePolicy(), cfg).run(engine="fast")

    off_t, on_t = interleaved_best_of(
        [lambda: run(False), lambda: run(True)], repeats=repeats
    )
    out = {
        "unobserved": off_t.as_dict(),
        "observed": on_t.as_dict(),
        "overhead_enabled_best": on_t.best / off_t.best - 1.0,
        "overhead_enabled_median": on_t.median / off_t.median - 1.0,
    }
    print(
        f"observability    off {off_t.best * 1e3:7.2f} ms   "
        f"on {on_t.best * 1e3:7.2f} ms   "
        f"enabled overhead {out['overhead_enabled_best'] * 100:+.1f}% (min) "
        f"{out['overhead_enabled_median'] * 100:+.1f}% (med)"
    )
    return out


def bench_sweep(trace, n_runs: int, repeats: int) -> dict:
    """Sweep throughput (runs/s) through run_policies at n_jobs 1 and 4."""
    out = {}
    for n_jobs in (1, 4):
        cfg = ExperimentConfig(
            n_runs=n_runs,
            horizon_minutes=trace.horizon,
            seed=SEED,
            n_jobs=n_jobs,
            sim=SimulationConfig(record_series=False, track_containers=False),
            engine="fast",
        )

        def sweep() -> None:
            run_policies(trace, dict(POLICIES), cfg)

        (t,) = interleaved_best_of([sweep], repeats=repeats, warmup=0)
        total_runs = n_runs * len(POLICIES)
        out[f"n_jobs={n_jobs}"] = {
            **t.as_dict(),
            "total_runs": total_runs,
            "runs_per_s": total_runs / t.best,
        }
        print(
            f"sweep n_jobs={n_jobs}: {total_runs} runs in {t.best:.2f} s "
            f"({total_runs / t.best:.1f} runs/s)"
        )
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: fewer repeats, shorter trace, skip the sweep",
    )
    parser.add_argument("--out", default="BENCH_perf.json")
    args = parser.parse_args()

    horizon = (MINUTES_PER_DAY // 2) if args.quick else 2 * MINUTES_PER_DAY
    repeats = 3 if args.quick else 7
    trace = generate_trace(
        SyntheticTraceConfig(horizon_minutes=horizon, seed=SEED)
    )
    assignment = sample_assignment(trace.n_functions, seed=SEED)
    print(
        f"trace: {trace.n_functions} functions x {trace.horizon} minutes, "
        f"{trace.total_invocations()} invocations"
    )

    report = {
        "config": {
            "horizon_minutes": horizon,
            "seed": SEED,
            "repeats": repeats,
            "quick": args.quick,
            "engine": "record_series=False track_containers=False "
            "record_events=False",
            "platform": platform.platform(),
            "python": platform.python_version(),
            # Interpret the sweep scaling against this: n_jobs > cpus
            # cannot beat serial.
            "cpus": os.cpu_count(),
        },
        "methodology": (
            "per-policy interleaved reference/fast timing, GC suspended "
            "around each sample, best-of-N (min) and median reported; "
            "headline speedup uses the min"
        ),
        "single_run": bench_single_runs(trace, assignment, repeats),
        "observability": bench_observability(trace, assignment, repeats),
        "sweep": (
            {} if args.quick else bench_sweep(trace, n_runs=24, repeats=2)
        ),
    }

    atomic_write_json(args.out, report)
    print(f"wrote {args.out}")

    if not args.quick:
        fixed = report["single_run"]["fixed-highest"]["speedup_best"]
        if fixed < 3.0:
            raise SystemExit(
                f"fixed-policy speedup x{fixed:.2f} below the x3 target"
            )


if __name__ == "__main__":
    main()
