#!/usr/bin/env python3
"""Engine performance benchmark: reference vs fast path vs fleet kernel.

Times single runs of representative policies (fixed highest / fixed
lowest / PULSE) on the default 2-day synthetic trace in the lean engine
configuration (``record_series=False, track_containers=False,
record_events=False``), plus sweep throughput through
``run_policies`` at ``n_jobs`` in {1, 4}, plus the **fleet scaling
curve**: PULSE runs at 12 / 1k / 10k / 100k functions per engine, each
in its own subprocess so the reported peak RSS belongs to that point
alone. Writes ``BENCH_perf.json``.

Methodology
-----------
Wall-clock noise on runs this short (~10-50 ms) is large, so each
(reference, fast) pair is timed *interleaved* (ref fast ref fast ...)
with the GC suspended around each sample, and both best-of-N (min) and
median are reported; the speedup headline uses the min, the
least-noise-contaminated estimate (see ``repro.utils.profiling``).
Scaling-curve points run for seconds-to-minutes, where a single sample
is noise-safe; trace generation happens before the timer starts but
inside the subprocess, so peak RSS covers the whole working set.

Usage::

    PYTHONPATH=src python scripts/bench_perf.py            # full, ~10 min
    PYTHONPATH=src python scripts/bench_perf.py --quick    # CI smoke

CI perf-smoke gates (all optional flags)::

    --gate-1k-seconds 120     fail if the 1k-function fleet point is slower
    --baseline BENCH_perf.json --max-regression 0.2
                              fail if the machine-normalized 1k fleet
                              throughput (vs the run's own 12-fn fast
                              calibration sample) regressed >20%
    --gate-obs-overhead 0.10  fail if fleet observability (columnar
                              FleetObsSession, sampled traces, spans)
                              costs more than 10% of obs-off throughput
                              at any measured fleet size
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from dataclasses import replace

from repro.core.pulse import PulsePolicy
from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.baselines.static import AllLowQualityPolicy
from repro.experiments.assignments import sample_assignment
from repro.experiments.runner import ExperimentConfig, run_policies
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.traces.schema import MINUTES_PER_DAY
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from repro.utils.profiling import interleaved_best_of
from repro.utils.atomicio import atomic_write_json

SEED = 2024

POLICIES = {
    "fixed-highest": OpenWhiskPolicy,
    "fixed-lowest": AllLowQualityPolicy,
    "pulse": PulsePolicy,
}


def bench_single_runs(trace, assignment, repeats: int) -> dict:
    """Interleaved ref-vs-fast timing of one lean run per policy."""
    lean = SimulationConfig(
        record_series=False, track_containers=False, record_events=False
    )
    out = {}
    for name, factory in POLICIES.items():

        def run(engine: str) -> None:
            Simulation(trace, assignment, factory(), lean).run(engine=engine)

        ref_t, fast_t = interleaved_best_of(
            [lambda: run("reference"), lambda: run("fast")], repeats=repeats
        )
        out[name] = {
            "reference": ref_t.as_dict(),
            "fast": fast_t.as_dict(),
            "speedup_best": ref_t.best / fast_t.best,
            "speedup_median": ref_t.median / fast_t.median,
            "fast_runs_per_s": 1.0 / fast_t.best,
            "fast_minutes_per_s": trace.horizon / fast_t.best,
            "reference_runs_per_s": 1.0 / ref_t.best,
            "reference_minutes_per_s": trace.horizon / ref_t.best,
        }
        print(
            f"{name:14s} ref {ref_t.best * 1e3:7.2f} ms   "
            f"fast {fast_t.best * 1e3:7.2f} ms   "
            f"speedup x{out[name]['speedup_best']:.2f} (min) "
            f"x{out[name]['speedup_median']:.2f} (med)"
        )
    return out


def bench_observability(trace, assignment, repeats: int) -> dict:
    """Observed vs unobserved PULSE runs on the fast path.

    The disabled path must be free (``observe=None`` leaves only
    ``is not None`` tests in the hot loops), so ``unobserved`` here is
    directly comparable to the lean single-run numbers above; the
    ``overhead_enabled`` ratio is the full price of recording every
    decision, metric and span.
    """
    lean = SimulationConfig(
        record_series=False, track_containers=False, record_events=False
    )

    def run(observe: bool) -> None:
        cfg = replace(lean, observe=observe)
        Simulation(trace, assignment, PulsePolicy(), cfg).run(engine="fast")

    off_t, on_t = interleaved_best_of(
        [lambda: run(False), lambda: run(True)], repeats=repeats
    )
    out = {
        "unobserved": off_t.as_dict(),
        "observed": on_t.as_dict(),
        "overhead_enabled_best": on_t.best / off_t.best - 1.0,
        "overhead_enabled_median": on_t.median / off_t.median - 1.0,
    }
    print(
        f"observability    off {off_t.best * 1e3:7.2f} ms   "
        f"on {on_t.best * 1e3:7.2f} ms   "
        f"enabled overhead {out['overhead_enabled_best'] * 100:+.1f}% (min) "
        f"{out['overhead_enabled_median'] * 100:+.1f}% (med)"
    )
    return out


def bench_sweep(trace, n_runs: int, repeats: int) -> dict:
    """Sweep throughput (runs/s) through run_policies at n_jobs 1 and 4."""
    out = {}
    for n_jobs in (1, 4):
        cfg = ExperimentConfig(
            n_runs=n_runs,
            horizon_minutes=trace.horizon,
            seed=SEED,
            n_jobs=n_jobs,
            sim=SimulationConfig(record_series=False, track_containers=False),
            engine="fast",
        )

        def sweep() -> None:
            run_policies(trace, dict(POLICIES), cfg)

        (t,) = interleaved_best_of([sweep], repeats=repeats, warmup=0)
        total_runs = n_runs * len(POLICIES)
        out[f"n_jobs={n_jobs}"] = {
            **t.as_dict(),
            "total_runs": total_runs,
            "runs_per_s": total_runs / t.best,
        }
        print(
            f"sweep n_jobs={n_jobs}: {total_runs} runs in {t.best:.2f} s "
            f"({total_runs / t.best:.1f} runs/s)"
        )
    return out


# The fleet scaling curve: (n_functions, horizon_minutes, engines).
# Horizons shrink as fleets grow so every point (including the slowest
# engine at it) finishes in minutes; throughput is reported as
# function-minutes simulated per second, which is size-comparable.
# The 1k point is identical in quick and full mode so the CI smoke can
# regression-gate against the committed full-mode baseline.
SCALING_POINTS = [
    (12, 1440, ("reference", "fast", "fleet")),
    (1_000, 240, ("fast", "fleet")),
    (10_000, 120, ("fast", "fleet")),
    (100_000, 120, ("fleet",)),
]
QUICK_SCALING_POINTS = [
    # Same horizons as the full-mode points so the 12-fn fast sample can
    # serve as a machine-speed calibration against the committed
    # baseline (see the --baseline gate).
    (12, 1440, ("fast", "fleet")),
    (1_000, 240, ("fleet",)),
]
FLEET_SHARDS = 4
# Obs-overhead points: fleet-engine obs-on vs obs-off at these
# (n_functions, horizon_minutes) sizes; quick mode keeps only the first,
# so 10k leads — that is the size the overhead budget is stated at (the
# fixed per-minute obs cost amortizes with fleet size, so smaller fleets
# over-state the relative overhead).
# ``trace_sample`` sampled fids carry full decision traces, matching the
# documented fleet observability configuration rather than a toy one.
OBS_OVERHEAD_POINTS = [(10_000, 120), (1_000, 240)]
OBS_TRACE_SAMPLE = 8
# A scaling point that cannot finish inside this budget is recorded as a
# DNF instead of stalling the whole bench (the fastpath's per-minute pool
# scans go quadratic in fleet size, so at 10k+ it may simply never come
# back in reasonable time -- which is the very gap the fleet engine
# closes). A DNF by `fast` turns the fleet speedup into a lower bound.
PER_POINT_TIMEOUT_S = 900.0


def run_point(
    n: int, horizon: int, engine: str, shards: int, repeats: int,
    obs: bool = False,
) -> None:
    """Child-process mode: one PULSE run at one scaling point; prints a
    JSON line with its best-of-``repeats`` wall time and this process's
    peak RSS. Repeats are only used at small n, where a single run is in
    noise territory. With ``obs`` the run carries a full observability
    session (fleet: the columnar ``FleetObsSession`` with
    ``OBS_TRACE_SAMPLE`` sampled decision traces) — the configuration
    the obs-overhead gate compares against obs-off."""
    import resource
    import time

    from repro.obs.session import ObservabilityConfig

    trace = generate_trace(
        SyntheticTraceConfig(horizon_minutes=horizon, seed=SEED, n_functions=n)
    )
    assignment = sample_assignment(n, seed=SEED)
    lean = SimulationConfig(
        record_series=False,
        track_containers=False,
        observe=(
            ObservabilityConfig(trace_sample=OBS_TRACE_SAMPLE) if obs else None
        ),
    )
    seconds = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        Simulation(trace, assignment, PulsePolicy(), lean).run(
            engine=engine, shards=shards if engine == "fleet" else 1
        )
        seconds = min(seconds, time.perf_counter() - t0)
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss  # KiB on Linux
    print(
        json.dumps(
            {
                "seconds": seconds,
                "minutes_per_s": horizon / seconds,
                "fn_minutes_per_s": n * horizon / seconds,
                "peak_rss_mb": rss_kb / 1024.0,
            }
        )
    )


def bench_fleet_scaling(quick: bool) -> dict:
    """Run every scaling point in a fresh subprocess and collect the curve."""
    points = []
    for n, horizon, engines in (QUICK_SCALING_POINTS if quick else SCALING_POINTS):
        entry: dict = {
            "n_functions": n,
            "horizon_minutes": horizon,
            "engines": {},
        }
        for engine in engines:
            shards = FLEET_SHARDS if engine == "fleet" else 1
            # Best-of-3 where a single run sits in noise territory
            # (sub-second samples feed the CI regression gate); one run
            # is plenty once a point takes tens of seconds.
            repeats = 3 if n <= 12 or (engine == "fleet" and n <= 1_000) else 1
            try:
                proc = subprocess.run(
                    [
                        sys.executable, os.path.abspath(__file__), "--point",
                        str(n), str(horizon), engine, str(shards),
                        str(repeats), "off",
                    ],
                    capture_output=True,
                    text=True,
                    check=True,
                    timeout=PER_POINT_TIMEOUT_S,
                )
            except subprocess.TimeoutExpired:
                entry["engines"][engine] = {
                    "dnf": True,
                    "timeout_s": PER_POINT_TIMEOUT_S,
                }
                print(
                    f"scaling n={n:>6} h={horizon:>4} {engine:9s} "
                    f"DNF (>{PER_POINT_TIMEOUT_S:.0f} s)"
                )
                continue
            sample = json.loads(proc.stdout.strip().splitlines()[-1])
            entry["engines"][engine] = sample
            print(
                f"scaling n={n:>6} h={horizon:>4} {engine:9s} "
                f"{sample['seconds']:8.2f} s  "
                f"{sample['fn_minutes_per_s']:>12,.0f} fn-min/s  "
                f"rss {sample['peak_rss_mb']:8.1f} MB"
            )
        fast = entry["engines"].get("fast")
        fleet = entry["engines"].get("fleet")
        if fast and fleet and "seconds" in fleet:
            if "seconds" in fast:
                entry["speedup_fleet_vs_fast"] = (
                    fast["seconds"] / fleet["seconds"]
                )
            else:  # fast DNF: report the timeout-derived lower bound
                entry["speedup_fleet_vs_fast"] = (
                    fast["timeout_s"] / fleet["seconds"]
                )
                entry["speedup_is_lower_bound"] = True
        points.append(entry)
    return {
        "shards": FLEET_SHARDS,
        "policy": "pulse",
        "note": (
            "fleet is SLOWER than fast below the crossover (~0.32x at 12 "
            "functions): the columnar kernel pays fixed per-minute vector "
            "overhead that only amortizes with fleet size. Expected — use "
            "fast (or auto) up to ~1k functions, fleet above."
        ),
        "points": points,
    }


def bench_fleet_obs_overhead(quick: bool) -> dict:
    """Fleet throughput with observability on vs off, per fleet size.

    Each (size, mode) runs in its own subprocess (clean RSS, no shared
    allocator warmth); rounds alternate off-first / on-first so both
    slow machine drift and within-pair bias (the second run of a pair
    tends to land on a cooler clock) contaminate both sides equally. The headline ``overhead``
    (what ``--gate-obs-overhead`` checks) compares the *medians* — on
    noisy shared runners a single anomalously fast sample on one side
    skews a best-of ratio by tens of percent, while the median of
    alternating rounds cancels drift; the best-of ratio is still
    reported as ``overhead_best``.
    """
    import statistics

    points = OBS_OVERHEAD_POINTS[:1] if quick else OBS_OVERHEAD_POINTS
    out: dict = {
        "engine": "fleet",
        "shards": FLEET_SHARDS,
        "trace_sample": OBS_TRACE_SAMPLE,
        "points": [],
    }
    for n, horizon in points:
        # Sub-second samples need several alternating rounds before the
        # median stabilizes; tens-of-seconds points need fewer.
        rounds = 7 if n <= 1_000 else 3
        seconds: dict[str, list[float]] = {"off": [], "on": []}
        samples: dict[str, dict] = {}
        for r in range(rounds):
            order = ("off", "on") if r % 2 == 0 else ("on", "off")
            for mode in order:
                proc = subprocess.run(
                    [
                        sys.executable, os.path.abspath(__file__), "--point",
                        str(n), str(horizon), "fleet", str(FLEET_SHARDS),
                        "1", mode,
                    ],
                    capture_output=True,
                    text=True,
                    check=True,
                    timeout=PER_POINT_TIMEOUT_S,
                )
                sample = json.loads(proc.stdout.strip().splitlines()[-1])
                if not seconds[mode] or sample["seconds"] < min(seconds[mode]):
                    samples[mode] = sample
                seconds[mode].append(sample["seconds"])
        med = {m: statistics.median(s) for m, s in seconds.items()}
        overhead = med["on"] / med["off"] - 1.0
        entry = {
            "n_functions": n,
            "horizon_minutes": horizon,
            "obs_off": samples["off"],
            "obs_on": samples["on"],
            "median_off_s": med["off"],
            "median_on_s": med["on"],
            "overhead": overhead,
            "overhead_best": (
                min(seconds["on"]) / min(seconds["off"]) - 1.0
            ),
        }
        out["points"].append(entry)
        print(
            f"obs-overhead n={n:>6} h={horizon:>4} fleet  "
            f"off {med['off']:7.2f} s  on {med['on']:7.2f} s (median)  "
            f"overhead {overhead * 100:+.1f}%"
        )
    return out


def bench_lint() -> dict:
    """Cold vs warm ``repro lint`` over the shipped tree.

    Cold fills a fresh cache directory; warm re-lints with file and
    rule-pack hashes unchanged, so only project-scope files re-parse and
    everything else is a cache hit. The warm report must stay
    byte-identical to the cold one (asserted here and by the CI
    cache-warm step) — the speedup is only meaningful if the incremental
    path changes nothing but the wall clock.
    """
    import tempfile
    import time
    from pathlib import Path

    from repro import analysis

    target = Path(__file__).resolve().parent.parent / "src" / "repro"
    with tempfile.TemporaryDirectory(prefix="lint-bench-") as tmp:
        t0 = time.perf_counter()
        cold_report = analysis.lint_paths(
            [target], cache=analysis.LintCache(Path(tmp))
        )
        cold_s = time.perf_counter() - t0
        warm_cache = analysis.LintCache(Path(tmp))
        t0 = time.perf_counter()
        warm_report = analysis.lint_paths([target], cache=warm_cache)
        warm_s = time.perf_counter() - t0
    identical = analysis.render_json(cold_report) == analysis.render_json(
        warm_report
    )
    if not identical:
        raise SystemExit(
            "warm-cache lint report differs from the cold run — the "
            "incremental path is changing findings"
        )
    out = {
        "target": "src/repro",
        "n_files": cold_report.n_files,
        "rules": cold_report.rule_ids,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup_warm": cold_s / warm_s,
        "cache_hits": warm_cache.hits,
        "cache_misses": warm_cache.misses,
        "warm_report_identical": identical,
    }
    print(
        f"lint             cold {cold_s * 1e3:7.0f} ms   "
        f"warm {warm_s * 1e3:7.0f} ms   "
        f"speedup x{out['speedup_warm']:.1f} "
        f"({warm_cache.hits} hits / {warm_cache.misses} misses)"
    )
    return out


def _scaling_point(report: dict, n: int, engine: str) -> dict | None:
    for point in report.get("fleet_scaling", {}).get("points", []):
        if point["n_functions"] == n and engine in point["engines"]:
            return point["engines"][engine]
    return None


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: fewer repeats, shorter trace, skip the sweep, "
        "scaling curve only up to 1k functions",
    )
    parser.add_argument("--out", default="BENCH_perf.json")
    parser.add_argument(
        "--point",
        nargs=6,
        metavar=("N", "HORIZON", "ENGINE", "SHARDS", "REPEATS", "OBS"),
        help=argparse.SUPPRESS,  # internal: scaling-point child process
    )
    parser.add_argument(
        "--gate-1k-seconds",
        type=float,
        default=None,
        help="fail if the 1k-function fleet scaling point took longer",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_perf.json to regression-gate the 1k fleet "
        "throughput against (machine-normalized, see --max-regression)",
    )
    parser.add_argument(
        "--gate-obs-overhead",
        type=float,
        default=None,
        help="fail if fleet obs-on throughput trails obs-off by more than "
        "this fraction at any measured fleet size (ISSUE budget: 0.10)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.2,
        help="allowed fractional drop of the machine-normalized 1k-fleet "
        "throughput (1k fleet fn-min/s divided by the same run's 12-fn "
        "fast sample, so a uniformly slower CI runner cancels out) vs "
        "--baseline",
    )
    args = parser.parse_args()

    if args.point is not None:
        n, horizon, engine, shards, point_repeats, obs = args.point
        run_point(
            int(n), int(horizon), engine, int(shards), int(point_repeats),
            obs=(obs == "on"),
        )
        return

    horizon = (MINUTES_PER_DAY // 2) if args.quick else 2 * MINUTES_PER_DAY
    repeats = 3 if args.quick else 7
    trace = generate_trace(
        SyntheticTraceConfig(horizon_minutes=horizon, seed=SEED)
    )
    assignment = sample_assignment(trace.n_functions, seed=SEED)
    print(
        f"trace: {trace.n_functions} functions x {trace.horizon} minutes, "
        f"{trace.total_invocations()} invocations"
    )

    report = {
        "config": {
            "horizon_minutes": horizon,
            "seed": SEED,
            "repeats": repeats,
            "quick": args.quick,
            "engine": "record_series=False track_containers=False "
            "record_events=False",
            "platform": platform.platform(),
            "python": platform.python_version(),
            # Interpret the sweep scaling against this: n_jobs > cpus
            # cannot beat serial.
            "cpus": os.cpu_count(),
        },
        "methodology": (
            "per-policy interleaved reference/fast timing, GC suspended "
            "around each sample, best-of-N (min) and median reported; "
            "headline speedup uses the min"
        ),
        "single_run": bench_single_runs(trace, assignment, repeats),
        "observability": bench_observability(trace, assignment, repeats),
        "sweep": (
            {} if args.quick else bench_sweep(trace, n_runs=24, repeats=2)
        ),
        "fleet_scaling": bench_fleet_scaling(args.quick),
        "fleet_observability": bench_fleet_obs_overhead(args.quick),
        "lint": bench_lint(),
    }

    atomic_write_json(args.out, report)
    print(f"wrote {args.out}")

    if args.gate_1k_seconds is not None:
        sample = _scaling_point(report, 1_000, "fleet")
        if sample is None:
            raise SystemExit("no 1k fleet scaling point to gate on")
        if sample["seconds"] > args.gate_1k_seconds:
            raise SystemExit(
                f"1k-function fleet point took {sample['seconds']:.1f} s, "
                f"over the {args.gate_1k_seconds:.1f} s gate"
            )
    if args.gate_obs_overhead is not None:
        points = report["fleet_observability"]["points"]
        if not points:
            raise SystemExit("no fleet obs-overhead points to gate on")
        # The budget is stated at fleet scale, so the gate checks the
        # largest measured fleet; smaller points are informational (the
        # per-minute obs cost is fixed, so their relative overhead is
        # structurally higher).
        point = max(points, key=lambda p: p["n_functions"])
        if point["overhead"] > args.gate_obs_overhead:
            raise SystemExit(
                f"fleet observability overhead at "
                f"{point['n_functions']} functions is "
                f"{point['overhead']:+.1%}, over the "
                f"{args.gate_obs_overhead:.0%} gate"
            )
    if args.baseline is not None:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        # Absolute fn-min/s are not comparable across machines (CI
        # runners are slower than wherever the baseline was produced),
        # so both sides are normalized by their own 12-fn fast sample —
        # a same-process calibration of raw single-core speed. Both
        # modes run that point at the same horizon for this reason.
        ratios = []
        for name, rep in (("baseline", baseline), ("current", report)):
            fleet_1k = _scaling_point(rep, 1_000, "fleet")
            fast_12 = _scaling_point(rep, 12, "fast")
            if fleet_1k is None or fast_12 is None:
                raise SystemExit(
                    f"{name} report lacks the 1k fleet or 12-fn fast point"
                )
            ratios.append(
                fleet_1k["fn_minutes_per_s"] / fast_12["fn_minutes_per_s"]
            )
        base_ratio, our_ratio = ratios
        if our_ratio < base_ratio * (1.0 - args.max_regression):
            raise SystemExit(
                f"1k fleet normalized throughput x{our_ratio:.2f} regressed "
                f"more than {args.max_regression:.0%} vs baseline "
                f"x{base_ratio:.2f}"
            )

    if not args.quick:
        # Timing gates live in full mode only — CI's --quick smoke runs
        # on noisy shared runners where wall-clock ratios flap.
        lint_speedup = report["lint"]["speedup_warm"]
        if lint_speedup < 3.0:
            raise SystemExit(
                f"warm-cache lint speedup x{lint_speedup:.1f} below the "
                "x3 target"
            )
        fixed = report["single_run"]["fixed-highest"]["speedup_best"]
        if fixed < 3.0:
            raise SystemExit(
                f"fixed-policy speedup x{fixed:.2f} below the x3 target"
            )
        for point in report["fleet_scaling"]["points"]:
            if point["n_functions"] == 10_000 and "speedup_fleet_vs_fast" in point:
                if point["speedup_fleet_vs_fast"] < 10.0:
                    raise SystemExit(
                        f"fleet speedup over fastpath at 10k functions is "
                        f"x{point['speedup_fleet_vs_fast']:.1f}, below the "
                        f"x10 target"
                    )


if __name__ == "__main__":
    main()
