#!/usr/bin/env python3
"""Serving-layer benchmark: sustained advance() throughput across many
concurrent tenant sessions.

Boots the stdlib HTTP transport (``repro.serve.app.make_server``) on an
ephemeral loopback port, creates ``--sessions`` tenant sessions (each a
``--n-functions``-function synthetic trace), then drives every session
``--minutes`` minutes forward over HTTP from a pool of client threads —
each ``POST .../advance`` steps one engine minute. The headline is
sustained **minutes/sec across the whole fleet of sessions** (requests
and engine minutes are 1:1).

Two numbers are reported so the transport cost is visible:

- ``http``    — full loopback round trips through ThreadingHTTPServer;
- ``inproc``  — the same drive calling ``SessionManager.advance()``
  directly, which bounds what a faster transport (FastAPI/uvicorn, unix
  sockets) could recover.

A third measurement prices crash durability: the in-process drive run
with the write-ahead journal off vs on (order-balanced rounds, best-of
— wall-clock noise is additive, so the minimum is the robust
estimator), reported as ``journal.overhead_frac`` and gated by
``--gate-journal-overhead`` (the durability budget is <=10%). The
journaled rounds run the production-default 240-minute compaction
cadence, so the gated number is the steady-state write-ahead append
cost; compaction (a snapshot + fsync every 4 simulated hours per
session, ~4 ms each) amortizes below measurement noise at that cadence
and is exercised separately — and aggressively, every 16 minutes — by
``serve_chaos.py``.

Merges a ``serving`` section into ``BENCH_perf.json`` (other sections
untouched).

Usage::

    PYTHONPATH=src python scripts/bench_serve.py             # 100 sessions
    PYTHONPATH=src python scripts/bench_serve.py --quick     # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.serve import JournalSupervisor
from repro.serve.app import ServeLimits, SessionManager, make_server
from repro.utils.atomicio import atomic_write_json

SEED = 2024
#: Compaction cadence for the journaled rounds — the production
#: default (``repro serve --compact-every``). Tighter cadences turn the
#: per-bucket snapshot fsync into a convoy (every lockstep session
#: compacts in the same instant) and measure filesystem batching, not
#: the advance path; the chaos drill stresses that regime instead.
JOURNAL_EVERY_MINUTES = 240


def make_spec(n_functions: int, horizon: int, seed: int) -> dict:
    return {
        "synthetic": {
            "n_functions": n_functions,
            "horizon_minutes": horizon,
            "seed": seed,
        },
        "policy": "pulse",
        "engine": "fast",
        # Lean telemetry: decision records off keeps the payloads small
        # and measures the stepping path, not JSON encoding of records.
        "observe": False,
    }


def post_json(url: str, body: dict) -> dict:
    req = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    # A connect can still be reset under a simultaneous-connect burst
    # (urllib opens a fresh connection per request); retry briefly.
    # Worst case a session advances one extra minute — harmless for a
    # throughput measurement, and the horizon has slack for it.
    for attempt in range(3):
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return json.loads(resp.read())
        except ConnectionError:
            if attempt == 2:
                raise
            time.sleep(0.05 * (attempt + 1))


def drive_http(base_url: str, sids: list[str], minutes: int,
               workers: int) -> float:
    """Advance every session `minutes` minutes over HTTP; return seconds."""

    def drive(sid: str) -> None:
        url = f"{base_url}/v1/sessions/{sid}/advance"
        for _ in range(minutes):
            post_json(url, {})

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for future in [pool.submit(drive, sid) for sid in sids]:
            future.result()
    return time.perf_counter() - start


def drive_inproc(manager: SessionManager, sids: list[str], minutes: int,
                 workers: int) -> float:
    def drive(sid: str) -> None:
        for _ in range(minutes):
            manager.advance(sid, {})

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for future in [pool.submit(drive, sid) for sid in sids]:
            future.result()
    return time.perf_counter() - start


def _journal_round(journaled: bool, sessions: int, minutes: int,
                   n_functions: int, workers: int, seed0: int) -> float:
    """One timed in-process drive with the journal off or on."""
    horizon = minutes + 10
    with tempfile.TemporaryDirectory(prefix="bench-journal-") as tmp:
        manager = SessionManager(
            limits=ServeLimits(max_sessions=sessions),
            journal=JournalSupervisor(
                tmp, every_minutes=JOURNAL_EVERY_MINUTES
            )
            if journaled
            else None,
        )
        try:
            sids = [
                manager.create(make_spec(n_functions, horizon, seed0 + i))["id"]
                for i in range(sessions)
            ]
            drive_inproc(manager, sids, 1, workers)  # warm
            return drive_inproc(manager, sids, minutes, workers)
        finally:
            manager.close_all()


def bench_journal(sessions: int, minutes: int, n_functions: int,
                  workers: int) -> dict:
    """Journal-off vs journal-on, best-of over order-balanced rounds."""
    seconds: dict[bool, list[float]] = {False: [], True: []}
    for i, journaled in enumerate((False, True, True, False, False, True)):
        seconds[journaled].append(
            _journal_round(journaled, sessions, minutes, n_functions,
                           workers, SEED + 1000 * i)
        )
    off_s = min(seconds[False])
    on_s = min(seconds[True])
    total = sessions * minutes
    return {
        "sessions": sessions,
        "minutes_per_session": minutes,
        "compact_every_minutes": JOURNAL_EVERY_MINUTES,
        "rounds_off_seconds": seconds[False],
        "rounds_on_seconds": seconds[True],
        "off_seconds": off_s,
        "on_seconds": on_s,
        "off_minutes_per_s": total / off_s,
        "on_minutes_per_s": total / on_s,
        "overhead_frac": (on_s - off_s) / off_s,
    }


def bench(sessions: int, minutes: int, n_functions: int,
          workers: int) -> dict:
    horizon = 2 * minutes + 10  # room for both drives in one session set
    # Admission control would 503 the default 64-session table; the
    # bench sizes the limit to the fleet it is about to create.
    server = make_server(
        "127.0.0.1", port=0, limits=ServeLimits(max_sessions=sessions)
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base_url = f"http://{host}:{port}"
    try:
        create_start = time.perf_counter()
        sids = [
            post_json(
                f"{base_url}/v1/sessions",
                make_spec(n_functions, horizon, SEED + i),
            )["id"]
            for i in range(sessions)
        ]
        create_s = time.perf_counter() - create_start

        # Warm each session one minute (JITs the stepping path, pays
        # first-minute planning) before the timed windows.
        drive_http(base_url, sids, 1, workers)

        http_s = drive_http(base_url, sids, minutes, workers)
        inproc_s = drive_inproc(server.manager, sids, minutes, workers)

        total = sessions * minutes
        return {
            "sessions": sessions,
            "minutes_per_session": minutes,
            "n_functions": n_functions,
            "client_workers": workers,
            "engine": "fast",
            "create_seconds": create_s,
            "http": {
                "seconds": http_s,
                "minutes_per_s": total / http_s,
                "advances_per_s": total / http_s,
            },
            "inproc": {
                "seconds": inproc_s,
                "minutes_per_s": total / inproc_s,
                "advances_per_s": total / inproc_s,
            },
        }
    finally:
        server.manager.close_all()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=100,
                        help="concurrent tenant sessions (default 100)")
    parser.add_argument("--minutes", type=int, default=60,
                        help="minutes advanced per session (default 60)")
    parser.add_argument("--n-functions", type=int, default=12)
    parser.add_argument("--workers", type=int, default=16,
                        help="client threads driving the advances")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 24 sessions x 12 minutes")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent.parent
                        / "BENCH_perf.json")
    parser.add_argument(
        "--gate-minutes-per-s", type=float, default=None,
        help="fail if sustained HTTP minutes/sec falls below this",
    )
    parser.add_argument(
        "--gate-journal-overhead", type=float, default=None, metavar="FRAC",
        help="fail if the write-ahead journal costs more than this "
             "fraction of in-process advance throughput (e.g. 0.10)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.sessions, args.minutes = 24, 12

    print(
        f"serving bench: {args.sessions} sessions x {args.minutes} minutes "
        f"({args.n_functions} functions each, {args.workers} client threads)"
    )
    result = bench(args.sessions, args.minutes, args.n_functions,
                   args.workers)
    result["platform"] = platform.platform()
    result["python"] = platform.python_version()

    for mode in ("http", "inproc"):
        rate = result[mode]["minutes_per_s"]
        print(f"  {mode:7s} {rate:10.1f} minutes/s "
              f"({result[mode]['seconds']:.2f} s)")

    journal = bench_journal(args.sessions, args.minutes, args.n_functions,
                            args.workers)
    result["journal"] = journal
    print(
        f"  journal off {journal['off_minutes_per_s']:10.1f} minutes/s, "
        f"on {journal['on_minutes_per_s']:10.1f} minutes/s "
        f"(overhead {journal['overhead_frac']:+.1%})"
    )

    if args.out.exists():
        doc = json.loads(args.out.read_text())
    else:
        doc = {}
    doc["serving"] = result
    atomic_write_json(args.out, doc, indent=2, sort_keys=True)
    print(f"wrote {args.out}")

    if args.gate_minutes_per_s is not None:
        rate = result["http"]["minutes_per_s"]
        if rate < args.gate_minutes_per_s:
            print(
                f"GATE FAIL: sustained {rate:.1f} minutes/s < "
                f"{args.gate_minutes_per_s:.1f}",
                file=sys.stderr,
            )
            return 1
        print(f"gate ok: {rate:.1f} >= {args.gate_minutes_per_s:.1f}")

    if args.gate_journal_overhead is not None:
        frac = result["journal"]["overhead_frac"]
        if frac > args.gate_journal_overhead:
            print(
                f"GATE FAIL: journal overhead {frac:.1%} > "
                f"{args.gate_journal_overhead:.1%}",
                file=sys.stderr,
            )
            return 1
        print(
            f"gate ok: journal overhead {frac:.1%} <= "
            f"{args.gate_journal_overhead:.1%}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
