"""Chaos smoke: kill a durable sweep mid-flight, resume it, diff artifacts.

The end-to-end durability drill the CI chaos job runs:

1. an uninterrupted sweep produces the baseline artifacts;
2. the same sweep runs with worker chaos (``--chaos kill:1``: every
   first attempt SIGKILLs itself at its first engine checkpoint) AND the
   sweep *parent* process is SIGKILLed as soon as the manifest shows
   partial progress — the worst realistic crash;
3. ``repro sweep --resume`` restarts from the manifest until done;
4. the recovered ``runs/*.json`` artifacts must be byte-identical to the
   baseline's, and the manifest must show every run done;
5. a lenient-mode sweep over a deliberately corrupted Azure CSV must
   quarantine exactly the bad rows into ``quarantine.jsonl`` and still
   finish.

Exit code 0 only if every assertion holds. Artifacts are left in the
work directory (first argv, default ``./chaos-smoke``) for upload.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}

SWEEP_ARGS = [
    "--policies", "pulse", "openwhisk",
    "--runs", "2", "--jobs", "2",
    "--horizon", "360", "--seed", "7",
    "--engine", "fast", "--checkpoint-every", "60",
]


def repro(*args: str, check: bool = True) -> subprocess.CompletedProcess:
    cmd = [sys.executable, "-m", "repro", *args]
    proc = subprocess.run(cmd, env=ENV, capture_output=True, text=True)
    if check and proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"FAIL: {' '.join(args[:2])} exited {proc.returncode}")
    return proc


def artifacts(out: Path) -> dict[str, bytes]:
    return {
        p.name: p.read_bytes()
        for p in sorted((out / "runs").glob("*.json"))
        if not p.name.endswith(".error.json")
    }


def parent_kill_sweep(out: Path) -> None:
    """Start a chaos sweep and SIGKILL the parent once it shows progress."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "sweep", *SWEEP_ARGS,
         "--chaos", "kill:1", "--out", str(out)],
        env=ENV, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    manifest = out / "manifest.json"
    deadline = time.monotonic() + 120
    while proc.poll() is None and time.monotonic() < deadline:
        time.sleep(0.05)
        if not manifest.exists():
            continue
        try:
            runs = json.loads(manifest.read_text())["runs"].values()
        except (json.JSONDecodeError, KeyError):
            raise SystemExit("FAIL: manifest torn or malformed mid-sweep")
        states = {r["status"] for r in runs}
        if "done" in states and states != {"done"}:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()
            print(f"  parent SIGKILLed with run states {sorted(states)}")
            return
    proc.wait()
    print("  sweep finished before the parent kill landed (still a pass: "
          "the resume below must be a clean no-op)")


def main() -> int:
    work = Path(sys.argv[1] if len(sys.argv) > 1 else "chaos-smoke")
    clean, chaos, dirty = work / "clean", work / "chaos", work / "dirty"

    print("== 1/3 baseline sweep")
    repro("sweep", *SWEEP_ARGS, "--out", str(clean))

    print("== 2/3 chaos sweep: worker SIGKILLs + parent SIGKILL, then resume")
    parent_kill_sweep(chaos)
    for attempt in range(5):
        proc = repro("sweep", "--resume", str(chaos / "manifest.json"),
                     check=False)
        if proc.returncode == 0:
            break
        print(f"  resume attempt {attempt + 1} exited {proc.returncode}")
    else:
        raise SystemExit("FAIL: sweep did not converge in 5 resumes")

    summary = json.loads((chaos / "manifest.json").read_text())
    statuses = {r["status"] for r in summary["runs"].values()}
    if statuses != {"done"}:
        raise SystemExit(f"FAIL: post-resume run states {sorted(statuses)}")
    if artifacts(chaos) != artifacts(clean):
        raise SystemExit("FAIL: recovered artifacts differ from baseline")
    print(f"  artifacts byte-identical across {len(artifacts(clean))} runs "
          f"({summary['n_retries']} retries, {summary['n_timeouts']} timeouts)")

    print("== 3/3 lenient ingestion of a corrupted trace dump")
    csv_dir = dirty / "csv"
    repro("trace", "--horizon", "360", "--seed", "7",
          "--export", str(csv_dir))
    day = sorted(csv_dir.glob("*.csv"))[0]
    with day.open("a") as fh:
        fh.write("owner9999,app9999,fn-corrupt,http" + ",-1" * 360 + "\n")
        fh.write("owner9998,app9998,fn-truncated,http,1,2\n")
    out = dirty / "sweep"
    repro("sweep", "--policies", "pulse", "--runs", "1", "--jobs", "1",
          "--azure-csv", *(str(p) for p in sorted(csv_dir.glob("*.csv"))),
          "--functions", "3", "--lenient", "--checkpoint-every", "60",
          "--out", str(out))
    sidecar = out / "quarantine.jsonl"
    reasons = [json.loads(l)["reason"] for l in
               sidecar.read_text().splitlines()]
    if len(reasons) != 2 or not any("negative" in r for r in reasons):
        raise SystemExit(f"FAIL: unexpected quarantine contents {reasons}")
    manifest = json.loads((out / "manifest.json").read_text())
    if manifest["ingest"]["n_quarantined"] != 2:
        raise SystemExit("FAIL: manifest does not record the quarantine")
    print("  2 corrupt rows quarantined with reasons, sweep still done")

    print("chaos smoke: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
