#!/usr/bin/env python3
"""Run every experiment at report scale and dump the numbers for
EXPERIMENTS.md (paper-vs-measured table).

Heavier than the benches (more runs, longer horizon); takes a few
minutes on a laptop. Writes JSON to stdout / a file for the docs.
"""

from __future__ import annotations

import json
import sys

import numpy as np

from repro.experiments import (
    ExperimentConfig,
    default_trace,
    figure4_and_7_memory,
    figure5_tradeoff,
    figure6_headline,
    figure8_integration,
    figure9_overhead,
    figure10_threshold_schemes,
    figure11_memory_thresholds,
    figure12_local_windows,
    keep_alive_duration_sweep,
    table1_characterization,
    tables2_3_peak_strategies,
)
from repro.experiments.assignments import sample_assignment
from repro.traces.schema import MINUTES_PER_DAY
from repro.utils.atomicio import atomic_write_text


def main(out_path: str | None = None) -> None:
    config = ExperimentConfig(
        n_runs=8, horizon_minutes=4 * MINUTES_PER_DAY, seed=2024
    )
    trace = default_trace(config)
    assignment = sample_assignment(trace.n_functions, seed=config.seed)
    out: dict[str, object] = {"config": {
        "n_runs": config.n_runs, "horizon_minutes": config.horizon_minutes,
        "seed": config.seed,
    }}

    _, rows = table1_characterization(seed=config.seed)
    out["table1"] = rows

    tables = tables2_3_peak_strategies(trace, assignment)
    out["tables2_3"] = {
        name: [r.__dict__ for r in rows] for name, rows in tables.items()
    }

    mem = figure4_and_7_memory(config, trace)
    out["fig4_7"] = {
        k: {
            "mean_memory_mb": v.mean_memory_mb,
            "max_memory_mb": v.max_memory_mb,
            "peakiness": v.peakiness,
            "accuracy_percent": v.accuracy_percent,
        }
        for k, v in mem.items()
    }

    pts = figure5_tradeoff(config, trace)
    out["fig5"] = [p.__dict__ for p in pts]

    headline = figure6_headline(config, trace)
    out["fig6"] = {
        "improvements": headline.improvements,
        "openwhisk_mean_cost_error": float(headline.openwhisk_cost_error.mean()),
        "pulse_mean_cost_error": float(headline.pulse_cost_error.mean()),
        "openwhisk": headline.openwhisk_aggregate,
        "pulse": headline.pulse_aggregate,
    }

    out["fig8"] = [
        {
            "technique": r.technique,
            "accuracy": r.accuracy,
            "keepalive_cost": r.keepalive_cost,
            "service_time": r.service_time,
        }
        for r in figure8_integration(config, trace)
    ]

    ov = figure9_overhead(
        ExperimentConfig(n_runs=4, horizon_minutes=2 * MINUTES_PER_DAY, seed=2024),
    )
    out["fig9"] = {
        "pulse_median_ratio": float(np.median(ov.pulse_overhead_ratio)),
        "milp_median_ratio": float(np.median(ov.milp_overhead_ratio)),
        "overhead_factor": ov.overhead_factor,
        "pulse_accuracy": ov.pulse_accuracy,
        "milp_accuracy": ov.milp_accuracy,
    }

    out["fig10"] = [p.__dict__ for p in figure10_threshold_schemes(config, trace)]
    out["fig11"] = [p.__dict__ for p in figure11_memory_thresholds(config, trace)]
    out["fig12"] = [p.__dict__ for p in figure12_local_windows(config, trace)]
    out["duration_sweep"] = {
        str(k): [p.__dict__ for p in v]
        for k, v in keep_alive_duration_sweep(config, trace).items()
    }

    text = json.dumps(out, indent=2, default=str)
    if out_path:
        atomic_write_text(out_path, text)
    else:
        print(text)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
