#!/usr/bin/env python3
"""Serve-chaos drill: SIGKILL the control plane mid-advance, recover,
byte-diff against the batch path.

The serving-layer counterpart of ``chaos_smoke.py`` — per engine
(reference, fast, fleet):

1. boot ``repro serve`` as a subprocess with ``--journal-dir``;
2. open ``N_TENANTS`` concurrent sessions (mixed clean/fault-plan
   specs) and advance them from parallel client threads;
3. SIGKILL the server while those advances are in flight;
4. restart with ``--recover`` and drive every session to the horizon;
5. require each tenant's decision JSONL and final summary to be
   **byte-identical** to the same spec replayed in-process through
   ``Simulation.run()``'s stepper (the batch path);
6. SIGTERM the recovered server and require a graceful drain: exit
   code 0, and the drained journal directory must itself recover.

Artifacts (journals + snapshots + per-tenant decision JSONL) are left
in the work directory (first argv, default ``./serve-chaos``) for
upload. Exit code 0 only if every assertion holds for every engine.

Usage::

    PYTHONPATH=src python scripts/serve_chaos.py [workdir] [--tenants N]
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
ENV = {
    **os.environ,
    "PYTHONPATH": str(REPO / "src"),
    "PYTHONUNBUFFERED": "1",
}

ENGINES = ("reference", "fast", "fleet")
N_TENANTS = 20
N_FUNCTIONS = 6
MINUTES = 48
FAULTS = "seed=7,spawn=0.2,slow=0.1"
#: SIGKILL once every tenant has at least this many acknowledged advances.
KILL_AFTER_ADVANCES = 5


def tenant_spec(engine: str, tenant: int) -> dict:
    spec = {
        "synthetic": {
            "n_functions": N_FUNCTIONS,
            "horizon_minutes": MINUTES,
            "seed": 100 + tenant,
        },
        "policy": "pulse",
        "engine": engine,
        "observe": True,
    }
    if tenant % 3 == 0:  # a third of the fleet runs under fault injection
        spec["faults"] = FAULTS
    return spec


def request(url: str, method: str = "GET", body: dict | None = None) -> dict:
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(req, timeout=60) as resp:
        return json.loads(resp.read())


def to_jsonl(records: list[dict]) -> bytes:
    normalized = json.loads(json.dumps(records))
    return "".join(
        json.dumps(r, sort_keys=True) + "\n" for r in normalized
    ).encode()


class Server:
    """One ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, journal_dir: Path, *, recover: bool = False) -> None:
        args = [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--journal-dir", str(journal_dir),
            "--compact-every", "16",
        ]
        if recover:
            args.append("--recover")
        self.proc = subprocess.Popen(
            args, env=ENV, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        self.recovered = 0
        self.base = self._await_listening()

    def _await_listening(self) -> str:
        assert self.proc.stdout is not None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise SystemExit(
                    f"FAIL: server exited during startup "
                    f"(rc={self.proc.poll()})"
                )
            line = line.strip()
            print(f"  server: {line}")
            if "recovered" in line:
                self.recovered = int(line.split()[3])
            if "listening on " in line:
                url = line.split("listening on ", 1)[1]
                return url.removesuffix("/v1")
        raise SystemExit("FAIL: server never reported its port")

    def sigkill(self) -> None:
        os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait()

    def sigterm_and_check_drain(self) -> None:
        os.kill(self.proc.pid, signal.SIGTERM)
        try:
            rc = self.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            raise SystemExit("FAIL: SIGTERM drain hung past 60s")
        assert self.proc.stdout is not None
        tail = self.proc.stdout.read()
        if rc != 0:
            sys.stderr.write(tail)
            raise SystemExit(f"FAIL: drain exited {rc}, want 0")
        if "drained" not in tail:
            raise SystemExit(f"FAIL: no drain confirmation in: {tail!r}")


def advance_until_killed(base: str, sids: list[str]) -> threading.Event:
    """Client threads hammering advances; returns the event that flips
    once every tenant has KILL_AFTER_ADVANCES acknowledged steps."""
    counts = {sid: 0 for sid in sids}
    ready = threading.Event()

    def drive(sid: str) -> None:
        while True:
            try:
                step = request(
                    f"{base}/v1/sessions/{sid}/advance", "POST", {}
                )
            except (
                urllib.error.URLError,
                ConnectionError,
                OSError,
                http.client.HTTPException,
            ):
                return  # the SIGKILL landed — that is the point
            counts[sid] += 1
            if min(counts.values()) >= KILL_AFTER_ADVANCES:
                ready.set()
            if step["minute"] >= MINUTES - 1:
                return

    for sid in sids:
        threading.Thread(target=drive, args=(sid,), daemon=True).start()
    return ready


def drill(engine: str, workdir: Path, n_tenants: int) -> None:
    print(f"[{engine}] boot + {n_tenants} tenants")
    journal_dir = workdir / engine / "journal"
    server = Server(journal_dir)

    specs: dict[str, dict] = {}
    for tenant in range(n_tenants):
        spec = tenant_spec(engine, tenant)
        info = request(f"{server.base}/v1/sessions", "POST", spec)
        specs[info["id"]] = spec
    sids = sorted(specs)

    ready = advance_until_killed(server.base, sids)
    if not ready.wait(timeout=300):
        raise SystemExit(
            "FAIL: tenants never reached the kill threshold"
        )
    server.sigkill()
    print(f"[{engine}] SIGKILLed mid-advance "
          f"(>= {KILL_AFTER_ADVANCES} advances per tenant)")

    server = Server(journal_dir, recover=True)
    if server.recovered != n_tenants:
        raise SystemExit(
            f"FAIL: recovered {server.recovered} of {n_tenants} sessions"
        )
    listed = request(f"{server.base}/v1/sessions")["sessions"]
    if sorted(s["id"] for s in listed) != sids:
        raise SystemExit("FAIL: recovered session ids drifted")

    from repro.serve.app import open_session_from_spec

    failures = 0
    for sid in sids:
        info = request(f"{server.base}/v1/sessions/{sid}")
        if not info["done"]:  # a tenant may have finished pre-kill
            request(f"{server.base}/v1/sessions/{sid}/advance", "POST",
                    {"minute": MINUTES - 1})
        gathered = request(
            f"{server.base}/v1/sessions/{sid}/decisions"
        )["decisions"]
        summary = request(f"{server.base}/v1/sessions/{sid}/result")

        batch = open_session_from_spec(dict(specs[sid]))
        batch_summary = json.loads(json.dumps(batch.replay().summary()))
        http_bytes, batch_bytes = to_jsonl(gathered), to_jsonl(
            batch.decisions()
        )
        (workdir / engine / f"{sid}.decisions.jsonl").write_bytes(http_bytes)
        for s in (summary, batch_summary):
            s.pop("wall_clock_s", None)
        if http_bytes != batch_bytes or summary != batch_summary:
            print(f"FAIL: [{engine}] {sid} diverged from batch "
                  f"({len(http_bytes)} vs {len(batch_bytes)} bytes)",
                  file=sys.stderr)
            failures += 1
    if failures:
        raise SystemExit(f"FAIL: {failures} tenant(s) diverged")
    print(f"[{engine}] all {n_tenants} tenants byte-match the batch path")

    server.sigterm_and_check_drain()
    print(f"[{engine}] graceful drain ok (exit 0)")

    # The drained directory must itself be a valid --recover source.
    from repro.serve import JournalSupervisor
    from repro.serve.app import SessionManager

    manager = SessionManager(
        journal=JournalSupervisor(journal_dir, every_minutes=16)
    )
    infos = manager.recover()
    if sorted(i["id"] for i in infos) != sids or not all(
        i["done"] for i in infos
    ):
        raise SystemExit("FAIL: drained journal dir did not recover clean")
    manager.drain()  # keep journals + snapshots as uploadable artifacts
    print(f"[{engine}] drained snapshots recover clean")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workdir", nargs="?", default="serve-chaos")
    parser.add_argument("--tenants", type=int, default=N_TENANTS)
    args = parser.parse_args(argv[1:])
    workdir = Path(args.workdir)
    for engine in ENGINES:
        (workdir / engine).mkdir(parents=True, exist_ok=True)
        drill(engine, workdir, args.tenants)
    print(f"serve-chaos: all engines pass ({args.tenants} tenants each)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
