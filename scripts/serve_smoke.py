#!/usr/bin/env python3
"""Serving-layer CI smoke: the HTTP control plane replays exactly.

Boots the stdlib transport on an ephemeral loopback port, creates one
12-function synthetic-trace session, drives it 60 minutes with
``POST .../advance`` (one request per engine minute), and requires the
decision stream gathered over HTTP to **byte-match** the same trace
stepped in-process — both serialized as canonical JSONL (sorted keys).
Also cross-checks the per-advance decision deltas against the final
``GET .../decisions`` stream and the finished run summaries.

Writes the JSONL decision trace to the path given as argv[1]
(default ``serve-decisions.jsonl``) for upload as a CI artifact.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [artifact.jsonl]
"""

from __future__ import annotations

import json
import sys
import threading
import urllib.request
from pathlib import Path

from repro.serve.app import make_server, open_session_from_spec

N_FUNCTIONS = 12
MINUTES = 60
SPEC = {
    "synthetic": {
        "n_functions": N_FUNCTIONS,
        "horizon_minutes": MINUTES,
        "seed": 2024,
    },
    "policy": "pulse",
    "engine": "fast",
    "observe": True,
}


def request(url: str, method: str = "GET", body: dict | None = None) -> dict:
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


def to_jsonl(records: list[dict]) -> bytes:
    # Canonical bytes: JSON round trip (the wire format) then sorted
    # keys, one record per line.
    normalized = json.loads(json.dumps(records))
    return "".join(
        json.dumps(r, sort_keys=True) + "\n" for r in normalized
    ).encode()


def main(argv: list[str]) -> int:
    artifact = Path(argv[1]) if len(argv) > 1 else Path("serve-decisions.jsonl")

    server = make_server("127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        info = request(f"{base}/v1/sessions", "POST", SPEC)
        sid = info["id"]
        print(f"session {sid}: {info['n_functions']} functions, "
              f"{info['horizon_minutes']} minutes, engine={info['engine']}")

        streamed: list[dict] = []
        for _ in range(MINUTES):
            step = request(f"{base}/v1/sessions/{sid}/advance", "POST", {})
            streamed.extend(step["decisions"])
        print(f"drove {MINUTES} minutes over HTTP: "
              f"{len(streamed)} decision records streamed")

        gathered = request(f"{base}/v1/sessions/{sid}/decisions")["decisions"]
        if to_jsonl(streamed) != to_jsonl(gathered):
            print("FAIL: per-advance deltas != GET /decisions stream",
                  file=sys.stderr)
            return 1

        http_summary = request(f"{base}/v1/sessions/{sid}/result")
    finally:
        server.manager.close_all()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)

    # The same trace stepped in-process (the batch path every run —
    # repro.api.simulate included — goes through).
    batch = open_session_from_spec(dict(SPEC))
    batch_result = batch.replay()
    batch_bytes = to_jsonl(batch.decisions())
    http_bytes = to_jsonl(gathered)

    artifact.write_bytes(http_bytes)
    print(f"wrote {artifact} ({len(http_bytes)} bytes)")

    if http_bytes != batch_bytes:
        print("FAIL: HTTP decision trace != batch decision trace",
              file=sys.stderr)
        return 1
    print(f"decision byte-match ok: {len(gathered)} records, "
          f"{len(http_bytes)} bytes")

    batch_summary = json.loads(json.dumps(batch_result.summary()))
    for summary in (http_summary, batch_summary):
        summary.pop("wall_clock_s", None)
    if http_summary != batch_summary:
        print(f"FAIL: summaries differ\n http:  {http_summary}\n "
              f"batch: {batch_summary}", file=sys.stderr)
        return 1
    print(f"summary match ok: cost ${batch_summary['keepalive_cost_usd']:.4f}, "
          f"warm fraction {batch_summary['warm_fraction']:.4f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
