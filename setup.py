"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP-517 editable
installs (``pip install -e .``) cannot build; ``python setup.py develop``
installs the same editable package without needing wheels.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Reproduction of PULSE: mixed-quality model keep-alive for serverless ML (SC-W 2024)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
)
