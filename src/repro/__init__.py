"""repro — reproduction of PULSE (SC-W 2024).

PULSE is a dynamic keep-alive mechanism for serverless ML inference that
mixes model-quality *variants* inside the conventional 10-minute keep-alive
window to cut keep-alive cost while preserving accuracy and service time.

Top-level convenience re-exports cover the most common entry points; the
subpackages hold the full system:

- :mod:`repro.api`         — policy registry + ``simulate`` facade (start here)
- :mod:`repro.models`      — model-variant zoo (BERT/YOLO/GPT/ResNet/DenseNet)
- :mod:`repro.traces`      — Azure-trace loader + calibrated synthetic generator
- :mod:`repro.runtime`     — discrete-time serverless platform simulator
- :mod:`repro.core`        — the PULSE policy (function-centric + global optimizers)
- :mod:`repro.baselines`   — OpenWhisk fixed keep-alive and static strategies
- :mod:`repro.sota`        — Serverless-in-the-Wild and IceBreaker (+ PULSE shims)
- :mod:`repro.milp`        — MILP comparator (scipy HiGHS backend)
- :mod:`repro.faults`      — fault injection + policy crash isolation
- :mod:`repro.experiments` — per-table / per-figure reproduction harness
"""

from repro.api import list_policies, make_policy, simulate
from repro.models.zoo import default_zoo, ModelZoo
from repro.models.variants import ModelFamily, ModelVariant
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from repro.traces.schema import Trace, FunctionSpec
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.runtime.costmodel import CostModel
from repro.runtime.policy import KeepAlivePolicy
from repro.core.pulse import PulsePolicy, PulseConfig
from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.faults import FaultPlan, ResilientPolicy

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "FaultPlan",
    "FunctionSpec",
    "KeepAlivePolicy",
    "ModelFamily",
    "ModelVariant",
    "ModelZoo",
    "OpenWhiskPolicy",
    "PulseConfig",
    "PulsePolicy",
    "ResilientPolicy",
    "Simulation",
    "SimulationConfig",
    "SyntheticTraceConfig",
    "Trace",
    "default_zoo",
    "generate_trace",
    "list_policies",
    "make_policy",
    "simulate",
    "__version__",
]
