"""Static analysis for the repro codebase: ``repro lint``.

An AST-based lint engine plus a rule pack enforcing this repository's
reproducibility contracts *at lint time* — determinism of the replay
harness (RPR001), parity between the reference and event-driven engines
(RPR002), the policy lifecycle/picklability contract (RPR003), internal
deprecation hygiene (RPR004) and spec-string hygiene (RPR005). See
``docs/architecture.md`` ("Static analysis") for the rule catalogue,
the ``# repro: lint-ok[RULE] reason`` waiver syntax, and how to add a
rule.

Typical use::

    from pathlib import Path
    from repro import analysis

    report = analysis.lint_paths([Path("src/repro")])
    print(analysis.render_text(report))
    raise SystemExit(report.exit_code)
"""

from repro.analysis import rules as _rules  # registers the rule pack
from repro.analysis.engine import (
    META_RULE_ID,
    Finding,
    LintReport,
    Rule,
    Severity,
    SourceModule,
    Suppression,
    iter_python_files,
    lint_paths,
    make_rules,
    register_rule,
    rule_ids,
    rule_summaries,
    run_lint,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "META_RULE_ID",
    "Finding",
    "LintReport",
    "Rule",
    "Severity",
    "SourceModule",
    "Suppression",
    "iter_python_files",
    "lint_paths",
    "make_rules",
    "register_rule",
    "render_json",
    "render_text",
    "rule_ids",
    "rule_summaries",
    "run_lint",
]

del _rules
