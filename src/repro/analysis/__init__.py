"""Static analysis for the repro codebase: ``repro lint``.

An AST-based lint engine plus a rule pack enforcing this repository's
reproducibility contracts *at lint time* — determinism of the replay
harness (RPR001), parity between the reference and event-driven engines
(RPR002), the policy lifecycle/picklability contract (RPR003), internal
deprecation hygiene (RPR004), spec-string hygiene (RPR005), serve-layer
lock discipline (RPR008), columnar-kernel hygiene (RPR009) and
snapshot-schema drift (RPR010). Project-wide rules run over a
:class:`~repro.analysis.project.ProjectContext` — a symbol table, call
graph and reaching-definitions helper built over every linted module —
and per-file results are cached content-addressed
(:class:`~repro.analysis.cache.LintCache`) so warm runs only re-lint
what changed. See ``docs/architecture.md`` ("Analysis core") for the
rule catalogue, the ``# repro: lint-ok[RULE] reason`` waiver syntax,
and how to add a rule.

Typical use::

    from pathlib import Path
    from repro import analysis

    report = analysis.lint_paths([Path("src/repro")])
    print(analysis.render_text(report))
    raise SystemExit(report.exit_code)
"""

from repro.analysis import rules as _rules  # registers the rule pack
from repro.analysis.cache import LintCache
from repro.analysis.engine import (
    ENGINE_ERROR_EXIT,
    META_RULE_ID,
    Finding,
    LintReport,
    Rule,
    Severity,
    SourceModule,
    Suppression,
    iter_python_files,
    lint_paths,
    make_rules,
    project_scope_paths,
    register_rule,
    rule_ids,
    rule_summaries,
    run_lint,
)
from repro.analysis.project import (
    CallGraph,
    ProjectContext,
    ReachingDefs,
    SymbolTable,
)
from repro.analysis.reporters import render_json, render_sarif, render_text

__all__ = [
    "ENGINE_ERROR_EXIT",
    "META_RULE_ID",
    "CallGraph",
    "Finding",
    "LintCache",
    "LintReport",
    "ProjectContext",
    "ReachingDefs",
    "Rule",
    "Severity",
    "SourceModule",
    "Suppression",
    "SymbolTable",
    "iter_python_files",
    "lint_paths",
    "make_rules",
    "project_scope_paths",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "rule_summaries",
    "run_lint",
]

del _rules
