"""The incremental lint cache: skip re-parsing files that didn't change.

One canonical-JSON document (written atomically via
:mod:`repro.utils.atomicio`) maps each linted file's absolute path to
its content sha256, display path, and the per-file findings the last
run produced (meta findings plus suppression-filtered ``check_module``
findings, already serialized with :meth:`Finding.to_dict`). On the next
run a file whose hash matches reuses those findings and skips parsing
entirely — except files inside a selected cross-file rule's
:attr:`~repro.analysis.engine.Rule.project_scope`, which are re-parsed
(but not re-checked) so ``finalize`` sees real ASTs. Cross-file
findings are never cached; they are recomputed every run, which keeps
warm reports byte-identical to cold ones.

Staleness is handled by a *fingerprint*: the sha256 of the cache format
version, the selected rule ids, and the source bytes of every module in
``repro.analysis`` itself. Editing any rule, the engine, or the
selection invalidates the whole cache — a lint cache that survives a
rule change would silently report with yesterday's rules.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.utils.atomicio import atomic_write_json, sha256_bytes, sha256_file

__all__ = ["CACHE_FORMAT_VERSION", "CacheEntry", "LintCache"]

CACHE_FORMAT_VERSION = 1

_CACHE_FILENAME = "lint-cache.json"


@dataclass(frozen=True)
class CacheEntry:
    """What the last run learned about one (unchanged) file."""

    sha256: str
    display: str
    parse_error: bool
    findings: list[dict[str, object]]


def _analysis_fingerprint(selected_rules: list[str]) -> str:
    """Hash of the analysis package's own sources plus the rule
    selection — the cache key component that invalidates on rule edits."""
    package_root = Path(__file__).resolve().parent
    parts: list[str] = [f"format={CACHE_FORMAT_VERSION}"]
    parts.append("rules=" + ",".join(selected_rules))
    for path in sorted(package_root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(package_root).as_posix()
        parts.append(f"{rel}={sha256_file(path)}")
    return sha256_bytes("\n".join(parts).encode("utf-8"))


class LintCache:
    """A directory-backed cache; hand an instance to
    :func:`repro.analysis.run_lint` via ``cache=``.

    Lifecycle: the engine calls :meth:`open` (load + fingerprint check),
    then :meth:`file_sha`/:meth:`get`/:meth:`put` per file, then
    :meth:`save`. A cache directory is safe to delete at any time; the
    next run is simply cold.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.path = self.root / _CACHE_FILENAME
        self._fingerprint = ""
        self._entries: dict[str, CacheEntry] = {}
        self._dirty = False
        #: Diagnostics for benches/tests: files served from the cache
        #: vs processed fresh in the last run.
        self.hits = 0
        self.misses = 0

    def open(self, selected_rules: list[str]) -> None:
        """Load the document; discard it wholesale on any mismatch
        (format bump, rule-pack edit, different rule selection) or
        corruption — an unreadable cache is just a cold run."""
        self._fingerprint = _analysis_fingerprint(selected_rules)
        self._entries = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(doc, dict):
            return
        if doc.get("fingerprint") != self._fingerprint:
            return
        files = doc.get("files")
        if not isinstance(files, dict):
            return
        for key, raw in files.items():
            try:
                self._entries[str(key)] = CacheEntry(
                    sha256=str(raw["sha256"]),
                    display=str(raw["display"]),
                    parse_error=bool(raw["parse_error"]),
                    findings=list(raw["findings"]),
                )
            except (TypeError, KeyError):
                continue  # skip malformed rows, keep the rest

    def file_sha(self, path: Path) -> str | None:
        """Content hash of ``path`` (``None`` if unreadable — the engine
        then treats the file as uncacheable and lints it normally)."""
        try:
            return sha256_file(path)
        except OSError:
            return None

    def get(self, path: Path, sha: str | None) -> CacheEntry | None:
        """The stored entry for ``path`` iff its content hash matches."""
        if sha is None:
            return None
        entry = self._entries.get(str(path.resolve()))
        if entry is None or entry.sha256 != sha:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self,
        path: Path,
        sha: str,
        display: str,
        findings: list[dict[str, object]],
        parse_error: bool,
    ) -> None:
        self._entries[str(path.resolve())] = CacheEntry(
            sha256=sha,
            display=display,
            parse_error=parse_error,
            findings=findings,
        )
        self._dirty = True

    def save(self) -> None:
        """Persist (atomic, canonical JSON). No-op when nothing changed,
        so a fully-warm run leaves the cache file's mtime alone."""
        if not self._dirty:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            self.path,
            {
                "format": CACHE_FORMAT_VERSION,
                "fingerprint": self._fingerprint,
                "files": {
                    key: {
                        "sha256": entry.sha256,
                        "display": entry.display,
                        "parse_error": entry.parse_error,
                        "findings": entry.findings,
                    }
                    for key, entry in sorted(self._entries.items())
                },
            },
        )
        self._dirty = False
