"""The static-analysis engine: modules, rules, suppressions, findings.

This is a deliberately dependency-free (stdlib-only) AST linter built for
*this* repository's contracts — determinism of the replay harness, parity
between the two simulation engines, picklable policies — rather than
general style. The pieces:

- :class:`SourceModule` — one parsed file: source text, AST, and the
  ``# repro: lint-ok[RULE]`` suppression comments found by tokenizing;
- :class:`Rule` — a check. Per-file rules implement
  :meth:`Rule.check_module`; whole-project rules (the engine-parity
  cross-check) implement :meth:`Rule.finalize`, which sees every module;
- :func:`register_rule` — the registry. Rules self-register on import
  (see :mod:`repro.analysis.rules`), so ``rule_ids()`` always reflects
  the loaded rule pack;
- :func:`run_lint` — parse, run every selected rule, apply suppressions,
  and return a sorted :class:`LintReport`.

Suppression syntax::

    something_flagged()  # repro: lint-ok[RPR001] reason for the waiver

A waiver covers its own line; a comment alone on a line covers the next
line (for statements too long to annotate inline). Waivers *must* carry
a reason — a bare ``lint-ok[...]`` is itself reported (RPR000), as is a
waiver naming an unknown rule. ``lint-ok[*]`` waives every rule.
RPR000 findings (engine-level: syntax errors, malformed waivers) cannot
be suppressed.
"""

from __future__ import annotations

import abc
import ast
import io
import re
import tokenize
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

__all__ = [
    "META_RULE_ID",
    "Finding",
    "LintReport",
    "Rule",
    "Severity",
    "SourceModule",
    "Suppression",
    "iter_python_files",
    "lint_paths",
    "make_rules",
    "register_rule",
    "rule_ids",
    "rule_summaries",
    "run_lint",
]

#: Engine-level findings (parse failures, malformed waivers) report under
#: this id; it is not a registrable rule and cannot be suppressed.
META_RULE_ID = "RPR000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ok\[([A-Za-z0-9*,\s]*)\]\s*(.*)"
)
_RULE_ID_RE = re.compile(r"^RPR\d{3}$")


class Severity(str, Enum):
    """How bad a finding is. ``error`` findings gate CI; ``warning``
    findings still fail ``repro lint`` but mark advisory checks."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One reported problem, anchored to a file position."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: lint-ok[...]`` waiver comment."""

    line: int
    rules: frozenset[str]
    reason: str
    standalone: bool  # comment is alone on its line -> covers the next line

    def covers(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


@dataclass
class SourceModule:
    """One parsed Python file, ready for rules to inspect."""

    path: Path
    display: str
    source: str
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, display: str | None = None) -> "SourceModule":
        """Parse ``path``; raises :class:`SyntaxError` on a broken file."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        module = cls(
            path=path,
            display=display if display is not None else _display(path),
            source=source,
            tree=tree,
        )
        module.suppressions = _scan_suppressions(source)
        return module

    def suppression_for(self, line: int) -> Suppression | None:
        """The waiver covering ``line``: an inline comment on the line
        itself, or a standalone comment above it (a waiver too long for
        one comment line may continue over plain comment lines — the
        whole block covers the next code line)."""
        supp = self.suppressions.get(line)
        if supp is not None:
            return supp
        lines = self.source.splitlines()
        current = line - 1
        while current >= 1:
            above = self.suppressions.get(current)
            if above is not None:
                return above if above.standalone else None
            text = lines[current - 1].strip() if current - 1 < len(lines) else ""
            if text.startswith("#"):
                current -= 1  # plain comment line: keep scanning upward
                continue
            return None
        return None


def _display(path: Path) -> str:
    """Repo-relative path when possible — stable across machines."""
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def _scan_suppressions(source: str) -> dict[int, Suppression]:
    """Find every ``lint-ok`` comment, via tokenize so string literals
    that merely *contain* the pattern are not misread as waivers."""
    out: dict[int, Suppression] = {}
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        rules = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        text = lines[line - 1] if line - 1 < len(lines) else ""
        out[line] = Suppression(
            line=line,
            rules=rules,
            reason=match.group(2).strip(),
            standalone=text.lstrip().startswith("#"),
        )
    return out


# -- the rule registry -------------------------------------------------------
class Rule(abc.ABC):
    """One check. Subclass, set ``id``/``severity``/``summary``, implement
    :meth:`check_module` (per file) and/or :meth:`finalize` (whole project),
    and decorate with :func:`register_rule`.

    A fresh instance is created per lint run, so rules may keep state
    across :meth:`check_module` calls and read it in :meth:`finalize`.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        """Findings for one file. Default: none."""
        return ()

    def finalize(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        """Findings requiring the whole file set (cross-file rules)."""
        return ()

    def finding(
        self,
        module: SourceModule,
        node: ast.AST,
        message: str,
        severity: Severity | None = None,
    ) -> Finding:
        """Build a finding anchored at ``node``'s position."""
        return Finding(
            path=module.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            severity=severity if severity is not None else self.severity,
            message=message,
        )


_RULE_TYPES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add a rule type to the registry."""
    if not _RULE_ID_RE.match(cls.id) or cls.id == META_RULE_ID:
        raise ValueError(
            f"rule id must match RPRnnn (and not {META_RULE_ID}), "
            f"got {cls.id!r}"
        )
    if not cls.summary:
        raise ValueError(f"rule {cls.id} must carry a one-line summary")
    _RULE_TYPES[cls.id] = cls
    return cls


def rule_ids() -> list[str]:
    """Sorted ids of every registered rule."""
    return sorted(_RULE_TYPES)


def rule_summaries() -> dict[str, str]:
    """id -> one-line summary, for ``repro lint --help``-style listings."""
    return {rid: _RULE_TYPES[rid].summary for rid in rule_ids()}


def make_rules(ids: Sequence[str] | None = None) -> list[Rule]:
    """Fresh rule instances for ``ids`` (default: every registered rule)."""
    if ids is None:
        selected = rule_ids()
    else:
        unknown = sorted(set(ids) - set(_RULE_TYPES))
        if unknown:
            raise ValueError(
                f"unknown rule ids {unknown}; known: {rule_ids()}"
            )
        selected = sorted(set(ids))
    return [_RULE_TYPES[rid]() for rid in selected]


# -- running -----------------------------------------------------------------
@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding]
    n_files: int
    rule_ids: list[str]

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def by_rule(self) -> dict[str, list[Finding]]:
        out: dict[str, list[Finding]] = {}
        for finding in self.findings:
            out.setdefault(finding.rule, []).append(finding)
        return out


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated list of
    ``.py`` files (``__pycache__`` excluded)."""
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def _meta_findings(module: SourceModule) -> list[Finding]:
    """Engine-level checks on the waiver comments themselves."""
    out: list[Finding] = []
    known = set(_RULE_TYPES)
    for supp in module.suppressions.values():
        if not supp.reason:
            out.append(
                Finding(
                    path=module.display,
                    line=supp.line,
                    col=0,
                    rule=META_RULE_ID,
                    severity=Severity.ERROR,
                    message=(
                        "lint-ok waiver must carry a reason string after "
                        "the bracket, e.g. '# repro: lint-ok[RPR001] seeded "
                        "via rng_from_seed'"
                    ),
                )
            )
        unknown = sorted(supp.rules - known - {"*"})
        if not supp.rules:
            unknown = ["<empty>"]
        if unknown:
            out.append(
                Finding(
                    path=module.display,
                    line=supp.line,
                    col=0,
                    rule=META_RULE_ID,
                    severity=Severity.ERROR,
                    message=(
                        f"lint-ok waiver names unknown rule(s) "
                        f"{', '.join(unknown)}; known: "
                        f"{', '.join(rule_ids())} (or *)"
                    ),
                )
            )
    return out


def run_lint(
    files: Sequence[Path],
    rule_ids: Sequence[str] | None = None,
) -> LintReport:
    """Lint ``files`` with the selected rules and return the report.

    Findings covered by a reasoned waiver are dropped; engine-level
    problems (unparseable files, malformed waivers) always survive.
    """
    rules = make_rules(rule_ids)
    modules: list[SourceModule] = []
    findings: list[Finding] = []
    for path in files:
        try:
            module = SourceModule.load(path)
        except (SyntaxError, ValueError) as exc:
            findings.append(
                Finding(
                    path=_display(path),
                    line=getattr(exc, "lineno", None) or 1,
                    col=getattr(exc, "offset", None) or 0,
                    rule=META_RULE_ID,
                    severity=Severity.ERROR,
                    message=f"cannot parse file: {exc.__class__.__name__}: {exc}",
                )
            )
            continue
        modules.append(module)
        findings.extend(_meta_findings(module))

    by_display = {module.display: module for module in modules}
    raw: list[Finding] = []
    for rule in rules:
        for module in modules:
            raw.extend(rule.check_module(module))
        raw.extend(rule.finalize(modules))

    for finding in raw:
        module = by_display.get(finding.path)
        if module is not None:
            supp = module.suppression_for(finding.line)
            if supp is not None and supp.covers(finding.rule) and supp.reason:
                continue
        findings.append(finding)

    findings.sort(key=lambda f: f.sort_key)
    return LintReport(
        findings=findings,
        n_files=len(files),
        rule_ids=[rule.id for rule in rules],
    )


def lint_paths(
    paths: Iterable[Path],
    rule_ids: Sequence[str] | None = None,
) -> LintReport:
    """Convenience wrapper: expand ``paths`` and :func:`run_lint` them."""
    return run_lint(iter_python_files(paths), rule_ids=rule_ids)
