"""The static-analysis engine: modules, rules, suppressions, findings.

This is a deliberately dependency-free (stdlib-only) AST linter built for
*this* repository's contracts — determinism of the replay harness, parity
between the simulation engines, lock discipline in the serving layer,
columnar-kernel hygiene, snapshot-schema drift — rather than general
style. The pieces:

- :class:`SourceModule` — one parsed file: source text, AST, and the
  ``# repro: lint-ok[RULE]`` suppression comments found by tokenizing;
- :class:`Rule` — a check. Per-file rules implement
  :meth:`Rule.check_module`; whole-project rules (engine parity, lock
  discipline, schema drift) implement :meth:`Rule.finalize`, which
  receives a :class:`~repro.analysis.project.ProjectContext` — a
  ``Sequence[SourceModule]`` that also carries the symbol table, call
  graph and reaching-definitions oracles. A project rule declares the
  files its ``finalize`` needs via :attr:`Rule.project_scope` so the
  incremental cache knows to keep parsing them even when unchanged;
- :func:`register_rule` — the registry. Rules self-register on import
  (see :mod:`repro.analysis.rules`), so ``rule_ids()`` always reflects
  the loaded rule pack;
- :func:`run_lint` — parse, run every selected rule, apply suppressions,
  and return a sorted :class:`LintReport`. Pass ``cache=`` (a
  :class:`~repro.analysis.cache.LintCache`) to skip re-parsing files
  whose sha256 is unchanged, and ``jobs=`` to fan per-file work out to a
  process pool.

Suppression syntax::

    something_flagged()  # repro: lint-ok[RPR001] reason for the waiver

A waiver covers its own line; a comment alone on a line covers the next
line (for statements too long to annotate inline). Waivers *must* carry
a reason — a bare ``lint-ok[...]`` is itself reported (RPR000), as is a
waiver naming an unknown rule. ``lint-ok[*]`` waives every rule.
RPR000 findings (engine-level: syntax errors, malformed waivers) cannot
be suppressed.

Exit codes: ``0`` clean, ``1`` findings, ``2`` engine error — at least
one file could not be parsed at all (the report still carries the
RPR000 findings for the broken files).
"""

from __future__ import annotations

import abc
import ast
import io
import os
import re
import tokenize
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:
    from repro.analysis.cache import CacheEntry, LintCache

__all__ = [
    "META_RULE_ID",
    "Finding",
    "LintReport",
    "Rule",
    "Severity",
    "SourceModule",
    "Suppression",
    "iter_python_files",
    "lint_paths",
    "make_rules",
    "project_scope_paths",
    "register_rule",
    "rule_ids",
    "rule_summaries",
    "run_lint",
]

#: Engine-level findings (parse failures, malformed waivers) report under
#: this id; it is not a registrable rule and cannot be suppressed.
META_RULE_ID = "RPR000"

#: ``LintReport.exit_code`` when at least one file could not be parsed.
ENGINE_ERROR_EXIT = 2

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ok\[([A-Za-z0-9*,\s]*)\]\s*(.*)"
)
_RULE_ID_RE = re.compile(r"^RPR\d{3}$")


class Severity(str, Enum):
    """How bad a finding is. ``error`` findings gate CI; ``warning``
    findings still fail ``repro lint`` but mark advisory checks."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One reported problem, anchored to a file position."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the incremental cache)."""
        return cls(
            path=str(doc["path"]),
            line=int(doc["line"]),  # type: ignore[call-overload]
            col=int(doc["col"]),  # type: ignore[call-overload]
            rule=str(doc["rule"]),
            severity=Severity(str(doc["severity"])),
            message=str(doc["message"]),
        )


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: lint-ok[...]`` waiver comment."""

    line: int
    rules: frozenset[str]
    reason: str
    standalone: bool  # comment is alone on its line -> covers the next line

    def covers(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


@dataclass
class SourceModule:
    """One parsed Python file, ready for rules to inspect."""

    path: Path
    display: str
    source: str
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, display: str | None = None) -> "SourceModule":
        """Parse ``path``; raises :class:`SyntaxError` on a broken file."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        module = cls(
            path=path,
            display=display if display is not None else _display(path),
            source=source,
            tree=tree,
        )
        module.suppressions = _scan_suppressions(source)
        return module

    def suppression_for(self, line: int) -> Suppression | None:
        """The waiver covering ``line``: an inline comment on the line
        itself, or a standalone comment above it (a waiver too long for
        one comment line may continue over plain comment lines — the
        whole block covers the next code line)."""
        supp = self.suppressions.get(line)
        if supp is not None:
            return supp
        lines = self.source.splitlines()
        current = line - 1
        while current >= 1:
            above = self.suppressions.get(current)
            if above is not None:
                return above if above.standalone else None
            text = lines[current - 1].strip() if current - 1 < len(lines) else ""
            if text.startswith("#"):
                current -= 1  # plain comment line: keep scanning upward
                continue
            return None
        return None


def _display(path: Path) -> str:
    """Repo-relative path when possible — stable across machines."""
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def _scan_suppressions(source: str) -> dict[int, Suppression]:
    """Find every ``lint-ok`` comment, via tokenize so string literals
    that merely *contain* the pattern are not misread as waivers."""
    out: dict[int, Suppression] = {}
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        rules = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        text = lines[line - 1] if line - 1 < len(lines) else ""
        out[line] = Suppression(
            line=line,
            rules=rules,
            reason=match.group(2).strip(),
            standalone=text.lstrip().startswith("#"),
        )
    return out


# -- the rule registry -------------------------------------------------------
class Rule(abc.ABC):
    """One check. Subclass, set ``id``/``severity``/``summary``, implement
    :meth:`check_module` (per file) and/or :meth:`finalize` (whole project),
    and decorate with :func:`register_rule`.

    A fresh instance is created per lint run. Per-file rules must be
    stateless across files (``check_module`` calls may run in separate
    worker processes and their filtered findings are cached per file);
    cross-file logic belongs in :meth:`finalize`, which always runs in
    the parent process over every parsed module.

    A rule that implements :meth:`finalize` should also declare
    :attr:`project_scope`: a static predicate naming the files its
    cross-file analysis reads. Those files are (re-)parsed on every run
    — even when the incremental cache says they are unchanged — so
    ``finalize`` always sees real ASTs. A project rule without a scope
    forces every file to be parsed every run (correct, but forfeits the
    cache's speedup).
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""
    #: Static predicate: does this rule's ``finalize`` need ``path``
    #: parsed? ``None`` (the default) means "no declared scope".
    project_scope: ClassVar[Callable[[Path], bool] | None] = None

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        """Findings for one file. Default: none."""
        return ()

    def finalize(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        """Findings requiring the whole file set (cross-file rules).

        ``modules`` is a :class:`~repro.analysis.project.ProjectContext`
        — iterable exactly like the historical ``Sequence[SourceModule]``
        but also exposing ``.symbols`` / ``.call_graph`` / ``.reaching``.
        """
        return ()

    def finding(
        self,
        module: SourceModule,
        node: ast.AST,
        message: str,
        severity: Severity | None = None,
    ) -> Finding:
        """Build a finding anchored at ``node``'s position."""
        return Finding(
            path=module.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            severity=severity if severity is not None else self.severity,
            message=message,
        )


_RULE_TYPES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add a rule type to the registry."""
    if not _RULE_ID_RE.match(cls.id) or cls.id == META_RULE_ID:
        raise ValueError(
            f"rule id must match RPRnnn (and not {META_RULE_ID}), "
            f"got {cls.id!r}"
        )
    if not cls.summary:
        raise ValueError(f"rule {cls.id} must carry a one-line summary")
    _RULE_TYPES[cls.id] = cls
    return cls


def rule_ids() -> list[str]:
    """Sorted ids of every registered rule."""
    return sorted(_RULE_TYPES)


def rule_summaries() -> dict[str, str]:
    """id -> one-line summary, for ``repro lint --help``-style listings."""
    return {rid: _RULE_TYPES[rid].summary for rid in rule_ids()}


def make_rules(ids: Sequence[str] | None = None) -> list[Rule]:
    """Fresh rule instances for ``ids`` (default: every registered rule)."""
    if ids is None:
        selected = rule_ids()
    else:
        unknown = sorted(set(ids) - set(_RULE_TYPES))
        if unknown:
            raise ValueError(
                f"unknown rule ids {unknown}; known: {rule_ids()}"
            )
        selected = sorted(set(ids))
    return [_RULE_TYPES[rid]() for rid in selected]


def _overrides(rule: Rule, method: str) -> bool:
    return getattr(type(rule), method) is not getattr(Rule, method)


def _scope_predicates(
    rules: Sequence[Rule],
) -> tuple[list[Callable[[Path], bool]], bool]:
    """The declared project scopes of the selected cross-file rules,
    plus whether any project rule left its scope undeclared (in which
    case every file must be parsed)."""
    predicates: list[Callable[[Path], bool]] = []
    undeclared = False
    for rule in rules:
        if not _overrides(rule, "finalize"):
            continue
        scope = type(rule).project_scope
        if scope is None:
            undeclared = True
        else:
            predicates.append(scope)
    return predicates, undeclared


def project_scope_paths(
    files: Sequence[Path],
    rule_ids: Sequence[str] | None = None,
) -> list[Path]:
    """The subset of ``files`` some selected cross-file rule needs parsed.

    Used by ``repro lint --changed`` to widen a git-diff file set so the
    cross-file rules (engine parity, lock discipline, schema drift)
    still see every module they reason about.
    """
    rules = make_rules(rule_ids)
    predicates, undeclared = _scope_predicates(rules)
    if undeclared:
        return list(files)
    return [
        path for path in files if any(pred(path) for pred in predicates)
    ]


# -- running -----------------------------------------------------------------
@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding]
    n_files: int
    rule_ids: list[str]
    #: Files that could not be parsed at all (their RPR000 findings are
    #: in :attr:`findings`); drives the distinct engine-error exit code.
    n_parse_errors: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        """``0`` clean, ``1`` findings, ``2`` engine error (unparseable
        file) — so CI and scripts can tell a broken tree from a dirty
        one."""
        if self.n_parse_errors:
            return ENGINE_ERROR_EXIT
        return 0 if self.clean else 1

    def by_rule(self) -> dict[str, list[Finding]]:
        out: dict[str, list[Finding]] = {}
        for finding in self.findings:
            out.setdefault(finding.rule, []).append(finding)
        return out


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a de-duplicated list of ``.py``
    files.

    The ``__pycache__`` exclusion applies only to directory expansion:
    a path named *explicitly* is always kept, so ``repro lint some.py``
    lints exactly that file even when the default target set would have
    skipped it.
    """
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = [
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            ]
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def _meta_findings(module: SourceModule) -> list[Finding]:
    """Engine-level checks on the waiver comments themselves."""
    out: list[Finding] = []
    known = set(_RULE_TYPES)
    for supp in module.suppressions.values():
        if not supp.reason:
            out.append(
                Finding(
                    path=module.display,
                    line=supp.line,
                    col=0,
                    rule=META_RULE_ID,
                    severity=Severity.ERROR,
                    message=(
                        "lint-ok waiver must carry a reason string after "
                        "the bracket, e.g. '# repro: lint-ok[RPR001] seeded "
                        "via rng_from_seed'"
                    ),
                )
            )
        unknown = sorted(supp.rules - known - {"*"})
        if not supp.rules:
            unknown = ["<empty>"]
        if unknown:
            out.append(
                Finding(
                    path=module.display,
                    line=supp.line,
                    col=0,
                    rule=META_RULE_ID,
                    severity=Severity.ERROR,
                    message=(
                        f"lint-ok waiver names unknown rule(s) "
                        f"{', '.join(unknown)}; known: "
                        f"{', '.join(rule_ids())} (or *)"
                    ),
                )
            )
    return out


def _parse_error_finding(path: Path, exc: Exception) -> Finding:
    return Finding(
        path=_display(path),
        line=getattr(exc, "lineno", None) or 1,
        col=getattr(exc, "offset", None) or 0,
        rule=META_RULE_ID,
        severity=Severity.ERROR,
        message=f"cannot parse file: {exc.__class__.__name__}: {exc}",
    )


def _filtered(module: SourceModule, raw: Iterable[Finding]) -> list[Finding]:
    """Drop findings covered by a reasoned waiver in ``module``."""
    out: list[Finding] = []
    for finding in raw:
        supp = module.suppression_for(finding.line)
        if supp is not None and supp.covers(finding.rule) and supp.reason:
            continue
        out.append(finding)
    return out


def _check_one_module(
    module: SourceModule, file_rules: Sequence[Rule]
) -> list[Finding]:
    """Meta findings plus suppression-filtered per-file rule findings —
    the cacheable per-file result."""
    raw: list[Finding] = []
    for rule in file_rules:
        raw.extend(rule.check_module(module))
    return _meta_findings(module) + _filtered(module, raw)


@dataclass
class _FileResult:
    """Per input file: what the per-file pass produced."""

    path: Path
    display: str
    findings: list[Finding]
    parse_error: bool
    module: SourceModule | None  # parsed AST, when the parent needs it
    sha: str | None  # content hash, when a cache is active
    from_cache: bool


def _lint_file_worker(
    path_str: str, rule_ids: Sequence[str] | None
) -> tuple[str, list[dict[str, object]], bool]:
    """Process-pool entry: lint one file with the per-file rules.

    Must stay a module-level function (picklable); imports the rule
    pack so spawned interpreters see a populated registry.
    """
    import repro.analysis  # noqa: F401  (registers the bundled rules)

    path = Path(path_str)
    rules = [r for r in make_rules(rule_ids) if _overrides(r, "check_module")]
    try:
        module = SourceModule.load(path)
    except (SyntaxError, ValueError) as exc:
        return (
            _display(path),
            [_parse_error_finding(path, exc).to_dict()],
            True,
        )
    findings = _check_one_module(module, rules)
    return module.display, [f.to_dict() for f in findings], False


def run_lint(
    files: Sequence[Path],
    rule_ids: Sequence[str] | None = None,
    *,
    cache: "LintCache | None" = None,
    jobs: int = 1,
) -> LintReport:
    """Lint ``files`` with the selected rules and return the report.

    Findings covered by a reasoned waiver are dropped; engine-level
    problems (unparseable files, malformed waivers) always survive.

    ``cache`` (a :class:`~repro.analysis.cache.LintCache`) makes the run
    incremental: files whose sha256 matches the cache reuse their stored
    per-file findings and skip re-parsing, except files inside a
    selected cross-file rule's :attr:`Rule.project_scope`, which are
    always parsed so ``finalize`` sees real ASTs (their per-file
    findings still come from the cache). Cross-file findings are
    recomputed every run — reports are byte-identical to a cold run.

    ``jobs`` > 1 fans per-file parsing/checking out to a process pool
    (``jobs=0`` means one per CPU). Cross-file rules always run in the
    parent process.
    """
    rules = make_rules(rule_ids)
    selected = [rule.id for rule in rules]
    file_rules = [r for r in rules if _overrides(r, "check_module")]
    project_rules = [r for r in rules if _overrides(r, "finalize")]
    predicates, undeclared = _scope_predicates(rules)

    def in_scope(path: Path) -> bool:
        if not project_rules:
            return False
        return undeclared or any(pred(path) for pred in predicates)

    if cache is not None:
        cache.open(selected)

    results: list[_FileResult] = []
    pending: list[tuple[int, Path, str | None, "CacheEntry | None", bool]] = []
    for path in files:
        sha = cache.file_sha(path) if cache is not None else None
        entry = cache.get(path, sha) if cache is not None else None
        scoped = in_scope(path)
        if entry is not None and not scoped:
            results.append(
                _FileResult(
                    path=path,
                    display=entry.display,
                    findings=[Finding.from_dict(d) for d in entry.findings],
                    parse_error=entry.parse_error,
                    module=None,
                    sha=sha,
                    from_cache=True,
                )
            )
        else:
            results.append(None)  # type: ignore[arg-type]  (placeholder)
            pending.append((len(results) - 1, path, sha, entry, scoped))

    # Files a cross-file rule needs (or whose cached findings we can
    # reuse) are parsed in the parent; the rest may go to the pool.
    pool_work: list[tuple[int, Path, str | None]] = []
    for index, path, sha, entry, parent_only in pending:
        if parent_only or entry is not None or jobs == 1:
            results[index] = _process_in_parent(path, sha, entry, file_rules)
        else:
            pool_work.append((index, path, sha))

    if pool_work:
        n_jobs = jobs if jobs > 0 else (os.cpu_count() or 1)
        n_jobs = max(1, min(n_jobs, len(pool_work)))
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            worker_out = pool.map(
                _lint_file_worker,
                [str(path) for _, path, _ in pool_work],
                [selected] * len(pool_work),
            )
            for (index, path, sha), (display, docs, parse_error) in zip(
                pool_work, worker_out
            ):
                results[index] = _FileResult(
                    path=path,
                    display=display,
                    findings=[Finding.from_dict(d) for d in docs],
                    parse_error=parse_error,
                    module=None,
                    sha=sha,
                    from_cache=False,
                )

    findings: list[Finding] = []
    parsed: list[SourceModule] = []
    n_parse_errors = 0
    for result in results:
        findings.extend(result.findings)
        if result.parse_error:
            n_parse_errors += 1
        if result.module is not None:
            parsed.append(result.module)
        if cache is not None and not result.from_cache and result.sha:
            cache.put(
                result.path,
                result.sha,
                result.display,
                [f.to_dict() for f in result.findings],
                result.parse_error,
            )

    if project_rules:
        from repro.analysis.project import ProjectContext

        context = ProjectContext(parsed)
        by_display = {module.display: module for module in parsed}
        raw: list[Finding] = []
        for rule in project_rules:
            raw.extend(rule.finalize(context))
        for finding in raw:
            module = by_display.get(finding.path)
            if module is not None:
                supp = module.suppression_for(finding.line)
                if supp is not None and supp.covers(finding.rule) and supp.reason:
                    continue
            findings.append(finding)

    if cache is not None:
        cache.save()

    findings.sort(key=lambda f: f.sort_key)
    return LintReport(
        findings=findings,
        n_files=len(files),
        rule_ids=selected,
        n_parse_errors=n_parse_errors,
    )


def _process_in_parent(
    path: Path,
    sha: str | None,
    entry: "CacheEntry | None",
    file_rules: Sequence[Rule],
) -> _FileResult:
    """Parse + per-file check one file in-process. Reuses the cache's
    stored findings when the content hash matched (the parse is then
    only feeding the cross-file rules)."""
    try:
        module = SourceModule.load(path)
    except (SyntaxError, ValueError) as exc:
        return _FileResult(
            path=path,
            display=_display(path),
            findings=[_parse_error_finding(path, exc)],
            parse_error=True,
            module=None,
            sha=sha,
            from_cache=False,
        )
    if entry is not None:
        findings = [Finding.from_dict(d) for d in entry.findings]
        from_cache = True
    else:
        findings = _check_one_module(module, file_rules)
        from_cache = False
    return _FileResult(
        path=path,
        display=module.display,
        findings=findings,
        parse_error=False,
        module=module,
        sha=sha,
        from_cache=from_cache,
    )


def lint_paths(
    paths: Iterable[Path],
    rule_ids: Sequence[str] | None = None,
    *,
    cache: "LintCache | None" = None,
    jobs: int = 1,
) -> LintReport:
    """Convenience wrapper: expand ``paths`` and :func:`run_lint` them."""
    return run_lint(
        iter_python_files(paths), rule_ids=rule_ids, cache=cache, jobs=jobs
    )
