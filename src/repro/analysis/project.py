"""Project-wide analysis core: symbol table, call graph, reaching defs.

The per-file rules (:meth:`Rule.check_module`) see one AST at a time;
the cross-file rules need to answer questions like "what class does this
local variable hold?", "which attributes does ``SessionManager.__init__``
assign, and which of them are locks?", or "is ``tables.highest_mb`` a
float64 array?". This module builds that shared context once per lint
run and hands it to every rule's ``finalize`` as a
:class:`ProjectContext` (a drop-in ``Sequence[SourceModule]``, so rules
written against the old ``finalize(modules)`` signature keep working).

Three layers, each deliberately *conservative* — when inference cannot
prove a type it answers ``UNKNOWN`` and rules stay silent, because a
lint that guesses produces noise, not safety:

- :class:`SymbolTable` — per-module classes (``__init__``-assigned
  attribute types included), module-level functions, import aliases;
- :class:`CallGraph` — best-effort ``caller -> callee`` edges, resolved
  through aliases, ``self.method`` dispatch and constructor-typed
  locals;
- :class:`ReachingDefs` — intraprocedural definitions of each local
  name, used as an alias/type oracle (``managed = self._get(sid)`` plus
  ``_get``'s return annotation tells the lock rule that ``managed`` is a
  ``_ManagedSession``).

Everything here is stdlib-only and pure: no imports of the analyzed
code, no execution.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.analysis.engine import SourceModule

__all__ = [
    "UNKNOWN",
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "ModuleSymbols",
    "ProjectContext",
    "ReachingDefs",
    "SymbolTable",
    "TypeInfo",
    "dotted_name",
    "import_aliases",
    "resolve_alias",
]

FuncNode = ast.FunctionDef | ast.AsyncFunctionDef


# -- tiny type lattice -------------------------------------------------------
@dataclass(frozen=True)
class TypeInfo:
    """What inference knows about an expression's value.

    ``kind`` is one of:

    - ``"instance"`` — an instance of a project class; ``detail`` is the
      class name (resolvable via :meth:`SymbolTable.find_class`);
    - ``"call"`` — the result of a call to a non-project callable;
      ``detail`` is the resolved dotted name (``"threading.Lock"``);
    - ``"array"`` — a numpy array; ``detail`` is the dtype name
      (``"int8"``, ``"float64"``, ``"bool"``, or ``""`` when unknown);
    - ``"scalar"`` — a python scalar; ``detail`` is ``"int"``/
      ``"float"``/``"bool"``/``"str"``;
    - ``"container"`` — a mutable builtin container; ``detail`` is
      ``"dict"``/``"list"``/``"set"``/``"deque"``/``"counter"``;
    - ``"unknown"`` — inference gave up (the safe default).
    """

    kind: str
    detail: str = ""

    @property
    def is_unknown(self) -> bool:
        return self.kind == "unknown"


UNKNOWN = TypeInfo("unknown")

#: numpy array constructors whose dtype we can read off the call.
_NP_ARRAY_FACTORIES = frozenset(
    {"zeros", "ones", "empty", "full", "array", "asarray", "arange",
     "zeros_like", "ones_like", "empty_like", "full_like"}
)
#: factories that default to float64 when no dtype keyword is given.
_NP_FLOAT_DEFAULT = frozenset({"zeros", "ones", "empty"})

_CONTAINER_CALLS = {
    "dict": "dict", "list": "list", "set": "set",
    "collections.deque": "deque", "deque": "deque",
    "collections.Counter": "counter", "itertools.count": "counter",
}


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute chain rooted at a plain name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local binding name -> fully-qualified dotted origin."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = (
                    f"{node.module}.{item.name}"
                )
    return aliases


def resolve_alias(dotted: str, aliases: dict[str, str]) -> str:
    head, _, rest = dotted.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


def _dtype_name(node: ast.expr) -> str:
    """The dtype named by a ``dtype=``-style expression (best effort)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return node.id  # dtype=int / dtype=float / dtype=bool
    dotted = dotted_name(node)
    if dotted is not None:
        return dotted.rsplit(".", maxsplit=1)[-1]  # np.int8 -> int8
    return ""


# -- symbols -----------------------------------------------------------------
@dataclass
class FunctionInfo:
    """One function or method: its AST plus resolved annotations."""

    name: str
    qualname: str  # "display::Class.method" or "display::func"
    node: FuncNode
    owner: str | None  # class name for methods, None for functions

    @property
    def return_annotation(self) -> str | None:
        """The return annotation as source text (``None`` if absent)."""
        if self.node.returns is None:
            return None
        return ast.unparse(self.node.returns)


@dataclass
class ClassInfo:
    """One class: bases, methods, and attribute types inferred from the
    ``self.X = ...`` assignments in its method bodies (``__init__``
    first; a conflicting re-assignment elsewhere degrades the attribute
    to ``UNKNOWN`` — except ``None``, which is ignored as the idiomatic
    "not yet" placeholder)."""

    name: str
    module: str  # display path of the defining module
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: dict[str, TypeInfo] = field(default_factory=dict)
    #: attributes assigned anywhere in ``__init__`` (the shared-state
    #: candidates for the concurrency rules), in assignment order.
    init_attrs: tuple[str, ...] = ()


@dataclass
class ModuleSymbols:
    """One module's top-level symbols."""

    display: str
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    aliases: dict[str, str] = field(default_factory=dict)


class SymbolTable:
    """Classes, functions and aliases of every module in the run."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules: dict[str, ModuleSymbols] = {}
        self._classes_by_name: dict[str, list[ClassInfo]] = {}
        for module in modules:
            syms = self._scan_module(module)
            self.modules[module.display] = syms
            for cls in syms.classes.values():
                self._classes_by_name.setdefault(cls.name, []).append(cls)

    def module(self, display: str) -> ModuleSymbols | None:
        return self.modules.get(display)

    def find_class(
        self, name: str, prefer_module: str | None = None
    ) -> ClassInfo | None:
        """The class called ``name``; when several modules define one,
        prefer ``prefer_module``'s, else the first scanned (ambiguity is
        acceptable for a lint oracle — fixture trees are small)."""
        candidates = self._classes_by_name.get(name)
        if not candidates:
            return None
        if prefer_module is not None:
            for cls in candidates:
                if cls.module == prefer_module:
                    return cls
        return candidates[0]

    def iter_classes(self) -> Iterator[ClassInfo]:
        for syms in self.modules.values():
            yield from syms.classes.values()

    # -- construction --------------------------------------------------------
    def _scan_module(self, module: SourceModule) -> ModuleSymbols:
        syms = ModuleSymbols(
            display=module.display, aliases=import_aliases(module.tree)
        )
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                syms.functions[node.name] = FunctionInfo(
                    name=node.name,
                    qualname=f"{module.display}::{node.name}",
                    node=node,
                    owner=None,
                )
            elif isinstance(node, ast.ClassDef):
                syms.classes[node.name] = self._scan_class(module, node, syms)
        return syms

    def _scan_class(
        self, module: SourceModule, node: ast.ClassDef, syms: ModuleSymbols
    ) -> ClassInfo:
        info = ClassInfo(
            name=node.name,
            module=module.display,
            node=node,
            bases=tuple(
                filter(None, (dotted_name(base) for base in node.bases))
            ),
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[item.name] = FunctionInfo(
                    name=item.name,
                    qualname=f"{module.display}::{node.name}.{item.name}",
                    node=item,
                    owner=node.name,
                )
        self._scan_attrs(info, syms)
        return info

    def _scan_attrs(self, info: ClassInfo, syms: ModuleSymbols) -> None:
        init_order: list[str] = []
        for method in info.methods.values():
            in_init = method.name == "__init__"
            param_types = _param_annotation_types(method.node)
            for stmt in ast.walk(method.node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    target, value = stmt.target, stmt.value
                if (
                    target is None
                    or value is None
                    or not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                attr = target.attr
                if in_init and attr not in init_order:
                    init_order.append(attr)
                inferred = _infer_shallow(
                    value, syms, param_types, self_attrs=info.attr_types
                )
                if isinstance(stmt, ast.AnnAssign) and inferred.is_unknown:
                    inferred = _annotation_type(stmt.annotation)
                if inferred.is_unknown or (
                    isinstance(value, ast.Constant) and value.value is None
                ):
                    continue
                previous = info.attr_types.get(attr)
                if previous is None:
                    info.attr_types[attr] = inferred
                elif previous != inferred:
                    info.attr_types[attr] = UNKNOWN
        info.init_attrs = tuple(init_order)


def _param_annotation_types(node: FuncNode) -> dict[str, TypeInfo]:
    """Parameter name -> type, from annotations (best effort)."""
    out: dict[str, TypeInfo] = {}
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.annotation is not None:
            inferred = _annotation_type(arg.annotation)
            if not inferred.is_unknown:
                out[arg.arg] = inferred
    return out


def _annotation_type(annotation: ast.expr) -> TypeInfo:
    """A :class:`TypeInfo` for an annotation expression. ``X | None``
    and string annotations resolve to ``X``; subscripted generics keep
    their base."""
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return UNKNOWN
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        left = _annotation_type(annotation.left)
        if not left.is_unknown:
            return left
        return _annotation_type(annotation.right)
    if isinstance(annotation, ast.Subscript):
        return _annotation_type(annotation.value)
    dotted = dotted_name(annotation)
    if dotted is None:
        return UNKNOWN
    tail = dotted.rsplit(".", maxsplit=1)[-1]
    if tail in ("int", "float", "bool", "str"):
        return TypeInfo("scalar", tail)
    if tail == "ndarray":
        return TypeInfo("array", "")
    if tail in ("None", "Any", "object", "Optional"):
        return UNKNOWN
    return TypeInfo("instance", tail)


def _infer_shallow(
    value: ast.expr,
    syms: ModuleSymbols,
    param_types: dict[str, TypeInfo],
    self_attrs: dict[str, TypeInfo] | None = None,
) -> TypeInfo:
    """Single-expression inference with no reaching-defs environment —
    what the symbol-table scan can afford per ``self.X = value``.
    ``self_attrs`` lets ``self.X = self.Y[...]`` chains resolve against
    the attributes already scanned earlier in the same class."""
    if isinstance(value, ast.Subscript):
        # Array indexing/slicing preserves dtype.
        base = _infer_shallow(value.value, syms, param_types, self_attrs)
        return base if base.kind == "array" else UNKNOWN
    if (
        self_attrs is not None
        and isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
        and value.value.id == "self"
    ):
        return self_attrs.get(value.attr, UNKNOWN)
    if isinstance(value, ast.Constant):
        v = value.value
        if isinstance(v, bool):
            return TypeInfo("scalar", "bool")
        if isinstance(v, int):
            return TypeInfo("scalar", "int")
        if isinstance(v, float):
            return TypeInfo("scalar", "float")
        if isinstance(v, str):
            return TypeInfo("scalar", "str")
        return UNKNOWN
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return TypeInfo("container", "dict")
    if isinstance(value, (ast.List, ast.ListComp)):
        return TypeInfo("container", "list")
    if isinstance(value, (ast.Set, ast.SetComp)):
        return TypeInfo("container", "set")
    if isinstance(value, ast.Name):
        return param_types.get(value.id, UNKNOWN)
    if isinstance(value, ast.Call):
        return _infer_call(value, syms)
    return UNKNOWN


def _infer_call(call: ast.Call, syms: ModuleSymbols) -> TypeInfo:
    """Type of a call expression: constructor, numpy factory, astype,
    builtin container, or an opaque dotted callable."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "astype":
        if call.args:
            return TypeInfo("array", _dtype_name(call.args[0]))
        return TypeInfo("array", "")
    dotted = dotted_name(func)
    if dotted is None:
        return UNKNOWN
    resolved = resolve_alias(dotted, syms.aliases)
    tail = resolved.rsplit(".", maxsplit=1)[-1]
    if tail in syms.classes or resolved in syms.classes:
        return TypeInfo("instance", tail if tail in syms.classes else resolved)
    if resolved.startswith("numpy.") and tail in _NP_ARRAY_FACTORIES:
        for kw in call.keywords:
            if kw.arg == "dtype":
                return TypeInfo("array", _dtype_name(kw.value))
        if tail in _NP_FLOAT_DEFAULT:
            return TypeInfo("array", "float64")
        return TypeInfo("array", "")
    if resolved in _CONTAINER_CALLS:
        return TypeInfo("container", _CONTAINER_CALLS[resolved])
    if tail in ("int", "float", "bool", "str") and resolved == tail:
        return TypeInfo("scalar", tail)
    return TypeInfo("call", resolved)


# -- reaching definitions ----------------------------------------------------
class ReachingDefs:
    """Intraprocedural definitions of each local name in one function.

    A deliberately flow-insensitive approximation: every textual
    assignment to a name is a candidate definition, and a name has a
    known type only when *all* of its definitions agree (``None``
    placeholders excepted). That is exactly the conservatism a lint
    oracle wants — a variable rebound to two different things answers
    ``UNKNOWN`` and no rule fires on it.
    """

    def __init__(self, node: FuncNode, symbols: SymbolTable, module: str):
        self.node = node
        self._symbols = symbols
        self._module = module
        self._syms = symbols.module(module) or ModuleSymbols(display=module)
        self._param_types = _param_annotation_types(node)
        self._defs: dict[str, list[ast.expr]] = {}
        self._owner_class = self._find_owner()
        self._collect()
        self._cache: dict[str, TypeInfo] = {}

    def _find_owner(self) -> ClassInfo | None:
        for cls in self._symbols.iter_classes():
            if cls.module != self._module:
                continue
            if self.node.name in cls.methods and (
                cls.methods[self.node.name].node is self.node
            ):
                return cls
        return None

    def _collect(self) -> None:
        for stmt in ast.walk(self.node):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                targets, value = [stmt.target], None
            elif isinstance(stmt, ast.withitem) and stmt.optional_vars:
                targets, value = [stmt.optional_vars], stmt.context_expr
            if value is None:
                # Loop targets et al define the name with unknown type;
                # record the binding so agreement checks see it.
                for target in targets:
                    for name in _target_names(target):
                        self._defs.setdefault(name, []).append(
                            ast.Constant(value=Ellipsis)
                        )
                continue
            for target in targets:
                for name in _target_names(target):
                    self._defs.setdefault(name, []).append(value)

    def definitions(self, name: str) -> list[ast.expr]:
        """Every expression assigned to ``name`` in this function."""
        return list(self._defs.get(name, ()))

    def type_of(self, name: str) -> TypeInfo:
        """The agreed type of local ``name`` (``UNKNOWN`` on conflict)."""
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        self._cache[name] = UNKNOWN  # cycle guard for x = f(x)
        result = self._type_of_uncached(name)
        self._cache[name] = result
        return result

    def _type_of_uncached(self, name: str) -> TypeInfo:
        if name == "self" and self._owner_class is not None:
            return TypeInfo("instance", self._owner_class.name)
        defs = self._defs.get(name)
        if not defs:
            return self._param_types.get(name, UNKNOWN)
        agreed: TypeInfo | None = None
        for expr in defs:
            if isinstance(expr, ast.Constant) and expr.value is None:
                continue  # "not yet" placeholder
            inferred = self.type_of_expr(expr)
            if isinstance(expr, ast.Constant) and expr.value is Ellipsis:
                inferred = UNKNOWN  # untyped binding (loop target, with-as)
            if agreed is None:
                agreed = inferred
            elif agreed != inferred:
                return UNKNOWN
        return agreed if agreed is not None else UNKNOWN

    def type_of_expr(self, expr: ast.expr) -> TypeInfo:
        """Infer an arbitrary expression in this function's scope."""
        if isinstance(expr, ast.Name):
            return self.type_of(expr.id)
        if isinstance(expr, ast.Subscript):
            # Array indexing/slicing preserves dtype; container lookup
            # yields the (unknown) element type.
            base = self.type_of_expr(expr.value)
            return base if base.kind == "array" else UNKNOWN
        if isinstance(expr, ast.Compare):
            return TypeInfo("array", "bool")
        if isinstance(expr, ast.Attribute):
            cls = self._class_of(self.type_of_expr(expr.value))
            if cls is not None:
                return cls.attr_types.get(expr.attr, UNKNOWN)
            return UNKNOWN
        if isinstance(expr, ast.Call):
            inferred = self._infer_call_deep(expr)
            return inferred
        shallow = _infer_shallow(expr, self._syms, self._param_types)
        return shallow

    def _class_of(self, info: TypeInfo) -> ClassInfo | None:
        """The project class behind ``info``, for ``instance`` types and
        for ``call`` types whose callable is a project-class constructor
        (a binding typed ``call:pkg.mod.Cls`` *is* an instance of
        ``Cls`` when ``Cls`` is a class we scanned)."""
        if info.kind not in ("instance", "call"):
            return None
        name = info.detail.rsplit(".", maxsplit=1)[-1]
        return self._symbols.find_class(name, prefer_module=self._module)

    def _infer_call_deep(self, call: ast.Call) -> TypeInfo:
        # self.method(...) / obj.method(...): use the method's return
        # annotation when the receiver's class is known.
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr != "astype":
            cls = self._class_of(self.type_of_expr(func.value))
            if cls is not None and func.attr in cls.methods:
                ret = cls.methods[func.attr].node.returns
                if ret is not None:
                    return _annotation_type(ret)
                return UNKNOWN
        return _infer_call(call, self._syms)


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


# -- call graph --------------------------------------------------------------
class CallGraph:
    """Best-effort static call edges, keyed by qualname
    (``display::Class.method`` / ``display::function``)."""

    def __init__(self, modules: Sequence[SourceModule], symbols: SymbolTable):
        self.edges: dict[str, set[str]] = {}
        self._reverse: dict[str, set[str]] = {}
        for module in modules:
            syms = symbols.module(module.display)
            if syms is None:
                continue
            functions = list(syms.functions.values())
            for cls in syms.classes.values():
                functions.extend(cls.methods.values())
            for fn in functions:
                defs = ReachingDefs(fn.node, symbols, module.display)
                callees = self._callees(fn, defs, syms, symbols, module)
                self.edges[fn.qualname] = callees
                for callee in callees:
                    self._reverse.setdefault(callee, set()).add(fn.qualname)

    def callees(self, qualname: str) -> set[str]:
        return set(self.edges.get(qualname, ()))

    def callers(self, qualname: str) -> set[str]:
        return set(self._reverse.get(qualname, ()))

    def _callees(
        self,
        fn: FunctionInfo,
        defs: ReachingDefs,
        syms: ModuleSymbols,
        symbols: SymbolTable,
        module: SourceModule,
    ) -> set[str]:
        out: set[str] = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                name = func.id
                if name in syms.functions:
                    out.add(syms.functions[name].qualname)
                elif name in syms.classes:  # constructor edge
                    cls = syms.classes[name]
                    init = cls.methods.get("__init__")
                    if init is not None:
                        out.add(init.qualname)
                    else:
                        out.add(f"{cls.module}::{cls.name}")
            elif isinstance(func, ast.Attribute):
                receiver = defs.type_of_expr(func.value)
                if receiver.kind != "instance":
                    continue
                cls_info = symbols.find_class(
                    receiver.detail, prefer_module=module.display
                )
                if cls_info is not None and func.attr in cls_info.methods:
                    out.add(cls_info.methods[func.attr].qualname)
        return out


# -- the context handed to finalize() ---------------------------------------
class ProjectContext(Sequence[SourceModule]):
    """All parsed modules plus the lazily-built analysis layers.

    Acts as a ``Sequence[SourceModule]`` so rules written against the
    historical ``finalize(modules)`` signature work unchanged; new rules
    read :attr:`symbols`, :attr:`call_graph` and :meth:`reaching`.

    On an incremental (warm-cache) run only the changed files plus every
    selected rule's declared ``project_scope`` files are parsed — the
    context covers exactly those.
    """

    def __init__(self, modules: Sequence[SourceModule]):
        self._modules = list(modules)
        self._symbols: SymbolTable | None = None
        self._call_graph: CallGraph | None = None
        self._reaching: dict[int, ReachingDefs] = {}

    # Sequence protocol -- len/getitem give iteration + indexing.
    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> SourceModule:  # type: ignore[override]
        return self._modules[index]

    @property
    def modules(self) -> list[SourceModule]:
        return list(self._modules)

    @property
    def symbols(self) -> SymbolTable:
        if self._symbols is None:
            self._symbols = SymbolTable(self._modules)
        return self._symbols

    @property
    def call_graph(self) -> CallGraph:
        if self._call_graph is None:
            self._call_graph = CallGraph(self._modules, self.symbols)
        return self._call_graph

    def reaching(self, node: FuncNode, module: SourceModule) -> ReachingDefs:
        """The (cached) reaching-defs oracle for one function."""
        key = id(node)
        cached = self._reaching.get(key)
        if cached is None:
            cached = ReachingDefs(node, self.symbols, module.display)
            self._reaching[key] = cached
        return cached
