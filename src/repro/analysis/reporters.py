"""Render a :class:`~repro.analysis.engine.LintReport` for humans or CI.

Three formats:

- :func:`render_text` — one ``path:line:col: RULE [severity] message``
  line per finding plus a summary trailer, the shape editors and CI log
  scrapers already understand;
- :func:`render_json` — a versioned JSON document (``repro lint --format
  json``), uploaded as a CI artifact so rule regressions are diffable
  across runs;
- :func:`render_sarif` — SARIF 2.1.0 (``repro lint --format sarif``),
  the interchange format code-scanning UIs ingest, so findings annotate
  pull requests instead of living in a log.
"""

from __future__ import annotations

import json

from repro.analysis.engine import (
    META_RULE_ID,
    LintReport,
    Severity,
    rule_summaries,
)

__all__ = ["render_json", "render_sarif", "render_text"]

#: Bumped when the JSON document shape changes incompatibly.
JSON_FORMAT_VERSION = 1


def render_text(report: LintReport) -> str:
    """Human-readable report, one line per finding."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity.value}] {f.message}"
        for f in report.findings
    ]
    if report.clean:
        lines.append(
            f"repro lint: clean — {report.n_files} file(s), "
            f"rules {', '.join(report.rule_ids)}"
        )
    else:
        by_rule = report.by_rule()
        breakdown = ", ".join(
            f"{rid}: {len(found)}" for rid, found in sorted(by_rule.items())
        )
        lines.append(
            f"repro lint: {len(report.findings)} finding(s) in "
            f"{report.n_files} file(s) ({breakdown})"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order, trailing newline-free)."""
    doc = {
        "version": JSON_FORMAT_VERSION,
        "clean": report.clean,
        "n_files": report.n_files,
        "rules": report.rule_ids,
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(doc, indent=2, sort_keys=False)


#: SARIF spec version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 document for code-scanning ingestion.

    Columns are 1-based in SARIF (our findings are 0-based), and every
    rule the run selected is listed in the driver — including
    ``RPR000`` so engine-level findings resolve to a rule entry.
    """
    summaries = rule_summaries()
    summaries[META_RULE_ID] = (
        "engine-level finding: unparseable file or malformed waiver"
    )
    rules = [
        {
            "id": rid,
            "shortDescription": {"text": summaries[rid]},
        }
        for rid in [META_RULE_ID, *report.rule_ids]
        if rid in summaries
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": _SARIF_LEVELS[f.severity],
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path.replace("\\", "/")},
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in report.findings
    ]
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=False)
