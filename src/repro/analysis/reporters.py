"""Render a :class:`~repro.analysis.engine.LintReport` for humans or CI.

Two formats:

- :func:`render_text` — one ``path:line:col: RULE [severity] message``
  line per finding plus a summary trailer, the shape editors and CI log
  scrapers already understand;
- :func:`render_json` — a versioned JSON document (``repro lint --format
  json``), uploaded as a CI artifact so rule regressions are diffable
  across runs.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport

__all__ = ["render_json", "render_text"]

#: Bumped when the JSON document shape changes incompatibly.
JSON_FORMAT_VERSION = 1


def render_text(report: LintReport) -> str:
    """Human-readable report, one line per finding."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity.value}] {f.message}"
        for f in report.findings
    ]
    if report.clean:
        lines.append(
            f"repro lint: clean — {report.n_files} file(s), "
            f"rules {', '.join(report.rule_ids)}"
        )
    else:
        by_rule = report.by_rule()
        breakdown = ", ".join(
            f"{rid}: {len(found)}" for rid, found in sorted(by_rule.items())
        )
        lines.append(
            f"repro lint: {len(report.findings)} finding(s) in "
            f"{report.n_files} file(s) ({breakdown})"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order, trailing newline-free)."""
    doc = {
        "version": JSON_FORMAT_VERSION,
        "clean": report.clean,
        "n_files": report.n_files,
        "rules": report.rule_ids,
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(doc, indent=2, sort_keys=False)
