"""The bundled rule pack. Importing this package registers every rule
with the engine's registry (each module's ``@register_rule`` decorator
runs at import time), so ``repro.analysis.rule_ids()`` is complete as
soon as ``repro.analysis`` is imported.

Rule ids are stable API: reports, suppression comments and CI artifacts
reference them. Add new rules with fresh ids; never renumber.
"""

from repro.analysis.rules.columnar_hygiene import ColumnarHygieneRule
from repro.analysis.rules.deprecation import DeprecationHygieneRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.exception_hygiene import ExceptionHygieneRule
from repro.analysis.rules.facade import FacadeSignatureRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.parity import EngineParityRule
from repro.analysis.rules.policy_contract import PolicyContractRule
from repro.analysis.rules.snapshot_schema import SnapshotSchemaRule
from repro.analysis.rules.spec_strings import SpecStringRule

__all__ = [
    "ColumnarHygieneRule",
    "DeprecationHygieneRule",
    "DeterminismRule",
    "EngineParityRule",
    "ExceptionHygieneRule",
    "FacadeSignatureRule",
    "LockDisciplineRule",
    "PolicyContractRule",
    "SnapshotSchemaRule",
    "SpecStringRule",
]
