"""RPR009 — columnar kernel hygiene in the fleet-scale engine.

``runtime/columnar.py`` / ``runtime/fleet.py`` (and the observability
mirror ``obs/fleet.py``) carry the repo's two fleet-scale contracts:
**throughput** ("Python orchestrates, the kernel computes" — no
per-function Python loops on the serve/observe/step hot paths) and
**bit-identity** (shard-count invariance and golden equivalence vs the
reference engine — every accumulation order is pinned). Both contracts
break silently: a stray ``for fid in range(n_fn)`` is a 100x slowdown
nobody sees on the 12-function tests, and an ``argsort`` that loses
``kind="stable"`` flips tie-breaks only on ties. This rule lints them,
using the analysis core's dtype inference (``self.levels =
np.full(..., dtype=np.int8)`` makes ``levels`` an int8 array wherever
it flows):

- **hot-path loops** — a ``for`` over ``.tolist()`` /
  ``np.flatnonzero`` / ``range(n_fn | n_functions | n_events)`` inside
  a function named ``serve`` / ``observe_and_plan`` / ``step``. The
  compat-mode fallbacks (per-event serving, pool reconcile) are real
  and deliberate — they carry reasoned waivers naming the mode that
  bounds them;
- **narrow-dtype arithmetic** — ``+``/``-``/``*`` on an int8/int16
  array before a widening ``.astype``: plan levels live in int8 and
  overflow wraps silently;
- **order-sensitive calls** — ``argsort`` without
  ``kind="stable"``/``"mergesort"``; ``argpartition`` outside the
  documented carve-out (a function that re-establishes total order with
  a stable argsort, as ``_candidate_table`` does); and an unordered
  float reduction (``.sum()`` / ``np.sum`` on a float array, no
  ``axis=``) in a hot-path function, where the canon is the documented
  sequential fold.

Scope: any file named ``columnar.py`` or ``fleet.py`` (fixture copies
included).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from repro.analysis.engine import (
    Finding,
    Rule,
    Severity,
    SourceModule,
    register_rule,
)
from repro.analysis.project import (
    FunctionInfo,
    ProjectContext,
    ReachingDefs,
    dotted_name,
    import_aliases,
    resolve_alias,
)

__all__ = ["ColumnarHygieneRule"]

_SCOPE_BASENAMES = frozenset({"columnar.py", "fleet.py"})
_HOT_FUNCTIONS = frozenset({"serve", "observe_and_plan", "step"})
_NARROW_DTYPES = frozenset({"int8", "int16"})
_STABLE_KINDS = frozenset({"stable", "mergesort"})
_FID_COUNT_NAMES = frozenset({"n_fn", "n_functions", "n_events", "n_fids"})


def _columnar_scope(path: Path) -> bool:
    return path.name in _SCOPE_BASENAMES


def _unwrap_iter(node: ast.expr) -> ast.expr:
    """Strip ``enumerate(...)`` / ``zip(...)`` down to the first
    iterable, and ``X[...]`` slicing down to ``X`` for loop checks."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("enumerate", "zip", "reversed")
        and node.args
    ):
        node = node.args[0]
    return node


def _range_over_fleet(call: ast.Call) -> bool:
    """``range(..n_fn..)`` — any argument whose terminal identifier is a
    fleet-cardinality name."""
    for arg in call.args:
        for inner in ast.walk(arg):
            name: str | None = None
            if isinstance(inner, ast.Name):
                name = inner.id
            elif isinstance(inner, ast.Attribute):
                name = inner.attr
            if name is not None and name in _FID_COUNT_NAMES:
                return True
    return False


@register_rule
class ColumnarHygieneRule(Rule):
    """Keep the columnar kernel vectorized, overflow-safe, and
    deterministically ordered."""

    id = "RPR009"
    severity = Severity.ERROR
    summary = (
        "columnar kernel hygiene: no per-fid python loops in hot paths, "
        "no int8/int16 arithmetic before widening, argsort stays "
        "kind='stable' and argpartition/float-sum stay inside the "
        "documented carve-outs"
    )
    project_scope = staticmethod(_columnar_scope)

    def finalize(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        context = (
            modules
            if isinstance(modules, ProjectContext)
            else ProjectContext(list(modules))
        )
        out: list[Finding] = []
        for module in context:
            if not _columnar_scope(module.path):
                continue
            syms = context.symbols.module(module.display)
            if syms is None:
                continue
            aliases = import_aliases(module.tree)
            functions = list(syms.functions.values())
            for cls in syms.classes.values():
                functions.extend(cls.methods.values())
            for fn in functions:
                defs = context.reaching(fn.node, module)
                out.extend(self._check_function(module, fn, defs, aliases))
        return out

    def _check_function(
        self,
        module: SourceModule,
        fn: FunctionInfo,
        defs: ReachingDefs,
        aliases: dict[str, str],
    ) -> Iterator[Finding]:
        hot = fn.name in _HOT_FUNCTIONS
        has_stable_sort = self._has_stable_argsort(fn.node, aliases)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.For) and hot:
                yield from self._check_loop(module, fn, node, aliases)
            elif isinstance(node, (ast.BinOp, ast.AugAssign)):
                yield from self._check_narrow(module, node, defs)
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    module, fn, node, defs, aliases, hot, has_stable_sort
                )

    # -- hot-path loops ------------------------------------------------------
    def _check_loop(
        self,
        module: SourceModule,
        fn: FunctionInfo,
        node: ast.For,
        aliases: dict[str, str],
    ) -> Iterator[Finding]:
        target = _unwrap_iter(node.iter)
        reason: str | None = None
        if isinstance(target, ast.Call):
            func = target.func
            if isinstance(func, ast.Attribute) and func.attr == "tolist":
                reason = "iterates a per-fid array via .tolist()"
            else:
                dotted = dotted_name(func)
                if dotted is not None:
                    resolved = resolve_alias(dotted, aliases)
                    tail = resolved.rsplit(".", maxsplit=1)[-1]
                    if tail in ("flatnonzero", "nonzero", "where"):
                        reason = f"iterates np.{tail}() output per element"
                    elif tail == "range" and _range_over_fleet(target):
                        reason = "ranges over the fleet cardinality"
        if reason is not None:
            yield self.finding(
                module,
                node,
                f"python-level loop in hot path {fn.name}(): {reason} — "
                "vectorize with numpy, or waive naming the compat mode / "
                "bound that keeps it off the fleet-scale path",
            )

    # -- narrow-dtype arithmetic ---------------------------------------------
    def _check_narrow(
        self,
        module: SourceModule,
        node: ast.BinOp | ast.AugAssign,
        defs: ReachingDefs,
    ) -> Iterator[Finding]:
        if not isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
            return
        if isinstance(node, ast.BinOp):
            operands = [node.left, node.right]
        else:
            operands = [node.target, node.value]
        for operand in operands:
            inferred = defs.type_of_expr(operand)
            if inferred.kind == "array" and inferred.detail in _NARROW_DTYPES:
                yield self.finding(
                    module,
                    node,
                    f"arithmetic on {inferred.detail} array can overflow "
                    "silently (numpy wraps) — widen first with "
                    ".astype(np.int64), or waive with the range invariant "
                    "that bounds the values",
                )
                return

    # -- order-sensitive calls -----------------------------------------------
    def _has_stable_argsort(
        self, fn_node: ast.AST, aliases: dict[str, str]
    ) -> bool:
        for node in ast.walk(fn_node):
            if isinstance(node, ast.Call) and self._is_argsort(node, aliases):
                if self._stable_kind(node):
                    return True
        return False

    @staticmethod
    def _is_argsort(call: ast.Call, aliases: dict[str, str]) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "argsort":
            return True
        dotted = dotted_name(func)
        if dotted is None:
            return False
        return resolve_alias(dotted, aliases).endswith(".argsort")

    @staticmethod
    def _stable_kind(call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg == "kind":
                return (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value in _STABLE_KINDS
                )
        return False

    def _check_call(
        self,
        module: SourceModule,
        fn: FunctionInfo,
        node: ast.Call,
        defs: ReachingDefs,
        aliases: dict[str, str],
        hot: bool,
        has_stable_sort: bool,
    ) -> Iterator[Finding]:
        func = node.func
        if self._is_argsort(node, aliases) and not self._stable_kind(node):
            yield self.finding(
                module,
                node,
                "argsort without kind='stable' — tie order is unspecified "
                "and breaks bit-identity across numpy versions; pass "
                "kind='stable'",
            )
            return
        is_argpartition = (
            isinstance(func, ast.Attribute) and func.attr == "argpartition"
        )
        if not is_argpartition:
            dotted = dotted_name(func)
            is_argpartition = dotted is not None and resolve_alias(
                dotted, aliases
            ).endswith(".argpartition")
        if is_argpartition:
            if not has_stable_sort:
                yield self.finding(
                    module,
                    node,
                    "argpartition outside the documented carve-out: its "
                    "output order is unspecified, so it is only allowed in "
                    "a function that re-establishes total order with a "
                    "stable argsort (see _candidate_table)",
                )
            return
        if hot and isinstance(func, ast.Attribute) and func.attr == "sum":
            if any(kw.arg == "axis" for kw in node.keywords):
                return
            inferred = defs.type_of_expr(func.value)
            if inferred.kind == "array" and inferred.detail.startswith("float"):
                yield self.finding(
                    module,
                    node,
                    f"unordered float reduction in hot path {fn.name}(): "
                    ".sum() on a float array has no pinned accumulation "
                    "order — use the documented sequential fold, or waive "
                    "with the invariant that pins this value",
                )
