"""RPR004 — deprecation hygiene: repro internals must not call their own
shims, and every shim must schedule its own removal.

The deprecation shims exist so *external* callers keep working for one
release: historically ``SimulationConfig(fast=True)`` (superseded by the
``engine`` argument of ``Simulation.run`` / ``repro.api.simulate``) and
the pre-registry CLI surface (``repro.cli._POLICIES`` /
``_LONG_WINDOW_POLICIES`` / ``_parse_fid_minute``) — both now removed
(they raise). The test suite already errors on repro-internal
``DeprecationWarning``s at runtime — but only on the paths a test
happens to execute. This rule closes the gap at lint time:

- any repro-internal reference to a shim is an error, regardless of
  test coverage (the modules *implementing* a shim necessarily mention
  the underlying field/name; those sites read attributes rather than
  calling the deprecated constructors, so they do not trip the rule);
- any **new** shim — a ``warnings.warn(..., DeprecationWarning)`` —
  must carry a removal note: the warning message or an adjacent comment
  must say when/what removes it (contain "remov…", e.g. "removed after
  the next release"). A shim without a scheduled removal is how
  deprecation cycles stall.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.engine import (
    Finding,
    Rule,
    Severity,
    SourceModule,
    register_rule,
)

__all__ = ["DeprecationHygieneRule"]

#: Names shimmed out of repro.cli; importing or attribute-reading them
#: from anywhere inside the package is a finding.
SHIMMED_CLI_NAMES = frozenset(
    {"_POLICIES", "_LONG_WINDOW_POLICIES", "_parse_fid_minute"}
)


def _is_deprecation_warn(node: ast.Call) -> bool:
    """Is this call a ``warnings.warn(..., DeprecationWarning)``?"""
    refs = list(node.args) + [k.value for k in node.keywords]
    return any(
        isinstance(ref, ast.Name) and ref.id.endswith("DeprecationWarning")
        for ref in refs
    )


def _has_removal_note(module: SourceModule, node: ast.Call) -> bool:
    """True when the shim schedules its removal: the message or nearby
    source (two lines of leading comment through the call's end)
    mentions removal."""
    for arg in ast.walk(node):
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if "remov" in arg.value.lower():
                return True
    lines = module.source.splitlines()
    start = max(node.lineno - 3, 0)
    stop = node.end_lineno if node.end_lineno is not None else node.lineno
    window = "\n".join(lines[start:stop]).lower()
    return "remov" in window


@register_rule
class DeprecationHygieneRule(Rule):
    """Ban repro-internal use of the repo's own deprecation shims."""

    id = "RPR004"
    severity = Severity.ERROR
    summary = (
        "internals must not use shimmed APIs: SimulationConfig(fast=...), "
        "repro.cli._POLICIES / _LONG_WINDOW_POLICIES / _parse_fid_minute"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        return list(self._check(module))

    def _check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if name == "SimulationConfig":
                    for keyword in node.keywords:
                        if keyword.arg == "fast":
                            yield self.finding(
                                module,
                                keyword,
                                "SimulationConfig(fast=...) is a deprecated "
                                "shim; select the loop via "
                                "Simulation.run(engine=...) or "
                                "repro.api.simulate(..., engine=...)",
                            )
                elif name == "warn" and _is_deprecation_warn(node):
                    if not _has_removal_note(module, node):
                        yield self.finding(
                            module,
                            node,
                            "deprecation shim without a removal note: the "
                            "warning message (or an adjacent comment) must "
                            "say when the shim is removed — open-ended "
                            "deprecations stall the cycle",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[-1] == "cli":
                    for item in node.names:
                        if item.name in SHIMMED_CLI_NAMES:
                            yield self.finding(
                                module,
                                node,
                                f"import of shimmed repro.cli.{item.name}; "
                                "use repro.api.list_policies/policy_spec or "
                                "repro.utils.specs.parse_fid_minute",
                            )
            elif isinstance(node, ast.Attribute):
                if node.attr in SHIMMED_CLI_NAMES:
                    yield self.finding(
                        module,
                        node,
                        f"reference to shimmed {node.attr}; use "
                        "repro.api.list_policies/policy_spec or "
                        "repro.utils.specs.parse_fid_minute",
                    )
