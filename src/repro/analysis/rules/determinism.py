"""RPR001 — determinism: no unseeded entropy or wall-clock reads in the
replay harness.

The repro's headline guarantee is that a run is a pure function of
``(trace, assignment, policy, config, seed)``: the golden equivalence
tests pin fast-vs-reference bit-identity and the paper tables are only
meaningful if replaying them reproduces the same numbers. One stray
``random.random()`` or ``time.time()`` inside the engine silently breaks
that. This rule bans, inside the determinism-scoped packages
(``runtime/``, ``faults/``, ``milp/``, ``sota/``):

- the stdlib ``random`` and ``secrets`` modules (process-global,
  unseeded streams) — use :func:`repro.utils.rng.rng_from_seed`;
- wall-clock/entropy reads whose value changes across identical runs:
  ``time.time``/``time.time_ns``, ``datetime.now``/``utcnow``/``today``,
  ``date.today``, ``os.urandom``/``os.getrandom``, ``uuid.uuid1``/
  ``uuid.uuid4``. ``time.perf_counter``/``time.monotonic`` stay legal:
  they feed only the wall-clock fields (``wall_clock_s``, span timers,
  Figure 9's overhead) that the equivalence tests explicitly exclude;
- module-level ``numpy.random`` draws (``np.random.rand``,
  ``np.random.seed``, ...), which share one hidden global
  ``RandomState``. Constructing explicit generators
  (``default_rng``/``Generator``/``SeedSequence``/bit generators) is the
  sanctioned pattern;
- ``for``-loops (and comprehensions) iterating directly over a ``set``
  literal, set comprehension, or ``set()``/``frozenset()`` call: set
  order is salted per process, so any result that folds over it is
  nondeterministic across interpreter runs — sort first.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.engine import (
    Finding,
    Rule,
    Severity,
    SourceModule,
    register_rule,
)

__all__ = ["DeterminismRule"]

#: Package directories the determinism contract covers. Anything under a
#: directory with one of these names is engine/replay code.
SCOPED_DIRS = frozenset({"runtime", "faults", "milp", "sota"})

#: Modules whose import alone is a finding.
BANNED_MODULES = {
    "random": (
        "the stdlib random module draws from one process-global unseeded "
        "stream; use repro.utils.rng.rng_from_seed(seed) instead"
    ),
    "secrets": (
        "the secrets module reads OS entropy on every call; replay code "
        "must derive randomness from an explicit seed"
    ),
}

#: Fully-qualified callables whose value differs across identical runs.
BANNED_CALLS = {
    "time.time": "wall-clock read; runs replayed later would differ",
    "time.time_ns": "wall-clock read; runs replayed later would differ",
    "datetime.datetime.now": "wall-clock read breaks replay determinism",
    "datetime.datetime.utcnow": "wall-clock read breaks replay determinism",
    "datetime.datetime.today": "wall-clock read breaks replay determinism",
    "datetime.date.today": "wall-clock read breaks replay determinism",
    "os.urandom": "OS entropy; derive randomness from the run's seed",
    "os.getrandom": "OS entropy; derive randomness from the run's seed",
    "uuid.uuid1": "host/time-derived id; not stable across runs",
    "uuid.uuid4": "OS entropy; not stable across runs",
}

#: ``numpy.random`` attributes that construct *explicit* generators and
#: are therefore allowed; every other ``np.random.x(...)`` call is a
#: draw from (or a mutation of) the hidden global RandomState.
NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",  # explicit legacy generator object (still seeded)
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

_SET_BUILTINS = frozenset({"set", "frozenset"})


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute chain rooted at a plain name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Local binding name -> fully-qualified dotted origin."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = (
                    f"{node.module}.{item.name}"
                )
    return aliases


def _resolve(dotted: str, aliases: dict[str, str]) -> str:
    head, _, rest = dotted.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


def in_scope(module: SourceModule) -> bool:
    """Is this file part of the determinism-scoped packages?"""
    return not SCOPED_DIRS.isdisjoint(module.path.resolve().parts)


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _SET_BUILTINS
    )


@register_rule
class DeterminismRule(Rule):
    """Ban unseeded randomness, wall-clock reads and unordered set
    iteration inside the replay-determinism-scoped packages."""

    id = "RPR001"
    severity = Severity.ERROR
    summary = (
        "no unseeded RNG, wall-clock reads or set-order dependence in "
        "runtime/, faults/, milp/, sota/"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if not in_scope(module):
            return ()
        return list(self._check(module))

    def _check(self, module: SourceModule) -> Iterator[Finding]:
        aliases = _collect_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    root = item.name.split(".")[0]
                    if root in BANNED_MODULES:
                        yield self.finding(
                            module,
                            node,
                            f"import of {root!r}: {BANNED_MODULES[root]}",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in BANNED_MODULES and not node.level:
                    yield self.finding(
                        module,
                        node,
                        f"import from {root!r}: {BANNED_MODULES[root]}",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, aliases)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expression(node.iter):
                    yield self.finding(
                        module,
                        node.iter,
                        "iterating a set: iteration order is salted per "
                        "process, so any result folded over it is "
                        "nondeterministic — sort the elements first",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expression(gen.iter):
                        yield self.finding(
                            module,
                            gen.iter,
                            "comprehension over a set: iteration order is "
                            "salted per process — sort the elements first",
                        )

    def _check_call(
        self,
        module: SourceModule,
        node: ast.Call,
        aliases: dict[str, str],
    ) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        resolved = _resolve(dotted, aliases)
        root = resolved.split(".")[0]
        if root in BANNED_MODULES and resolved != root:
            yield self.finding(
                module,
                node,
                f"call to {resolved}: {BANNED_MODULES[root]}",
            )
            return
        if resolved in BANNED_CALLS:
            yield self.finding(
                module, node, f"call to {resolved}: {BANNED_CALLS[resolved]}"
            )
            return
        if resolved.startswith("numpy.random."):
            attr = resolved.rsplit(".", maxsplit=1)[1]
            if attr not in NUMPY_RANDOM_ALLOWED:
                yield self.finding(
                    module,
                    node,
                    f"call to {resolved}: module-level numpy.random draws "
                    "share one hidden global RandomState; construct an "
                    "explicit generator (numpy.random.default_rng / "
                    "repro.utils.rng.rng_from_seed) and draw from it",
                )
