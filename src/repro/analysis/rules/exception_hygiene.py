"""RPR006 — exception hygiene: no bare or silently-swallowed exception
handlers in the execution-critical packages.

The durable-sweep work hardened ``runtime/``, ``experiments/`` and
``traces/`` around an explicit failure contract: a worker crash becomes
a per-run error record, a malformed trace row becomes a quarantine
entry, a torn artifact becomes a retry. A handler that silently eats an
exception punches a hole in that contract — the sweep reports success
while a run quietly produced garbage. This rule flags, inside those
packages:

- **bare ``except:``** — it catches ``SystemExit`` and
  ``KeyboardInterrupt`` too, so a Ctrl-C (or the durable executor's own
  ``SystemExit(1)`` crash-isolation signal) can be absorbed mid-cleanup.
  Name the exceptions; use ``BaseException`` only with a waiver saying
  why.
- **do-nothing handlers** — an ``except ...:`` whose body is only
  ``pass``/``...`` discards the failure without recording it. Record it
  (error sidecar, :class:`~repro.experiments.runner.RunError`, quarantine
  issue, counter) or re-raise.
- **broad handlers that never re-raise** — ``except Exception``/
  ``except BaseException`` (alone or in a tuple) whose body contains no
  ``raise``. Catching everything is legal only at a crash-isolation
  boundary, and a boundary converts the failure into a typed record
  *and* terminates or re-raises (``raise SystemExit(1)`` counts: the
  worker dies loudly and the parent records the exit code).

Intentional exceptions carry a reasoned waiver on the offending line::

    except (OSError, json.JSONDecodeError):
        pass  # repro: lint-ok[RPR006] why swallowing is correct here

A waiver without a reason is itself a finding (RPR000).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.engine import (
    Finding,
    Rule,
    Severity,
    SourceModule,
    register_rule,
)

__all__ = ["ExceptionHygieneRule"]

#: Package directories the failure contract covers: the engines, the
#: sweep executors, trace ingestion, and the serving layer (whose
#: write-ahead journal makes a swallowed exception a durability hole:
#: an advance that failed silently still looks journaled).
SCOPED_DIRS = frozenset({"runtime", "experiments", "traces", "serve"})

#: Exception names that make a handler "broad": everything (or nearly
#: everything) funnels through it.
BROAD_NAMES = frozenset({"Exception", "BaseException"})


def in_scope(module: SourceModule) -> bool:
    """Is this file part of the failure-contract-scoped packages?"""
    return not SCOPED_DIRS.isdisjoint(module.path.resolve().parts)


def _is_noop(stmt: ast.stmt) -> bool:
    """``pass`` or a bare ``...`` expression statement."""
    if isinstance(stmt, ast.Pass):
        return True
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )


def _exception_names(annotation: ast.expr | None) -> list[str]:
    """The caught exception names: ``except A`` -> [A], ``except (A, B)``
    -> [A, B]. Attribute chains report their last segment
    (``socket.error`` -> ``error``), which is enough for the broad-name
    check."""
    if annotation is None:
        return []
    nodes = (
        list(annotation.elts)
        if isinstance(annotation, ast.Tuple)
        else [annotation]
    )
    names: list[str] = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


def _contains_raise(body: list[ast.stmt]) -> bool:
    """Does any statement in the handler body (recursively) re-raise?

    Any ``raise`` counts, including ``raise SystemExit(1)`` — the
    crash-isolation workers convert exceptions into error sidecars and
    then die loudly, which is exactly the contract this rule protects.
    Nested function/class definitions are skipped: a ``raise`` inside a
    callback defined in the handler does not fire when the handler does.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue  # a raise inside a nested def fires later, if ever
        stack.extend(ast.iter_child_nodes(node))
    return False


@register_rule
class ExceptionHygieneRule(Rule):
    """Ban bare excepts, do-nothing handlers and non-re-raising broad
    handlers inside the failure-contract-scoped packages."""

    id = "RPR006"
    severity = Severity.ERROR
    summary = (
        "no bare except, swallowed exceptions or non-re-raising broad "
        "handlers in runtime/, experiments/, traces/"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if not in_scope(module):
            return ()
        return list(self._check(module))

    def _check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:' also catches SystemExit and "
                    "KeyboardInterrupt; name the exceptions (or "
                    "BaseException with a reasoned waiver)",
                )
                continue
            if all(_is_noop(stmt) for stmt in node.body):
                yield self.finding(
                    module,
                    node,
                    "exception swallowed: handler body does nothing — "
                    "record the failure (error record, quarantine issue, "
                    "counter) or re-raise; if dropping it is genuinely "
                    "correct, add a reasoned lint-ok[RPR006] waiver",
                )
                continue
            broad = BROAD_NAMES.intersection(_exception_names(node.type))
            if broad and not _contains_raise(node.body):
                yield self.finding(
                    module,
                    node,
                    f"broad handler (except {sorted(broad)[0]}) never "
                    "re-raises: catch-all handlers are crash-isolation "
                    "boundaries and must convert the failure into a "
                    "record and then raise (SystemExit counts) — or "
                    "carry a reasoned waiver",
                )
