"""RPR007 — public facade signatures are keyword-only past the first
argument.

The facade modules (``repro/api.py`` and everything under
``repro/serve/``) are the repo's outward API: call sites in user code,
docs and notebooks. A positional parameter there is load-bearing
forever — reordering or inserting one silently rebinds every caller.
Keyword-only signatures (``def simulate(trace, *, assignment, policy,
...)``) keep those call sites greppable and reorder-safe, so this rule
requires every *module-level public function* in a facade module to
take at most one positional parameter.

Scope is deliberately narrow: private helpers (leading underscore),
methods, and nested functions are exempt — the contract is about the
importable surface, not internals. A signature that genuinely wants
more positional slots can carry a reasoned waiver::

    def pairwise(left, right):  # repro: lint-ok[RPR007] symmetric args
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.engine import (
    Finding,
    Rule,
    Severity,
    SourceModule,
    register_rule,
)

__all__ = ["FacadeSignatureRule"]


def _is_facade_module(module: SourceModule) -> bool:
    path = module.path
    if path.name == "api.py" and path.parent.name == "repro":
        return True
    return path.parent.name == "serve" and path.parent.parent.name == "repro"


@register_rule
class FacadeSignatureRule(Rule):
    """Public facade functions take at most one positional parameter."""

    id = "RPR007"
    severity = Severity.ERROR
    summary = (
        "public functions in facade modules (repro/api.py, repro/serve/) "
        "must be keyword-only past the first parameter"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if not _is_facade_module(module):
            return []
        return list(self._check(module))

    def _check(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            n_positional = len(node.args.posonlyargs) + len(node.args.args)
            if n_positional > 1:
                names = [
                    a.arg
                    for a in (*node.args.posonlyargs, *node.args.args)
                ][1:]
                yield self.finding(
                    module,
                    node,
                    f"facade function {node.name}() takes "
                    f"{n_positional} positional parameters; make "
                    f"{', '.join(names)} keyword-only (add a bare * "
                    "after the first parameter)",
                )
