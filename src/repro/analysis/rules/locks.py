"""RPR008 — lock discipline in the serving layer.

``repro.serve`` is the one genuinely concurrent subsystem: HTTP handler
threads and per-session auto-tick daemon threads share
``SessionManager``'s registry and each ``_ManagedSession``'s state. The
convention (documented in ``serve/app.py``) is per-object mutexes —
``self._registry_lock`` guards the session registry, ``managed.lock``
guards one session — and a race here does not crash loudly; it corrupts
a tenant's simulation silently. This rule machine-checks the
convention, using the project analysis core for the typing it needs
(``managed = self._get(sid)`` resolves through ``_get``'s return
annotation to ``_ManagedSession``):

- a **guarded class** is any class whose ``__init__`` assigns a
  ``threading.Lock``/``RLock`` attribute;
- its **shared state** is every mutable container/counter attribute
  assigned in ``__init__`` plus every attribute rebound outside
  ``__init__`` anywhere in the serving layer;
- every read or write of shared state outside the owner's ``__init__``
  must sit lexically inside ``with <same-receiver>.<lock-attr>:`` for
  one of the owner's locks — including *reads*: an unlocked
  ``sorted(self._sessions)`` races the registrations it iterates;
- two locks acquired nested in both orders is an **ordering** finding
  (the classic ABBA deadlock shape);
- a ``threading.Thread(..., daemon=True)`` target that writes, with no
  lock held, an attribute some ``snapshot()`` method reads is a
  **daemon-vs-snapshot** finding even when the owner has no lock at
  all.

Scope: files under a ``serve`` directory (fixture trees included). A
deliberate exception is waived at the access line with a reasoned
``# repro: lint-ok[RPR008] ...`` naming the invariant that makes the
unlocked access safe.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.engine import (
    Finding,
    Rule,
    Severity,
    SourceModule,
    register_rule,
)
from repro.analysis.project import (
    FunctionInfo,
    ProjectContext,
    ReachingDefs,
    dotted_name,
)

__all__ = ["LockDisciplineRule"]

_LOCK_TYPES = frozenset({"threading.Lock", "threading.RLock"})
_CONTAINER_KINDS = frozenset({"dict", "list", "set", "deque", "counter"})


def _serve_scope(path: Path) -> bool:
    return "serve" in path.parts


@dataclass
class _Access:
    """One read/write of a guarded class's attribute."""

    module: SourceModule
    fn: FunctionInfo
    node: ast.Attribute
    owner: str  # class name
    attr: str
    store: bool
    held: frozenset[str]  # dotted lock exprs held at this point
    base: str  # dotted receiver ("self", "managed", ...)
    in_owner_init: bool


@dataclass
class _WithEnter:
    """Entering a ``with <recv>.<lock>:`` whose receiver types to a
    guarded class — the raw material of the ordering check."""

    module: SourceModule
    node: ast.AST
    label: str  # "Class.lockattr"
    outer: tuple[str, ...]  # labels already held, outermost first


@dataclass
class _Store:
    """Any typed attribute write (for the daemon-vs-snapshot check)."""

    module: SourceModule
    fn: FunctionInfo
    node: ast.Attribute
    owner: str
    attr: str
    held: frozenset[str]


class _FunctionWalker:
    """Recursive walk of one function body tracking the ``with`` stack."""

    def __init__(
        self,
        rule: "LockDisciplineRule",
        module: SourceModule,
        fn: FunctionInfo,
        defs: ReachingDefs,
        locks: dict[str, tuple[str, ...]],
    ) -> None:
        self.rule = rule
        self.module = module
        self.fn = fn
        self.defs = defs
        self.locks = locks
        self.held: list[str] = []  # dotted lock exprs, outermost first
        self.labels: list[str] = []  # class-qualified, outermost first

    def walk(self) -> None:
        for stmt in self.fn.node.body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested callable does not hold the enclosing locks when it
            # later runs; analyze its body with an empty stack.
            saved_held, saved_labels = self.held, self.labels
            self.held, self.labels = [], []
            for child in ast.iter_child_nodes(node):
                self._visit(child)
            self.held, self.labels = saved_held, saved_labels
            return
        if isinstance(node, ast.Attribute):
            self._record_attribute(node)
        if isinstance(node, ast.Call):
            self._record_thread_spawn(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        entered: list[tuple[str, str | None]] = []
        for item in node.items:
            self._visit(item.context_expr)  # exprs evaluate pre-acquire
            if item.optional_vars is not None:
                self._visit(item.optional_vars)
            dotted = dotted_name(item.context_expr)
            if dotted is None:
                continue
            label = self._lock_label(item.context_expr)
            if label is not None:
                self.rule.with_enters.append(
                    _WithEnter(
                        module=self.module,
                        node=item.context_expr,
                        label=label,
                        outer=tuple(self.labels),
                    )
                )
            entered.append((dotted, label))
            self.held.append(dotted)
            if label is not None:
                self.labels.append(label)
        for stmt in node.body:
            self._visit(stmt)
        for dotted, label in reversed(entered):
            self.held.pop()
            if label is not None:
                self.labels.pop()

    def _lock_label(self, expr: ast.expr) -> str | None:
        """``"Class.lockattr"`` when ``expr`` is a lock attribute of a
        guarded class, else ``None``."""
        if not isinstance(expr, ast.Attribute):
            return None
        owner = self._receiver_class(expr.value)
        if owner is None:
            return None
        if expr.attr in self.locks.get(owner, ()):
            return f"{owner}.{expr.attr}"
        return None

    def _receiver_class(self, expr: ast.expr) -> str | None:
        inferred = self.defs.type_of_expr(expr)
        return inferred.detail if inferred.kind == "instance" else None

    def _record_attribute(self, node: ast.Attribute) -> None:
        owner = self._receiver_class(node.value)
        if owner is None:
            return
        base = dotted_name(node.value)
        if base is None:
            return
        store = isinstance(node.ctx, (ast.Store, ast.Del))
        record = _Access(
            module=self.module,
            fn=self.fn,
            node=node,
            owner=owner,
            attr=node.attr,
            store=store,
            held=frozenset(self.held),
            base=base,
            in_owner_init=(
                self.fn.owner == owner and self.fn.name == "__init__"
            ),
        )
        if owner in self.locks:
            self.rule.accesses.append(record)
        if store:
            self.rule.stores.append(
                _Store(
                    module=self.module,
                    fn=self.fn,
                    node=node,
                    owner=owner,
                    attr=node.attr,
                    held=frozenset(self.held),
                )
            )
        if self.fn.name == "snapshot" and not store:
            self.rule.snapshot_reads.add((owner, node.attr))

    def _record_thread_spawn(self, node: ast.Call) -> None:
        """``threading.Thread(target=..., daemon=True)`` — resolve the
        target to a method qualname."""
        dotted = dotted_name(node.func)
        if dotted is None or not dotted.endswith("Thread"):
            return
        daemon = False
        target: ast.expr | None = None
        for kw in node.keywords:
            if kw.arg == "daemon":
                daemon = (
                    isinstance(kw.value, ast.Constant) and kw.value.value is True
                )
            elif kw.arg == "target":
                target = kw.value
        if not daemon or target is None:
            return
        if isinstance(target, ast.Attribute):
            owner = self._receiver_class(target.value)
            if owner is not None:
                self.rule.daemon_targets.add(f"{owner}.{target.attr}")
        elif isinstance(target, ast.Name):
            self.rule.daemon_targets.add(target.id)


@register_rule
class LockDisciplineRule(Rule):
    """Shared serving-layer state must be accessed under its lock."""

    id = "RPR008"
    severity = Severity.ERROR
    summary = (
        "serve-layer shared state (SessionManager registry, managed-"
        "session fields) must be read and written under its lock; lock "
        "order must be consistent; daemon threads must not race snapshot()"
    )
    project_scope = staticmethod(_serve_scope)

    def __init__(self) -> None:
        self.accesses: list[_Access] = []
        self.with_enters: list[_WithEnter] = []
        self.stores: list[_Store] = []
        self.snapshot_reads: set[tuple[str, str]] = set()
        self.daemon_targets: set[str] = set()  # "Class.method" or "func"

    def finalize(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        context = (
            modules
            if isinstance(modules, ProjectContext)
            else ProjectContext(list(modules))
        )
        scoped = [m for m in context if _serve_scope(m.path)]
        if not scoped:
            return ()
        locks = self._guarded_classes(context, scoped)
        if not locks:
            return ()
        for module in scoped:
            syms = context.symbols.module(module.display)
            if syms is None:
                continue
            functions = list(syms.functions.values())
            for cls in syms.classes.values():
                functions.extend(cls.methods.values())
            for fn in functions:
                defs = context.reaching(fn.node, module)
                _FunctionWalker(self, module, fn, defs, locks).walk()
        shared = self._shared_attrs(context, scoped, locks)
        out: list[Finding] = []
        out.extend(self._unguarded_findings(context, locks, shared))
        out.extend(self._ordering_findings())
        out.extend(self._daemon_findings())
        return out

    # -- model construction --------------------------------------------------
    def _guarded_classes(
        self, context: ProjectContext, scoped: Sequence[SourceModule]
    ) -> dict[str, tuple[str, ...]]:
        """Class name -> its lock attribute names."""
        displays = {m.display for m in scoped}
        out: dict[str, tuple[str, ...]] = {}
        for cls in context.symbols.iter_classes():
            if cls.module not in displays:
                continue
            lock_attrs = tuple(
                attr
                for attr, inferred in cls.attr_types.items()
                if inferred.kind == "call" and inferred.detail in _LOCK_TYPES
            )
            if lock_attrs:
                out[cls.name] = lock_attrs
        return out

    def _shared_attrs(
        self,
        context: ProjectContext,
        scoped: Sequence[SourceModule],
        locks: dict[str, tuple[str, ...]],
    ) -> dict[str, set[str]]:
        """Per guarded class: the attributes that need the lock — its
        ``__init__``-assigned mutable containers/counters plus anything
        rebound outside ``__init__``."""
        out: dict[str, set[str]] = {name: set() for name in locks}
        for name in locks:
            cls = context.symbols.find_class(name)
            if cls is None:
                continue
            for attr in cls.init_attrs:
                inferred = cls.attr_types.get(attr)
                if (
                    inferred is not None
                    and inferred.kind == "container"
                    and inferred.detail in _CONTAINER_KINDS
                ):
                    out[name].add(attr)
        for access in self.accesses:
            if access.store and not access.in_owner_init:
                out.setdefault(access.owner, set()).add(access.attr)
        for name, lock_attrs in locks.items():
            out[name] -= set(lock_attrs)
        return out

    # -- findings ------------------------------------------------------------
    def _unguarded_findings(
        self,
        context: ProjectContext,
        locks: dict[str, tuple[str, ...]],
        shared: dict[str, set[str]],
    ) -> Iterator[Finding]:
        entries = self._entry_reachable(context)
        for access in self.accesses:
            if access.in_owner_init:
                continue
            if access.attr not in shared.get(access.owner, ()):
                continue
            lock_attrs = locks[access.owner]
            wanted = {f"{access.base}.{lock}" for lock in lock_attrs}
            if access.held & wanted:
                continue
            verb = "write to" if access.store else "read of"
            reach = ""
            if access.fn.qualname in entries:
                reach = f" (reachable from {entries[access.fn.qualname]})"
            lock_list = " / ".join(
                f"with {access.base}.{lock}:" for lock in lock_attrs
            )
            yield self.finding(
                access.module,
                access.node,
                f"unlocked {verb} shared {access.owner}.{access.attr}"
                f"{reach} — wrap the access in {lock_list} or waive with "
                "the invariant that makes it safe",
            )

    def _entry_reachable(self, context: ProjectContext) -> dict[str, str]:
        """qualname -> the entry point it is reachable from (public
        method, module function, or daemon-thread target)."""
        graph = context.call_graph
        origin: dict[str, str] = {}
        queue: list[str] = []
        for syms in context.symbols.modules.values():
            for fn in syms.functions.values():
                origin.setdefault(fn.qualname, fn.name)
                queue.append(fn.qualname)
            for cls in syms.classes.values():
                for fn in cls.methods.values():
                    short = f"{cls.name}.{fn.name}"
                    is_entry = not fn.name.startswith("_")
                    if short in self.daemon_targets or (
                        fn.name in self.daemon_targets
                    ):
                        is_entry = True
                    if is_entry:
                        origin.setdefault(fn.qualname, short)
                        queue.append(fn.qualname)
        while queue:
            current = queue.pop()
            for callee in graph.callees(current):
                if callee not in origin:
                    origin[callee] = origin[current]
                    queue.append(callee)
        return origin

    def _ordering_findings(self) -> Iterator[Finding]:
        seen: dict[tuple[str, str], _WithEnter] = {}
        for enter in self.with_enters:
            for outer in enter.outer:
                if outer != enter.label:
                    seen.setdefault((outer, enter.label), enter)
        reported: set[frozenset[str]] = set()
        for (outer, inner), enter in sorted(seen.items()):
            if (inner, outer) not in seen:
                continue
            pair = frozenset((outer, inner))
            if pair in reported:
                continue
            reported.add(pair)
            other = seen[(inner, outer)]
            yield self.finding(
                enter.module,
                enter.node,
                f"inconsistent lock order: {inner} acquired while holding "
                f"{outer} here, but {other.module.display}:"
                f"{getattr(other.node, 'lineno', '?')} acquires them in "
                "the opposite order — pick one order (ABBA deadlock risk)",
            )

    def _daemon_findings(self) -> Iterator[Finding]:
        if not self.daemon_targets:
            return
        for store in self.stores:
            short = (
                f"{store.fn.owner}.{store.fn.name}"
                if store.fn.owner
                else store.fn.name
            )
            if short not in self.daemon_targets:
                continue
            if store.held:
                continue
            if (store.owner, store.attr) not in self.snapshot_reads:
                continue
            yield self.finding(
                store.module,
                store.node,
                f"daemon thread {short} writes {store.owner}.{store.attr} "
                "with no lock held, and a snapshot() method reads it — "
                "snapshots may observe torn state",
            )
