"""RPR002 — engine parity: the reference and fast loops must speak the
same surface.

``runtime/simulator.py`` (the reference minute loop) and
``runtime/fastpath.py`` (the event-driven loop) are contractually
metric-identical — the golden tests pin bit-equality, but only for the
configurations they sample. A handler added to one loop and forgotten in
the other (a new :class:`~repro.runtime.events.EventKind`, a new
``RunResult`` counter, a new obs record hook or metric instrument) slips
straight past a golden test that never exercises it. This rule makes the
asymmetry itself the error: it cross-references the two engine files and
flags every

- ``EventKind.X`` attribute reference,
- ``RunResult(...)`` keyword argument,
- ``record_*`` observability-hook call, and
- metric instrument name (the string handed to ``counter``/``gauge``/
  ``histogram``)

that appears in one engine file but not the other. A deliberate
asymmetry (e.g. an event emitted from a helper that both engines share)
is waived at the referencing line with a reasoned
``# repro: lint-ok[RPR002] ...`` comment — except for the two
fleet-reducer emit sites listed in :data:`FLEET_REDUCER_CARVEOUTS`,
which are structural to the columnar engine and therefore carved out in
the rule itself rather than re-waived at every call site.

Engine files are recognised by basename (``simulator.py`` /
``fastpath.py`` / ``fleet.py``) and compared pairwise per directory, so
a fixture copy of the set in a test sandbox is checked exactly like the
real one. ``fleet.py`` (the columnar fleet-scale loop) joins the
comparison wherever it sits next to at least one of the other two, on
every category — including the obs-hook and metric surfaces, now that
the fleet engine carries a real observability session
(:class:`~repro.obs.fleet.FleetObsSession`).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from repro.analysis.engine import (
    Finding,
    Rule,
    Severity,
    SourceModule,
    register_rule,
)

__all__ = ["EngineParityRule"]

REFERENCE_BASENAME = "simulator.py"
FAST_BASENAME = "fastpath.py"
FLEET_BASENAME = "fleet.py"

#: Comparison order: every pair of these present in one directory is
#: cross-checked (reference first, so its findings sort first).
_ENGINE_BASENAMES = (REFERENCE_BASENAME, FAST_BASENAME, FLEET_BASENAME)

_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})

#: Documented carve-out: obs hooks the columnar reducer emits from its
#: own inlined Alg. 1 (``record_peak``: the loop engines record pool
#: peaks from the shared ``GlobalOptimizer.review`` helper, which the
#: reducer inlines for vectorization) or that collide with same-named
#: non-obs bookkeeping (``record_downgrade``: fleet.py's call is
#: ``priority.record_downgrade``, downgrade-count bookkeeping that
#: mirrors the shared helper — the obs-surface analogue lives in
#: ``simulator.py``). These names are exempt from the one-sided check
#: when the *fleet* engine is the side that references them; any other
#: asymmetry (including these names appearing one-sided in
#: simulator/fastpath) still fails. Pinned by
#: ``tests/test_analysis_rules.py``.
FLEET_REDUCER_CARVEOUTS = frozenset({"record_peak", "record_downgrade"})


def _engine_scope(path: Path) -> bool:
    return path.name in _ENGINE_BASENAMES


class _EngineSurface(ast.NodeVisitor):
    """Collect the parity-checked references of one engine file, each
    with the position of its first occurrence."""

    def __init__(self) -> None:
        self.event_kinds: dict[str, ast.AST] = {}
        self.run_result_kwargs: dict[str, ast.AST] = {}
        self.obs_hooks: dict[str, ast.AST] = {}
        self.metric_names: dict[str, ast.AST] = {}

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "EventKind":
            self.event_kinds.setdefault(node.attr, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "RunResult":
            for keyword in node.keywords:
                if keyword.arg is not None:
                    self.run_result_kwargs.setdefault(keyword.arg, keyword)
        if isinstance(func, ast.Attribute):
            if func.attr.startswith("record_"):
                self.obs_hooks.setdefault(func.attr, node)
            if (
                func.attr in _METRIC_FACTORIES
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                self.metric_names.setdefault(node.args[0].value, node)
        self.generic_visit(node)


def _surface(module: SourceModule) -> _EngineSurface:
    visitor = _EngineSurface()
    visitor.visit(module.tree)
    return visitor


@register_rule
class EngineParityRule(Rule):
    """Cross-check simulator.py vs fastpath.py for one-sided references."""

    id = "RPR002"
    severity = Severity.ERROR
    summary = (
        "every EventKind / RunResult counter / obs hook / metric name in "
        "one engine must appear (or be waived) in the others"
    )
    project_scope = staticmethod(_engine_scope)

    def finalize(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        groups: dict[str, dict[str, SourceModule]] = {}
        for module in modules:
            name = module.path.name
            if name in _ENGINE_BASENAMES:
                key = str(module.path.resolve().parent)
                groups.setdefault(key, {})[name] = module
        out: list[Finding] = []
        for group in groups.values():
            present = [
                group[name] for name in _ENGINE_BASENAMES if name in group
            ]
            for i, first in enumerate(present):
                for second in present[i + 1 :]:
                    out.extend(self._compare(first, second))
        return out

    def _compare(
        self, reference: SourceModule, fast: SourceModule
    ) -> Iterator[Finding]:
        surf_ref = _surface(reference)
        surf_fast = _surface(fast)
        categories: list[tuple[str, dict[str, ast.AST], dict[str, ast.AST]]] = [
            ("EventKind", surf_ref.event_kinds, surf_fast.event_kinds),
            (
                "RunResult kwarg",
                surf_ref.run_result_kwargs,
                surf_fast.run_result_kwargs,
            ),
            ("obs hook", surf_ref.obs_hooks, surf_fast.obs_hooks),
            ("metric", surf_ref.metric_names, surf_fast.metric_names),
        ]
        for label, in_ref, in_fast in categories:
            yield from self._one_sided(label, reference, in_ref, fast, in_fast)
            yield from self._one_sided(label, fast, in_fast, reference, in_ref)

    def _one_sided(
        self,
        label: str,
        present: SourceModule,
        present_refs: dict[str, ast.AST],
        missing: SourceModule,
        missing_refs: dict[str, ast.AST],
    ) -> Iterator[Finding]:
        for name in sorted(set(present_refs) - set(missing_refs)):
            if (
                label == "obs hook"
                and present.path.name == FLEET_BASENAME
                and name in FLEET_REDUCER_CARVEOUTS
            ):
                continue
            yield self.finding(
                present,
                present_refs[name],
                f"engine parity: {label} {name!r} is referenced in "
                f"{present.path.name} but not in {missing.path.name} — "
                "handle it in both engine loops, or waive here with a "
                "reason if a shared helper covers both",
            )
