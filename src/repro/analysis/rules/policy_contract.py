"""RPR003 — policy contract: every ``KeepAlivePolicy`` subclass must stay
engine- and sweep-safe.

Policies travel through the experiment runner's process pools (they are
constructed in the parent and pickled to workers) and through the
engines' lifecycle hooks (``attach_observability`` then ``bind``). Four
mechanical mistakes break those contracts silently:

- **skipping base initialisation** — a subclass ``__init__`` that never
  calls ``super().__init__()`` leaves ``self.obs``/``self.event_sink``
  unset, crashing only when observability is first enabled;
- **overriding the template hooks without delegating** — ``bind`` is a
  template method (it validates the assignment and then calls
  ``on_bind``); ``attach_observability`` wires the telemetry session.
  An override that forgets ``super().bind(...)`` /
  ``super().attach_observability(...)`` drops validation or telemetry
  for every wrapped component;
- **unpicklable state on self** — a lambda (or nested closure) stored on
  an attribute pickles on no platform; sweeps die only when the policy
  first crosses a process boundary;
- **module-level mutable state** — a module dict/list/set mutated by a
  policy is invisible to the process pool (each worker mutates its own
  copy) and leaks across runs within one process. Constants are fine as
  tuples/frozensets; per-run state belongs on the instance.

A class participates if any of its (textual) bases is ``KeepAlivePolicy``
or ends in ``Policy``; the abstract base itself is exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.engine import (
    Finding,
    Rule,
    Severity,
    SourceModule,
    register_rule,
)

__all__ = ["PolicyContractRule"]

#: Template methods whose override must delegate to super().
DELEGATING_HOOKS = ("bind", "attach_observability")

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "deque"})


def _base_names(node: ast.ClassDef) -> list[str]:
    """Last dotted segment of each base (``a.b.FooPolicy`` -> ``FooPolicy``)."""
    names: list[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_policy_class(node: ast.ClassDef) -> bool:
    if node.name == "KeepAlivePolicy":
        return False
    return any(
        name == "KeepAlivePolicy" or name.endswith("Policy")
        for name in _base_names(node)
    )


def _calls_super_method(func: ast.FunctionDef, method: str) -> bool:
    """Does ``func`` contain a ``super().<method>(...)`` call?"""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super"
        ):
            return True
    return False


def _self_attribute_target(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


@register_rule
class PolicyContractRule(Rule):
    """Lifecycle, picklability and shared-state checks for policies."""

    id = "RPR003"
    severity = Severity.ERROR
    summary = (
        "KeepAlivePolicy subclasses: super().__init__/bind/"
        "attach_observability delegation, no lambdas on self, no "
        "module-level mutable state"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        policy_classes = [
            node
            for node in module.tree.body
            if isinstance(node, ast.ClassDef) and _is_policy_class(node)
        ]
        if not policy_classes:
            return ()
        out: list[Finding] = []
        for cls in policy_classes:
            out.extend(self._check_class(module, cls))
        out.extend(self._check_module_state(module))
        return out

    def _check_class(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef)
        }
        init = methods.get("__init__")
        if init is not None and not _calls_super_method(init, "__init__"):
            yield self.finding(
                module,
                init,
                f"{cls.name}.__init__ never calls super().__init__(): the "
                "base class wires self.obs/self.event_sink; skipping it "
                "breaks the first observed run",
            )
        for hook in DELEGATING_HOOKS:
            override = methods.get(hook)
            if override is not None and not _calls_super_method(override, hook):
                yield self.finding(
                    module,
                    override,
                    f"{cls.name}.{hook} overrides the lifecycle template "
                    f"without calling super().{hook}(...): input validation "
                    "and telemetry wiring are lost",
                )
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets: list[ast.expr]
                if isinstance(node, ast.Assign):
                    targets = node.targets
                else:
                    targets = [node.target]
                value = node.value
                if value is None:
                    continue
                if any(_self_attribute_target(t) for t in targets):
                    for sub in ast.walk(value):
                        if isinstance(sub, ast.Lambda):
                            yield self.finding(
                                module,
                                sub,
                                f"{cls.name} stores a lambda on self: "
                                "lambdas do not pickle, so the policy dies "
                                "crossing the sweep runner's process pool — "
                                "use a def/functools.partial",
                            )

    def _check_module_state(self, module: SourceModule) -> Iterator[Finding]:
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value: ast.expr | None = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            if value is None or not _is_mutable_value(value):
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names or all(n.startswith("__") for n in names):
                continue  # __all__ and friends
            yield self.finding(
                module,
                stmt,
                f"module-level mutable state ({', '.join(names)}) in a "
                "policy module: process-pool workers each mutate their own "
                "copy and in-process runs leak state into each other — "
                "make it a tuple/frozenset or move it onto the instance",
            )
