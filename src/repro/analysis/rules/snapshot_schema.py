"""RPR010 — snapshot-schema drift between the engines and the
checkpoint version.

The bit-identity contract of checkpoint/resume (see
``runtime/checkpoint.py``) hangs on an unwritten invariant: the field
set each engine's ``live_state()`` pickles is *part of the schema* that
``CHECKPOINT_SCHEMA_VERSION`` names. Add, remove, or retype a
snapshot-carried field without bumping the version and an old snapshot
restores into a stepper missing state — usually silently, as a wrong
number many minutes later. This rule makes the schema explicit and
machine-checks it against a golden manifest in the checkpoint module:

- ``SNAPSHOT_FIELDS`` maps each engine key (``reference`` /
  ``fast`` / ``fleet`` — by engine file basename) to the exact key set
  its ``live_state()`` returns. Any drift between the dict literal in
  the engine and the manifest is a finding: updating the manifest is
  the reviewed act that accompanies a version bump;
- ``STATE_FIELDS`` pins the ``SimulationState`` dataclass itself as
  ``(name, annotation)`` pairs, so *retyping* a snapshot field is also
  drift;
- ``CHECKPOINT_SCHEMA_VERSION`` must be an integer literal, and the
  checkpoint module must contain a ``v<N>:`` migration note for the
  current version — a bump without a note is itself a finding;
- ``WIRE_FIELDS`` pins the JSON wire envelope: when the checkpoint
  module defines a ``to_wire_json`` codec, the key set of the dict
  literal it emits must match the manifest — the envelope is what
  snapshots look like over HTTP and in the serve-layer journal, so an
  unreviewed key change breaks cross-version restore exactly like a
  ``live_state()`` drift.

Files are grouped by directory (like the engine-parity rule), so a
fixture copy of ``checkpoint.py`` + ``simulator.py`` in a test sandbox
is checked exactly like the real tree. A directory with engine files
but no ``checkpoint.py`` is skipped (``obs/fleet.py`` has no snapshot
surface).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from repro.analysis.engine import (
    Finding,
    Rule,
    Severity,
    SourceModule,
    register_rule,
)

__all__ = ["SnapshotSchemaRule"]

CHECKPOINT_BASENAME = "checkpoint.py"

#: Engine file basename -> its key in the ``SNAPSHOT_FIELDS`` manifest.
ENGINE_KEYS = {
    "simulator.py": "reference",
    "fastpath.py": "fast",
    "fleet.py": "fleet",
}

_SCOPE_BASENAMES = frozenset({CHECKPOINT_BASENAME, *ENGINE_KEYS})

_VERSION_NAME = "CHECKPOINT_SCHEMA_VERSION"
_MANIFEST_NAME = "SNAPSHOT_FIELDS"
_STATE_MANIFEST_NAME = "STATE_FIELDS"
_WIRE_MANIFEST_NAME = "WIRE_FIELDS"
_WIRE_CODEC_NAME = "to_wire_json"
_STATE_CLASS = "SimulationState"


def _snapshot_scope(path: Path) -> bool:
    return path.name in _SCOPE_BASENAMES


def _assign_value(tree: ast.Module, name: str) -> ast.expr | None:
    """The value of top-level ``name = ...`` / ``name: T = ...``."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == name
                and node.value is not None
            ):
                return node.value
    return None


def _str_set(node: ast.expr) -> frozenset[str] | None:
    """A literal set of strings: ``{...}`` / ``frozenset({...})`` /
    ``frozenset((...))``; ``None`` when not statically readable."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("frozenset", "set")
        and len(node.args) == 1
        and not node.keywords
    ):
        node = node.args[0]
    if not isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        return None
    out: set[str] = set()
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        out.add(elt.value)
    return frozenset(out)


def _fmt(names: Iterable[str]) -> str:
    return ", ".join(sorted(names))


@register_rule
class SnapshotSchemaRule(Rule):
    """live_state() field sets and SimulationState must match the
    versioned SNAPSHOT_FIELDS/STATE_FIELDS manifest."""

    id = "RPR010"
    severity = Severity.ERROR
    summary = (
        "snapshot-carried fields (live_state keys, SimulationState "
        "fields) must match checkpoint.py's versioned SNAPSHOT_FIELDS/"
        "STATE_FIELDS manifest, and the schema version needs a "
        "migration note"
    )
    project_scope = staticmethod(_snapshot_scope)

    def finalize(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        groups: dict[str, dict[str, SourceModule]] = {}
        for module in modules:
            name = module.path.name
            if name in _SCOPE_BASENAMES:
                key = str(module.path.resolve().parent)
                groups.setdefault(key, {})[name] = module
        out: list[Finding] = []
        for group in groups.values():
            checkpoint = group.get(CHECKPOINT_BASENAME)
            if checkpoint is None:
                continue  # no snapshot surface in this directory
            out.extend(self._check_group(checkpoint, group))
        return out

    def _check_group(
        self, checkpoint: SourceModule, group: dict[str, SourceModule]
    ) -> Iterator[Finding]:
        version_node = _assign_value(checkpoint.tree, _VERSION_NAME)
        if version_node is None:
            yield self.finding(
                checkpoint,
                checkpoint.tree,
                f"checkpoint module defines no {_VERSION_NAME} — snapshot "
                "compatibility cannot be versioned",
            )
            return
        version: int | None = None
        if isinstance(version_node, ast.Constant) and isinstance(
            version_node.value, int
        ):
            version = version_node.value
        else:
            yield self.finding(
                checkpoint,
                version_node,
                f"{_VERSION_NAME} must be an integer literal so tooling "
                "can read it statically",
                severity=Severity.WARNING,
            )
        if version is not None and f"v{version}:" not in checkpoint.source:
            yield self.finding(
                checkpoint,
                version_node,
                f"{_VERSION_NAME} = {version} has no 'v{version}:' "
                "migration note in this module — a version bump must say "
                "what changed and how old snapshots are affected",
            )

        manifest_node = _assign_value(checkpoint.tree, _MANIFEST_NAME)
        manifest = self._read_manifest(checkpoint, manifest_node)
        engines_present = [
            name for name in ENGINE_KEYS if name in group
            if self._live_state_defs(group[name])
        ]
        if manifest is None:
            if manifest_node is None and engines_present:
                yield self.finding(
                    checkpoint,
                    checkpoint.tree,
                    f"engine live_state() methods exist ({_fmt(engines_present)}) "
                    f"but checkpoint module has no {_MANIFEST_NAME} manifest "
                    "pinning their snapshot-carried field sets",
                )
        else:
            for name in engines_present:
                yield from self._check_engine(
                    group[name], ENGINE_KEYS[name], manifest
                )

        yield from self._check_state_class(checkpoint)
        yield from self._check_wire_codec(checkpoint)

    # -- manifest ------------------------------------------------------------
    def _read_manifest(
        self, checkpoint: SourceModule, node: ast.expr | None
    ) -> dict[str, frozenset[str]] | None:
        if node is None or not isinstance(node, ast.Dict):
            return None
        out: dict[str, frozenset[str]] = {}
        for key, value in zip(node.keys, node.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                continue
            fields = _str_set(value)
            if fields is not None:
                out[key.value] = fields
        return out

    # -- live_state vs manifest ---------------------------------------------
    @staticmethod
    def _live_state_defs(
        module: SourceModule,
    ) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        return [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "live_state"
        ]

    def _check_engine(
        self,
        module: SourceModule,
        engine_key: str,
        manifest: dict[str, frozenset[str]],
    ) -> Iterator[Finding]:
        for fn in self._live_state_defs(module):
            keys = self._returned_keys(fn)
            if keys is None:
                yield self.finding(
                    module,
                    fn,
                    "live_state() does not return a single dict literal "
                    "with string keys — the snapshot field set cannot be "
                    "verified against the manifest",
                    severity=Severity.WARNING,
                )
                continue
            expected = manifest.get(engine_key)
            if expected is None:
                yield self.finding(
                    module,
                    fn,
                    f"engine {engine_key!r} has a live_state() but no entry "
                    f"in {_MANIFEST_NAME} — add it (and bump "
                    f"{_VERSION_NAME} with a migration note)",
                )
                continue
            added = keys - expected
            removed = expected - keys
            if added or removed:
                detail = []
                if added:
                    detail.append(f"added: {_fmt(added)}")
                if removed:
                    detail.append(f"removed: {_fmt(removed)}")
                yield self.finding(
                    module,
                    fn,
                    f"snapshot-carried fields of engine {engine_key!r} "
                    f"drifted from {_MANIFEST_NAME} ({'; '.join(detail)}) — "
                    f"update the manifest AND bump {_VERSION_NAME} with a "
                    "migration note; old snapshots restore into this field "
                    "set",
                )

    @staticmethod
    def _returned_keys(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> frozenset[str] | None:
        returns = [
            node
            for node in ast.walk(fn)
            if isinstance(node, ast.Return) and node.value is not None
        ]
        if len(returns) != 1 or not isinstance(returns[0].value, ast.Dict):
            return None
        keys: set[str] = set()
        for key in returns[0].value.keys:
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                return None
            keys.add(key.value)
        return frozenset(keys)

    # -- SimulationState vs STATE_FIELDS -------------------------------------
    def _check_state_class(self, checkpoint: SourceModule) -> Iterator[Finding]:
        state_cls: ast.ClassDef | None = None
        for node in checkpoint.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == _STATE_CLASS:
                state_cls = node
                break
        manifest_node = _assign_value(checkpoint.tree, _STATE_MANIFEST_NAME)
        if state_cls is None:
            return
        actual = [
            (item.target.id, ast.unparse(item.annotation))
            for item in state_cls.body
            if isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
        ]
        if manifest_node is None:
            yield self.finding(
                checkpoint,
                state_cls,
                f"{_STATE_CLASS} exists but the checkpoint module has no "
                f"{_STATE_MANIFEST_NAME} manifest pinning its (name, type) "
                "pairs — retyping a snapshot field would go unnoticed",
            )
            return
        expected = self._read_state_manifest(manifest_node)
        if expected is None:
            yield self.finding(
                checkpoint,
                manifest_node,
                f"{_STATE_MANIFEST_NAME} must be a literal tuple of "
                "(name, annotation) string pairs",
                severity=Severity.WARNING,
            )
            return
        if actual != expected:
            yield self.finding(
                checkpoint,
                state_cls,
                f"{_STATE_CLASS} fields {actual!r} drifted from "
                f"{_STATE_MANIFEST_NAME} {expected!r} — update the manifest "
                f"AND bump {_VERSION_NAME} with a migration note (a field "
                "rename or retype changes what old snapshots restore into)",
            )

    # -- to_wire_json vs WIRE_FIELDS ------------------------------------------
    def _check_wire_codec(self, checkpoint: SourceModule) -> Iterator[Finding]:
        codec: ast.FunctionDef | ast.AsyncFunctionDef | None = None
        for node in ast.walk(checkpoint.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == _WIRE_CODEC_NAME
            ):
                codec = node
                break
        if codec is None:
            return
        manifest_node = _assign_value(checkpoint.tree, _WIRE_MANIFEST_NAME)
        if manifest_node is None:
            yield self.finding(
                checkpoint,
                codec,
                f"a {_WIRE_CODEC_NAME}() wire codec exists but the "
                f"checkpoint module has no {_WIRE_MANIFEST_NAME} manifest "
                "pinning the envelope's key set — an envelope key change "
                "would go unreviewed",
            )
            return
        expected = _str_set(manifest_node)
        if expected is None:
            yield self.finding(
                checkpoint,
                manifest_node,
                f"{_WIRE_MANIFEST_NAME} must be a literal tuple/set of "
                "string keys so tooling can read it statically",
                severity=Severity.WARNING,
            )
            return
        emitted = self._emitted_keys(codec)
        if emitted is None:
            yield self.finding(
                checkpoint,
                codec,
                f"{_WIRE_CODEC_NAME}() does not build a single dict "
                "literal with string keys — the envelope key set cannot "
                f"be verified against {_WIRE_MANIFEST_NAME}",
                severity=Severity.WARNING,
            )
            return
        added = emitted - expected
        removed = expected - emitted
        if added or removed:
            detail = []
            if added:
                detail.append(f"added: {_fmt(added)}")
            if removed:
                detail.append(f"removed: {_fmt(removed)}")
            yield self.finding(
                checkpoint,
                codec,
                f"wire-envelope keys of {_WIRE_CODEC_NAME}() drifted from "
                f"{_WIRE_MANIFEST_NAME} ({'; '.join(detail)}) — update the "
                f"manifest AND note the change at {_VERSION_NAME}; peers "
                "on the old envelope cannot restore these snapshots",
            )

    @staticmethod
    def _emitted_keys(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> frozenset[str] | None:
        dicts = [
            node for node in ast.walk(fn) if isinstance(node, ast.Dict)
        ]
        if len(dicts) != 1:
            return None
        keys: set[str] = set()
        for key in dicts[0].keys:
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                return None
            keys.add(key.value)
        return frozenset(keys)

    @staticmethod
    def _read_state_manifest(
        node: ast.expr,
    ) -> list[tuple[str, str]] | None:
        if not isinstance(node, (ast.Tuple, ast.List)):
            return None
        out: list[tuple[str, str]] = []
        for elt in node.elts:
            if not (
                isinstance(elt, ast.Tuple)
                and len(elt.elts) == 2
                and all(
                    isinstance(part, ast.Constant)
                    and isinstance(part.value, str)
                    for part in elt.elts
                )
            ):
                return None
            first, second = elt.elts
            assert isinstance(first, ast.Constant)
            assert isinstance(second, ast.Constant)
            out.append((str(first.value), str(second.value)))
        return out
