"""RPR005 — spec-string hygiene: every spec literal must actually parse.

The CLI's mini-languages — ``--faults`` ``key=value`` bundles, comma
float lists for ``--rates``, registry policy names — appear as literals
in argparse defaults, docstring examples and call sites. A typo'd
example (``spwan=0.1``) or a default naming a renamed policy only blows
up when a user pastes it. This rule finds those literals and runs them
through the real parsers (:mod:`repro.utils.specs`,
:meth:`repro.faults.plan.FaultPlan.from_spec`, the
:mod:`repro.api` registry), so the documentation and defaults can never
drift from the implementation:

- string arguments of ``FaultPlan.from_spec(...)`` and ``faults=``
  keywords must build a valid :class:`~repro.faults.plan.FaultPlan`;
- ``add_argument("--faults", default=...)`` / ``("--rates", default=...)``
  defaults must parse;
- policy-name literals in ``make_policy(...)`` / ``policy_spec(...)``
  calls, ``--policies`` defaults, and ``*POLICIES*`` constant tuples
  must be registered names;
- fault-spec-shaped fragments *inside any string literal* (docstring and
  help-text examples like ``'spawn=0.1,slow=0.05,seed=7'``) are
  validated too, when every key in the fragment is a fault-spec key.

The heavy imports (``repro.api`` pulls the registry, ``FaultPlan`` pulls
numpy) happen lazily on first use so ``import repro.analysis`` stays
stdlib-only.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator

from repro.analysis.engine import (
    Finding,
    Rule,
    Severity,
    SourceModule,
    register_rule,
)

__all__ = ["SpecStringRule"]

#: ``key=value(,key=value)+`` runs inside larger text — at least two
#: pairs, so prose containing a single ``a=b`` is never misread.
_KV_RUN_RE = re.compile(
    r"[A-Za-z][\w-]*=[^\s,'\"`]+(?:,[A-Za-z][\w-]*=[^\s,'\"`]+)+"
)


def _str_const(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _Validators:
    """Lazily-imported handles on the real parsers; ``None`` members mean
    the corresponding check is skipped (import unavailable)."""

    def __init__(self) -> None:
        try:
            from repro.faults.plan import _SPEC_FIELDS, FaultPlan

            self.fault_plan: type | None = FaultPlan
            self.fault_keys: frozenset[str] = frozenset(_SPEC_FIELDS)
        except Exception:  # pragma: no cover - numpy always present here
            self.fault_plan = None
            self.fault_keys = frozenset()
        try:
            from repro.api import list_policies

            self.policy_names: frozenset[str] | None = frozenset(
                list_policies()
            )
        except Exception:  # pragma: no cover
            self.policy_names = None

    def fault_spec_error(self, spec: str) -> str | None:
        """Why ``spec`` is not a valid fault plan, or None if it is."""
        if self.fault_plan is None:
            return None
        from repro.utils.specs import SpecError

        try:
            self.fault_plan.from_spec(spec)
        except (SpecError, ValueError, TypeError) as exc:
            return str(exc)
        return None

    def float_list_error(self, spec: str) -> str | None:
        from repro.utils.specs import SpecError, parse_float_list

        try:
            parse_float_list(spec, "--rates")
        except (SpecError, ValueError) as exc:
            return str(exc)
        return None


@register_rule
class SpecStringRule(Rule):
    """Validate fault-spec, rate-list and policy-name literals with the
    parsers that will actually consume them."""

    id = "RPR005"
    severity = Severity.ERROR
    summary = (
        "fault/policy/rate spec literals (defaults, examples, registry "
        "names) must parse via utils.specs / the api registry"
    )

    def __init__(self) -> None:
        self._validators: _Validators | None = None

    @property
    def validators(self) -> _Validators:
        if self._validators is None:
            self._validators = _Validators()
        return self._validators

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        return list(self._check(module))

    def _check(self, module: SourceModule) -> Iterator[Finding]:
        explicit: set[int] = set()  # id() of Constant nodes already checked
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, explicit)
            elif isinstance(node, ast.Assign):
                yield from self._check_policy_constant(module, node, explicit)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and id(node) not in explicit
            ):
                yield from self._check_embedded(module, node)

    # -- explicit spec-bearing call sites ---------------------------------
    def _check_call(
        self, module: SourceModule, node: ast.Call, explicit: set[int]
    ) -> Iterator[Finding]:
        func = node.func
        func_name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if func_name == "from_spec" and node.args:
            spec = _str_const(node.args[0])
            if spec is not None:
                explicit.add(id(node.args[0]))
                yield from self._fault_finding(module, node.args[0], spec)
        for keyword in node.keywords:
            if keyword.arg == "faults":
                spec = _str_const(keyword.value)
                if spec is not None:
                    explicit.add(id(keyword.value))
                    yield from self._fault_finding(module, keyword.value, spec)
        if func_name in ("make_policy", "policy_spec") and node.args:
            name = _str_const(node.args[0])
            if name is not None:
                explicit.add(id(node.args[0]))
                yield from self._policy_finding(module, node.args[0], name)
        if func_name == "add_argument" and node.args:
            yield from self._check_add_argument(module, node, explicit)

    def _check_add_argument(
        self, module: SourceModule, node: ast.Call, explicit: set[int]
    ) -> Iterator[Finding]:
        flag = _str_const(node.args[0])
        if flag is None:
            return
        default = next(
            (kw.value for kw in node.keywords if kw.arg == "default"), None
        )
        if default is None:
            return
        if flag == "--faults":
            spec = _str_const(default)
            if spec is not None:
                explicit.add(id(default))
                yield from self._fault_finding(module, default, spec)
        elif flag == "--rates":
            spec = _str_const(default)
            if spec is not None:
                explicit.add(id(default))
                error = self.validators.float_list_error(spec)
                if error is not None:
                    yield self.finding(
                        module,
                        default,
                        f"--rates default {spec!r} does not parse: {error}",
                    )
        elif flag == "--policies" and isinstance(default, (ast.List, ast.Tuple)):
            for element in default.elts:
                name = _str_const(element)
                if name is not None:
                    explicit.add(id(element))
                    yield from self._policy_finding(module, element, name)

    def _check_policy_constant(
        self, module: SourceModule, node: ast.Assign, explicit: set[int]
    ) -> Iterator[Finding]:
        """``DEFAULT_POLICIES = ("pulse", ...)``-style name tuples."""
        if not any(
            isinstance(t, ast.Name) and "POLICIES" in t.id
            for t in node.targets
        ):
            return
        if not isinstance(node.value, (ast.List, ast.Tuple)):
            return
        for element in node.value.elts:
            name = _str_const(element)
            if name is not None:
                explicit.add(id(element))
                yield from self._policy_finding(module, element, name)

    # -- embedded examples -------------------------------------------------
    def _check_embedded(
        self, module: SourceModule, node: ast.Constant
    ) -> Iterator[Finding]:
        fault_keys = self.validators.fault_keys
        if not fault_keys:
            return
        for match in _KV_RUN_RE.finditer(node.value):
            run = match.group(0)
            keys = [part.partition("=")[0] for part in run.split(",")]
            if not all(key in fault_keys for key in keys):
                continue  # some other mini-language; not ours to judge
            error = self.validators.fault_spec_error(run)
            if error is not None:
                yield self.finding(
                    module,
                    node,
                    f"embedded fault-spec example {run!r} does not parse: "
                    f"{error}",
                )

    # -- shared finding builders ------------------------------------------
    def _fault_finding(
        self, module: SourceModule, node: ast.expr, spec: str
    ) -> Iterator[Finding]:
        error = self.validators.fault_spec_error(spec)
        if error is not None:
            yield self.finding(
                module,
                node,
                f"fault spec {spec!r} does not parse via "
                f"FaultPlan.from_spec: {error}",
            )

    def _policy_finding(
        self, module: SourceModule, node: ast.expr, name: str
    ) -> Iterator[Finding]:
        names = self.validators.policy_names
        if names is None or name in names:
            return
        yield self.finding(
            module,
            node,
            f"policy name {name!r} is not in the repro.api registry; "
            f"known: {', '.join(sorted(names))}",
        )
