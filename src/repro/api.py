"""The public front door: one policy registry, one simulate entry point.

Historically every caller — the CLI, the experiment runner, the benches,
the tests — kept its own dict of zero-argument policy-factory lambdas
and its own ``SimulationConfig(fast=...)`` plumbing. This module
replaces both:

- a **policy registry**: :func:`make_policy` constructs any bundled
  policy by name (with keyword overrides), :func:`list_policies`
  enumerates the names, :func:`policy_spec` exposes each policy's
  metadata (description, natural keep-alive window);
- a **simulate facade**: :func:`simulate` runs one policy over one
  trace on an explicitly chosen engine (``"auto"``/``"reference"``/
  ``"fast"``), optionally under a :class:`~repro.faults.plan.FaultPlan`,
  hiding the ``Simulation``/fastpath split and the deprecated
  ``SimulationConfig(fast=...)`` boolean.

Factories registered here must be picklable (they fan out across the
experiment runner's process pools), which is why :func:`make_policy`
pairs with ``functools.partial`` instead of lambdas::

    from functools import partial
    policies = {name: partial(make_policy, name, resilient=True)
                for name in list_policies()}
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, replace
from pathlib import Path

from repro.faults.isolation import ResilientPolicy
from repro.faults.plan import FaultPlan
from repro.models.variants import ModelFamily
from repro.obs.session import ObservabilityConfig
from repro.runtime.checkpoint import CheckpointConfig, SimulationState
from repro.runtime.metrics import RunResult
from repro.runtime.policy import KeepAlivePolicy
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.traces.schema import Trace

__all__ = [
    "PolicySpec",
    "list_policies",
    "make_policy",
    "policy_spec",
    "register_policy",
    "run_sweep",
    "simulate",
]


@dataclass(frozen=True)
class PolicySpec:
    """Registry entry for one constructible policy.

    ``keep_alive_window`` is the schedule capacity the policy was
    designed for: 10 minutes for the fixed-window policies and PULSE,
    240 for the long-horizon predictors (Wild/IceBreaker plan whole
    4-hour windows) — running those under a 10-minute schedule would
    silently truncate their keep-alives.
    """

    name: str
    factory: Callable[..., KeepAlivePolicy]
    description: str
    keep_alive_window: int = 10


_REGISTRY: dict[str, PolicySpec] = {}


def register_policy(spec: PolicySpec) -> PolicySpec:
    """Add (or replace) a registry entry; returns it for chaining."""
    if not isinstance(spec, PolicySpec):
        raise TypeError(f"expected a PolicySpec, got {spec!r}")
    _REGISTRY[spec.name] = spec
    return spec


def list_policies() -> list[str]:
    """Sorted names of every registered policy."""
    return sorted(_REGISTRY)


def policy_spec(name: str) -> PolicySpec:
    """The registry entry for ``name`` (KeyError-free lookup with a
    helpful message)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; known: {list_policies()}"
        ) from None


def make_policy(
    name: str, *, resilient: bool = False, **kwargs
) -> KeepAlivePolicy:
    """Construct a fresh policy instance by registry name.

    ``kwargs`` pass through to the policy's factory (e.g.
    ``make_policy("pulse", config=PulseConfig(threshold_scheme="T2"))``).
    ``resilient=True`` wraps the instance in
    :class:`~repro.faults.isolation.ResilientPolicy`, so a policy crash
    degrades the affected function instead of killing the run.
    """
    policy = policy_spec(name).factory(**kwargs)
    return ResilientPolicy(policy) if resilient else policy


# -- the bundled policies ---------------------------------------------------
# Factories are module-level functions (picklable, unlike lambdas) and
# import lazily: the registry must not drag scipy (MILP) or the sota
# predictors into `import repro.api`.

def _pulse(**kw):
    from repro.core.pulse import PulsePolicy

    return PulsePolicy(**kw)


def _pulse_t2(**kw):
    from repro.core.pulse import PulseConfig, PulsePolicy

    kw.setdefault("config", PulseConfig(threshold_scheme="T2"))
    return PulsePolicy(**kw)


def _openwhisk(**kw):
    from repro.baselines.openwhisk import OpenWhiskPolicy

    return OpenWhiskPolicy(**kw)


def _all_low(**kw):
    from repro.baselines.static import AllLowQualityPolicy

    return AllLowQualityPolicy(**kw)


def _random_mixed(**kw):
    from repro.baselines.static import RandomMixedPolicy

    return RandomMixedPolicy(**kw)


def _ideal(**kw):
    from repro.baselines.ideal import IdealOraclePolicy

    return IdealOraclePolicy(**kw)


def _wild(**kw):
    from repro.sota.wild import WildPolicy

    return WildPolicy(**kw)


def _icebreaker(**kw):
    from repro.sota.icebreaker import IceBreakerPolicy

    return IceBreakerPolicy(**kw)


def _wild_pulse(**kw):
    from repro.sota.integration import PulseIntegratedPolicy
    from repro.sota.wild import WildPolicy

    return PulseIntegratedPolicy(WildPolicy(), **kw)


def _icebreaker_pulse(**kw):
    from repro.sota.icebreaker import IceBreakerPolicy
    from repro.sota.integration import PulseIntegratedPolicy

    return PulseIntegratedPolicy(IceBreakerPolicy(), **kw)


def _milp(**kw):
    from repro.milp.policy import MilpPolicy

    return MilpPolicy(**kw)


for _spec in (
    PolicySpec("pulse", _pulse, "PULSE: mixed-quality keep-alive"),
    PolicySpec("pulse-t2", _pulse_t2, "PULSE with the T2 threshold scheme"),
    PolicySpec("openwhisk", _openwhisk,
               "fixed 10-minute highest-variant keep-alive"),
    PolicySpec("all-low", _all_low, "fixed keep-alive, lowest variants"),
    PolicySpec("random-mixed", _random_mixed,
               "fixed keep-alive, random variant per function"),
    PolicySpec("ideal", _ideal, "oracle: warm exactly at invocation minutes"),
    PolicySpec("wild", _wild,
               "Serverless-in-the-Wild hybrid histogram", 240),
    PolicySpec("icebreaker", _icebreaker,
               "IceBreaker FFT harmonic forecasting", 240),
    PolicySpec("wild+pulse", _wild_pulse,
               "PULSE variant selection inside Wild windows", 240),
    PolicySpec("icebreaker+pulse", _icebreaker_pulse,
               "PULSE variant selection inside IceBreaker windows", 240),
    PolicySpec("milp", _milp, "MILP comparator (scipy/HiGHS)"),
):
    register_policy(_spec)
del _spec


# -- the simulate facade ----------------------------------------------------
def simulate(
    trace: Trace,
    *,
    assignment: dict[int, ModelFamily],
    policy: KeepAlivePolicy | str,
    config: SimulationConfig | None = None,
    engine: str = "auto",
    shards: int = 1,
    faults: FaultPlan | str | None = None,
    observe: bool | ObservabilityConfig | None = None,
    checkpoint: CheckpointConfig | str | Path | None = None,
    resume_from: SimulationState | str | Path | None = None,
) -> RunResult:
    """Run one policy over one trace and return its metrics.

    - ``policy`` — a :class:`~repro.runtime.policy.KeepAlivePolicy`
      instance, or a registry name (constructed fresh via
      :func:`make_policy`, at the policy's natural keep-alive window
      unless ``config`` overrides it);
    - ``engine`` — ``"auto"`` (fast unless the config needs the
      reference cadence), ``"reference"``, ``"fast"``, or ``"fleet"``
      (the columnar fleet-scale kernel, see
      :mod:`repro.runtime.fleet`);
    - ``shards`` — fleet-engine worker count (``engine="fleet"`` only):
      the fleet is split into contiguous fid ranges that reduce each
      minute; results are bit-identical for every shard count;
    - ``faults`` — a :class:`~repro.faults.plan.FaultPlan` or a compact
      spec string (``"spawn=0.1,pressure=0.05,pressure-mb=4000"``),
      overriding ``config.faults``;
    - ``observe`` — ``True`` or an
      :class:`~repro.obs.session.ObservabilityConfig` (e.g. with
      ``trace_sample`` set for fleet runs), overriding
      ``config.observe``; the run then carries an
      :class:`~repro.obs.session.ObsSession` on ``result.obs``;
    - ``checkpoint`` — a
      :class:`~repro.runtime.checkpoint.CheckpointConfig`, or just a
      path (checkpointed there at the default cadence): the engine
      periodically snapshots its complete state, crash-safely;
    - ``resume_from`` — a saved
      :class:`~repro.runtime.checkpoint.SimulationState` (or its path):
      continue an interrupted run from the snapshot, bit-identically to
      never having stopped. Must be paired with the same
      trace/assignment/policy/config that produced it.

    Both engines produce bit-identical metrics (fault-free and under any
    fixed fault plan), so ``engine`` is purely a speed knob.

    All arguments past ``trace`` are keyword-only (the whole ``repro.api``
    facade is — RPR007 — so call sites stay greppable and reorderable).

    Plain runs (no ``checkpoint``/``resume_from``) execute as a full
    replay of a :class:`repro.serve.session.ControlSession` — the same
    stepping code path the incremental ``advance()`` API drives, so the
    batch facade and the serving layer cannot diverge. Checkpointed and
    resumed runs go through :meth:`Simulation.run`, which owns the
    engine checkpoint cadence.
    """
    cfg = config if config is not None else SimulationConfig()
    if isinstance(policy, str):
        spec = policy_spec(policy)
        if config is None and spec.keep_alive_window != cfg.keep_alive_window:
            cfg = replace(cfg, keep_alive_window=spec.keep_alive_window)
        policy = spec.factory()
    if faults is not None:
        if isinstance(faults, str):
            faults = FaultPlan.from_spec(faults)
        cfg = replace(cfg, faults=faults)
    if observe is not None:
        cfg = replace(cfg, observe=observe)
    if isinstance(checkpoint, (str, Path)):
        checkpoint = CheckpointConfig(path=checkpoint)
    if checkpoint is None and resume_from is None:
        from repro.serve.session import ControlSession

        sim = Simulation(trace, assignment, policy, cfg)
        return ControlSession(sim, engine=engine, shards=shards).replay()
    return Simulation(trace, assignment, policy, cfg).run(
        engine=engine,
        shards=shards,
        checkpoint=checkpoint,
        resume_from=resume_from,
    )


def run_sweep(
    trace: Trace,
    *,
    policies: list[str],
    config=None,
    durable: bool = False,
    out_dir: str | Path | None = None,
    resume: str | Path | None = None,
    durable_config=None,
    zoo=None,
    ingest=None,
    resilient: bool = False,
    on_error: str = "record",
    sweep_config_extra=None,
):
    """Run every named policy over the same sampled assignments.

    The in-process path (``durable=False``, the default) wraps
    :func:`repro.experiments.runner.run_policies` with crash-isolating
    ``on_error="record"`` semantics and returns its
    ``{policy: [RunResult | RunError]}`` dict.

    ``durable=True`` switches to the durable executor
    (:func:`repro.experiments.durable.run_durable_sweep`): one process
    per run, per-attempt timeouts, bounded jittered retries, engine
    checkpoints, and a crash-safe ``out_dir/manifest.json`` — returning
    a :class:`~repro.experiments.durable.SweepResult`. ``resume`` takes
    a previous sweep's manifest path and continues it (``out_dir``
    defaults to the manifest's directory).

    ``config`` is an :class:`~repro.experiments.runner.ExperimentConfig`
    (defaults apply when ``None``); ``durable_config`` a
    :class:`~repro.experiments.durable.DurableSweepConfig`.
    """
    from functools import partial

    from repro.experiments.durable import run_durable_sweep
    from repro.experiments.manifest import RunManifest
    from repro.experiments.runner import ExperimentConfig, run_policies

    cfg = config if config is not None else ExperimentConfig()
    for name in policies:
        policy_spec(name)  # fail fast on unknown names
    if not durable:
        if (
            out_dir is not None
            or resume is not None
            or durable_config is not None
            or sweep_config_extra is not None
        ):
            raise ValueError(
                "out_dir/resume/durable_config/sweep_config_extra "
                "require durable=True"
            )
        factories = {
            name: partial(make_policy, name, resilient=resilient)
            for name in policies
        }
        return run_policies(trace, factories, cfg, zoo, on_error=on_error)
    manifest = None
    if resume is not None:
        manifest = RunManifest.load(resume)
        if out_dir is None:
            out_dir = Path(resume).parent
    if out_dir is None:
        raise ValueError("durable=True requires out_dir (or resume)")
    return run_durable_sweep(
        trace,
        policies,
        cfg,
        out_dir=out_dir,
        durable=durable_config,
        resume=manifest,
        zoo=zoo,
        ingest=ingest,
        resilient=resilient,
        sweep_config_extra=sweep_config_extra,
    )
