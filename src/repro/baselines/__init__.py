"""Baseline keep-alive strategies.

- :class:`~repro.baselines.openwhisk.OpenWhiskPolicy` — the fixed
  10-minute keep-alive of the highest-quality variant, the paper's main
  comparison point (OpenWhisk's policy, and "aligned with AWS, Google and
  Azure Functions");
- :mod:`repro.baselines.static` — the §II motivation strategies: all-low,
  random balanced high/low mixing, and the intelligent oracle of
  Tables II/III;
- :class:`~repro.baselines.ideal.IdealOraclePolicy` — keep-alive exactly
  during invocation minutes (Figure 6b's reference).
"""

from repro.baselines.openwhisk import FixedKeepAlivePolicy, OpenWhiskPolicy
from repro.baselines.static import (
    AllLowQualityPolicy,
    IntelligentOraclePolicy,
    RandomMixedPolicy,
)
from repro.baselines.ideal import IdealOraclePolicy

__all__ = [
    "AllLowQualityPolicy",
    "FixedKeepAlivePolicy",
    "IdealOraclePolicy",
    "IntelligentOraclePolicy",
    "OpenWhiskPolicy",
    "RandomMixedPolicy",
]
