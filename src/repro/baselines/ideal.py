"""The ideal keep-alive oracle (Figure 6b's reference).

"The ideal value of keep-alive cost, where the model is only kept alive
during the time it is invoked": an oracle that plans the highest-quality
variant warm exactly at the minutes with actual invocations and nothing
anywhere else. Every invocation after the first is a warm start and no
memory is ever idle.
"""

from __future__ import annotations

from repro.models.variants import ModelVariant
from repro.runtime.policy import KeepAlivePolicy

__all__ = ["IdealOraclePolicy"]


class IdealOraclePolicy(KeepAlivePolicy):
    """Keep-alive exactly during invocation minutes (future-reading)."""

    name = "ideal"
    is_oracle = True

    def cold_variant(self, function_id: int, minute: int) -> ModelVariant:
        return self.family(function_id).highest

    def plan(self, function_id: int, minute: int) -> list[ModelVariant | None]:
        assert self._trace is not None
        counts = self._trace.counts[function_id]
        highest = self.family(function_id).highest
        plan: list[ModelVariant | None] = []
        for d in range(1, self.keep_alive_window + 1):
            m = minute + d
            plan.append(highest if m < len(counts) and counts[m] > 0 else None)
        return plan
