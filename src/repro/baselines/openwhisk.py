"""The fixed keep-alive baseline (OpenWhisk's 10-minute policy).

After every invocation the container is kept alive for the full keep-alive
window, regardless of the likelihood of another invocation. The policy is
variant-unaware: it always runs one fixed quality level (the highest, for
the paper's OpenWhisk comparison — commercial providers deploy the model
the user shipped, i.e. the full-quality one).
"""

from __future__ import annotations

from repro.models.variants import ModelVariant
from repro.runtime.policy import KeepAlivePolicy

__all__ = ["FixedKeepAlivePolicy", "OpenWhiskPolicy"]


class FixedKeepAlivePolicy(KeepAlivePolicy):
    """Keep one fixed variant level alive for the whole window after every
    invocation.

    ``level="highest"`` reproduces OpenWhisk / AWS / Azure behaviour;
    ``level="lowest"`` is the all-low-quality strategy of §II; an integer
    pins an explicit variant level (clamped to each family's range).
    """

    def __init__(self, level: str | int = "highest", name: str | None = None):
        super().__init__()
        if isinstance(level, str) and level not in ("highest", "lowest"):
            raise ValueError(
                f"level must be 'highest', 'lowest' or an int, got {level!r}"
            )
        if isinstance(level, bool) or (isinstance(level, int) and level < 0):
            raise ValueError(f"integer level must be >= 0, got {level!r}")
        self.level = level
        self.name = name or f"fixed-{level}"
        self._plans: list[list[ModelVariant | None]] = []

    def on_bind(self) -> None:
        # The decision is per-function and fixed for the whole run, so the
        # variants and full-window plan lists are resolved once here; the
        # engine never mutates a plan, so plan() can hand out the same list.
        self._plans = [
            self._full_window_plan(self._variant_for(fid))
            for fid in range(self.n_functions)
        ]

    def _variant_for(self, function_id: int) -> ModelVariant:
        family = self.family(function_id)
        if self.level == "highest":
            return family.highest
        if self.level == "lowest":
            return family.lowest
        assert isinstance(self.level, int)
        return family.variant(min(self.level, family.n_variants - 1))

    def cold_variant(self, function_id: int, minute: int) -> ModelVariant:
        if self._plans:
            variant = self._plans[function_id][0]
            assert variant is not None
            return variant
        return self._variant_for(function_id)

    def plan(self, function_id: int, minute: int) -> list[ModelVariant | None]:
        if self._plans:
            return self._plans[function_id]
        return self._full_window_plan(self._variant_for(function_id))


class OpenWhiskPolicy(FixedKeepAlivePolicy):
    """The paper's main baseline: fixed window, highest-quality variant."""

    def __init__(self) -> None:
        super().__init__(level="highest", name="OpenWhisk")
