"""The §II motivation strategies (Tables II & III).

Four ways of assigning qualities during the keep-alive window:

- **all high** — :class:`~repro.baselines.openwhisk.OpenWhiskPolicy`;
- **all low** — :class:`AllLowQualityPolicy`;
- **random mixed** — :class:`RandomMixedPolicy`: a balanced random split
  of the functions into high-quality and low-quality keep-alive;
- **intelligent** — :class:`IntelligentOraclePolicy`: functions with more
  *actual* invocations in the coming window get the high-quality variant
  (an oracle — it reads the future; that is the point of the motivation
  analysis).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.openwhisk import FixedKeepAlivePolicy
from repro.models.variants import ModelVariant
from repro.runtime.policy import KeepAlivePolicy
from repro.utils.rng import rng_from_seed

__all__ = ["AllLowQualityPolicy", "IntelligentOraclePolicy", "RandomMixedPolicy"]


class AllLowQualityPolicy(FixedKeepAlivePolicy):
    """Fixed window keep-alive of the lowest-quality variant."""

    def __init__(self) -> None:
        super().__init__(level="lowest", name="all-low")


class RandomMixedPolicy(KeepAlivePolicy):
    """Random but *balanced* high/low split across functions (§II approach 3).

    Half the functions (rounded up) keep the high-quality variant alive
    after invocations, the other half the low-quality variant; the split
    is drawn once per run.
    """

    name = "random-mixed"

    def __init__(self, seed: int | np.random.Generator | None = None):
        super().__init__()
        self._rng = rng_from_seed(seed)
        self._high_functions: set[int] = set()

    def on_bind(self) -> None:
        n = self.n_functions
        order = self._rng.permutation(n)
        self._high_functions = set(int(f) for f in order[: (n + 1) // 2])
        # Per-function decisions are fixed once the split is drawn — cache
        # the variants and window plans (plan() hands out the same list;
        # the engine never mutates plans).
        self._variants = [self._variant_for(fid) for fid in range(n)]
        self._cached_plans = [self._full_window_plan(v) for v in self._variants]

    def _variant_for(self, function_id: int) -> ModelVariant:
        family = self.family(function_id)
        return (
            family.highest if function_id in self._high_functions else family.lowest
        )

    def cold_variant(self, function_id: int, minute: int) -> ModelVariant:
        return self._variants[function_id]

    def plan(self, function_id: int, minute: int) -> list[ModelVariant | None]:
        return self._cached_plans[function_id]


class IntelligentOraclePolicy(KeepAlivePolicy):
    """§II approach 4: high quality for the functions that will actually be
    invoked most during the window.

    At each invocation the oracle counts the function's true invocations in
    the next K minutes and keeps the high-quality variant when that count
    reaches ``high_threshold`` (default 2 — "a higher number of actual
    invocations"), the low-quality variant otherwise.
    """

    name = "intelligent-oracle"
    is_oracle = True

    def __init__(self, high_threshold: int = 2):
        super().__init__()
        if high_threshold < 1:
            raise ValueError(f"high_threshold must be >= 1, got {high_threshold}")
        self.high_threshold = high_threshold

    def _future_count(self, function_id: int, minute: int) -> int:
        assert self._trace is not None
        counts = self._trace.counts[function_id]
        stop = min(minute + 1 + self.keep_alive_window, len(counts))
        return int(counts[minute + 1 : stop].sum())

    def _variant_for(self, function_id: int, minute: int) -> ModelVariant:
        family = self.family(function_id)
        if self._future_count(function_id, minute) >= self.high_threshold:
            return family.highest
        return family.lowest

    def cold_variant(self, function_id: int, minute: int) -> ModelVariant:
        return self._variant_for(function_id, minute)

    def plan(self, function_id: int, minute: int) -> list[ModelVariant | None]:
        return self._full_window_plan(self._variant_for(function_id, minute))
