"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``   run one or more keep-alive policies over the synthetic
               trace (or loaded Azure CSVs) and print the headline table;
``inspect``    answer why-questions against a JSONL decision trace;
``profile``    run the simulated Lambda profiling campaign (Table I);
``trace``      generate / summarize a workload trace, optionally export
               it as Azure-schema CSVs;
``reproduce``  run one paper experiment by id (table1, fig1 … fig12,
               tables2-3, ablations) at a chosen scale and print it;
``resilience`` sweep fault intensities and compare policy degradation;
``sweep``      run a durable multi-policy sweep (per-run worker
               processes, timeouts, retries, checkpoints, a crash-safe
               manifest) — resumable with ``--resume MANIFEST``;
``report``     run every experiment and write a markdown report;
``figures``    render the paper figures as SVGs.

Policy names resolve through :mod:`repro.api`'s registry; the historical
module-level ``_POLICIES`` / ``_LONG_WINDOW_POLICIES`` /
``_parse_fid_minute`` are gone (their deprecation cycle ended —
accessing them raises :class:`AttributeError` naming the replacement).

There is also a ``serve`` command — the async control-plane service over
:mod:`repro.serve` sessions.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.api import list_policies, make_policy, policy_spec, simulate
from repro.experiments import (
    ExperimentConfig,
    figure1_histograms,
    figure2_drift,
    figure4_and_7_memory,
    figure5_tradeoff,
    figure6_headline,
    figure8_integration,
    figure9_overhead,
    figure10_threshold_schemes,
    figure11_memory_thresholds,
    figure12_local_windows,
    table1_characterization,
    tables2_3_peak_strategies,
)
from repro.experiments.ablations import (
    peak_detector_ablation,
    scalability_study,
    utility_component_ablation,
)
from repro.experiments.assignments import sample_assignment
from repro.experiments.reporting import format_bar_chart, format_series, format_table
from repro.obs.session import ObservabilityConfig
from repro.runtime.simulator import SimulationConfig
from repro.traces.analysis import activity_summary, invocation_peaks
from repro.traces.azure import load_azure_csv, top_functions, write_azure_csv
from repro.traces.schema import Trace
from repro.utils.atomicio import atomic_write_text
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from repro.utils.specs import (
    ENGINES,
    parse_choice_list,
    parse_fid_minute,
    parse_float_list,
    parse_optional_int,
    parse_scoped_fid_minute,
    resolve_paths,
)

__all__ = ["main"]

#: Removed pre-registry module attributes -> the replacement to name in
#: the error. The deprecation cycle (PR-3 shims: warn, then raise) is
#: complete; the table keeps the pointer messages one release longer.
_REMOVED_ATTRS = {
    "_POLICIES": "repro.api.list_policies() / repro.api.make_policy()",
    "_LONG_WINDOW_POLICIES": "repro.api.policy_spec(name).keep_alive_window",
    "_parse_fid_minute": "repro.utils.specs.parse_fid_minute",
}


def __getattr__(name: str):
    if name in _REMOVED_ATTRS:
        raise AttributeError(
            f"repro.cli.{name} was removed at the end of its deprecation "
            f"cycle; use {_REMOVED_ATTRS[name]} instead"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _load_trace(args: argparse.Namespace) -> Trace:
    if getattr(args, "azure_csv", None):
        trace = load_azure_csv([Path(p) for p in args.azure_csv])
        return top_functions(trace, getattr(args, "functions", 12))
    n = getattr(args, "functions", 12)
    return generate_trace(
        SyntheticTraceConfig(
            horizon_minutes=args.horizon,
            seed=args.seed,
            # The generator's native mix is 12 functions; only ask it to
            # rescale when the user sized the fleet explicitly.
            n_functions=None if n == 12 else n,
        )
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = _load_trace(args)
    assignment = sample_assignment(trace.n_functions, seed=args.seed)
    trace_sample = getattr(args, "trace_sample", 0)
    observe: bool | ObservabilityConfig = bool(
        getattr(args, "observe", False)
        or getattr(args, "trace_out", None)
        or getattr(args, "report_out", None)
        or getattr(args, "prom_out", None)
        or trace_sample
    )
    if observe and trace_sample:
        observe = ObservabilityConfig(trace_sample=trace_sample)
    dump_outs = (args.trace_out, args.report_out, args.prom_out)
    if any(dump_outs) and len(args.policies) != 1:
        print(
            "--trace-out/--report-out/--prom-out dump one run; pass "
            "exactly one policy",
            file=sys.stderr,
        )
        return 2
    rows = []
    for name in args.policies:
        try:
            spec = policy_spec(name)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        # Each policy runs at its own natural schedule capacity (10 for
        # the fixed-window policies and PULSE, 240 for the long-horizon
        # predictors) — sharing one capacity would silently change the
        # fixed policies' keep-alive duration.
        sim = SimulationConfig(
            keep_alive_window=spec.keep_alive_window, observe=observe
        )
        policy = make_policy(name, resilient=args.resilient)
        result = simulate(
            trace, assignment=assignment, policy=policy, config=sim,
            engine=args.engine, shards=args.shards, faults=args.faults,
        )
        row = result.summary()
        # Machine wall time, not a workload metric — printing it would
        # make the table nondeterministic across identical runs.
        row.pop("wall_clock_s", None)
        rows.append(row)
        if args.trace_out:
            from repro.obs.export import write_trace_jsonl

            n = write_trace_jsonl(result, args.trace_out)
            print(f"wrote {n} trace records to {args.trace_out}")
        if args.report_out:
            from repro.obs.report import save_run_report

            save_run_report(result, args.report_out)
            print(f"wrote run report to {args.report_out}")
        if args.prom_out:
            from repro.obs.export import write_prometheus

            n = write_prometheus(result.obs, args.prom_out)
            print(f"wrote {n} exposition lines to {args.prom_out}")
    print(format_table(rows, title=f"{trace!r}"))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.obs.inspect import TraceIndex

    try:
        index = TraceIndex.from_jsonl(args.trace)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    queried = False
    if args.cold:
        fid, minute = parse_fid_minute(args.cold, "--cold")
        print(index.explain_cold(fid, minute))
        queried = True
    if args.plan:
        if queried:
            print()
        fid, minute = parse_fid_minute(args.plan, "--plan")
        print(index.explain_plan(fid, minute))
        queried = True
    if args.downgrades is not None:
        if queried:
            print()
        fid, minute = parse_scoped_fid_minute(args.downgrades, "--downgrades")
        print(index.explain_downgrades(fid, minute))
        queried = True
    if args.faults is not None:
        if queried:
            print()
        print(index.explain_faults(parse_optional_int(args.faults, "--faults")))
        queried = True
    if not queried:
        print(index.summary())
    return 0


def _changed_python_files() -> set[Path]:
    """Python files the git checkout has touched: tracked files modified
    vs HEAD plus untracked (non-ignored) files. A :class:`SpecError`
    when the working directory is not inside a git checkout."""
    import subprocess

    from repro.utils.specs import SpecError

    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError) as exc:
        raise SpecError(
            "repro lint --changed needs to run inside a git checkout "
            f"(git rev-parse failed: {exc})"
        ) from exc
    out: set[Path] = set()
    for cmd in (
        ["git", "diff", "--name-only", "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, cwd=top, capture_output=True, text=True, check=True
            )
        except subprocess.CalledProcessError as exc:
            raise SpecError(
                f"repro lint --changed: {' '.join(cmd)} failed: "
                f"{exc.stderr.strip() or exc}"
            ) from exc
        for line in proc.stdout.splitlines():
            if line.endswith(".py"):
                out.add((Path(top) / line).resolve())
    return out


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro import analysis

    default_target = Path(__file__).resolve().parent
    paths = resolve_paths(args.paths, "repro lint", default=default_target)
    rules = (
        parse_choice_list(args.rule, "--rule", analysis.rule_ids())
        if args.rule
        else None
    )
    files = list(analysis.iter_python_files(paths))
    if args.changed:
        changed = _changed_python_files()
        # Project-wide rules (engine parity, lock discipline, snapshot
        # schema) need their whole surface parsed even when only one
        # side of it changed.
        scope = set(analysis.project_scope_paths(files, rules))
        files = [
            f for f in files if f.resolve() in changed or f in scope
        ]
    cache = (
        analysis.LintCache(Path(args.cache_dir)) if args.cache_dir else None
    )
    report = analysis.run_lint(
        files, rule_ids=rules, cache=cache, jobs=args.jobs
    )
    if args.format == "json":
        print(analysis.render_json(report))
    elif args.format == "sarif":
        print(analysis.render_sarif(report))
    else:
        print(analysis.render_text(report))
    return report.exit_code


def _cmd_profile(args: argparse.Namespace) -> int:
    _, rows = table1_characterization(
        n_warm_samples=args.warm_samples, n_cold_samples=args.cold_samples,
        seed=args.seed,
    )
    print(format_table(rows, title="Table I: model-variant characterization"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = _load_trace(args)
    print(trace)
    print()
    print(format_table(activity_summary(trace), title="Per-function activity"))
    peaks = invocation_peaks(trace, n_peaks=2)
    totals = trace.total_per_minute()
    print()
    print(
        "Prominent invocation peaks: "
        + ", ".join(f"minute {m} ({totals[m]} invocations)" for m in peaks)
    )
    if args.export:
        paths = write_azure_csv(trace, Path(args.export))
        print(f"\nexported {len(paths)} Azure-schema day files to {args.export}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        n_runs=args.runs, horizon_minutes=args.horizon, seed=args.seed
    )
    trace = _load_trace(args)
    exp = args.experiment
    if exp == "table1":
        _, rows = table1_characterization(seed=args.seed)
        print(format_table(rows, title="Table I"))
    elif exp == "fig1":
        for name, h in figure1_histograms(trace).items():
            print(format_series(h, label=f"{name:24s}"))
    elif exp == "fig2":
        for label, h in figure2_drift(trace).items():
            print(format_series(h, label=f"{label:16s}"))
    elif exp == "tables2-3":
        assignment = sample_assignment(trace.n_functions, seed=args.seed)
        for name, rows in tables2_3_peak_strategies(trace, assignment).items():
            print(format_table([r.__dict__ for r in rows], title=name))
            print()
    elif exp in ("fig4", "fig7"):
        res = figure4_and_7_memory(config, trace)
        for label, r in res.items():
            print(
                format_series(r.memory_series_mb, label=f"{label:16s}"),
                f" acc={r.accuracy_percent:.2f}%",
            )
    elif exp == "fig5":
        points = figure5_tradeoff(config, trace)
        print(format_table([p.__dict__ for p in points], title="Figure 5"))
    elif exp == "fig6":
        res = figure6_headline(config, trace)
        print(format_bar_chart(res.improvements, unit="%"))
        print(format_series(res.openwhisk_cost_error, label="OpenWhisk err"))
        print(format_series(res.pulse_cost_error, label="PULSE err    "))
    elif exp == "fig8":
        for r in figure8_integration(config, trace):
            print(f"{r.technique}+PULSE vs {r.technique}:")
            print(
                format_bar_chart(
                    {
                        "accuracy": r.accuracy,
                        "keepalive_cost": r.keepalive_cost,
                        "service_time": r.service_time,
                    },
                    unit="%",
                )
            )
    elif exp == "fig9":
        res = figure9_overhead(config, trace)
        print(
            f"median overhead/service: PULSE "
            f"{float(np.median(res.pulse_overhead_ratio)):.2e}, MILP "
            f"{float(np.median(res.milp_overhead_ratio)):.2e} "
            f"({res.overhead_factor:.1f}x)"
        )
        print(
            f"accuracy: PULSE {res.pulse_accuracy:.2f}%, "
            f"MILP {res.milp_accuracy:.2f}%"
        )
    elif exp in ("fig10", "fig11", "fig12"):
        fn = {
            "fig10": figure10_threshold_schemes,
            "fig11": figure11_memory_thresholds,
            "fig12": figure12_local_windows,
        }[exp]
        print(format_table([p.__dict__ for p in fn(config, trace)], title=exp))
    elif exp == "capacity":
        from repro.experiments.capacity import memory_capacity_study

        points = memory_capacity_study(config=config, trace=trace)
        print(
            format_table(
                [p.__dict__ for p in points],
                title="Memory-capacity study (forced random downgrades)",
            )
        )
    elif exp == "ablations":
        print(
            format_table(
                [
                    {**{"label": r.label}, **r.extra,
                     "cost_usd": r.keepalive_cost_usd,
                     "accuracy": r.accuracy_percent}
                    for r in utility_component_ablation(config, trace)
                ],
                title="Utility-component ablation",
            )
        )
        print()
        print(
            format_table(
                [
                    {**{"label": r.label}, **r.extra,
                     "warm_fraction": r.warm_fraction}
                    for r in peak_detector_ablation(config)
                ],
                title="Peak-detector ablation (day-phase trace)",
            )
        )
        print()
        print(
            format_table(
                [{**{"label": r.label}, **r.extra} for r in scalability_study()],
                title="Scalability study",
            )
        )
    else:  # pragma: no cover - argparse choices guard this
        raise AssertionError(exp)
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    from repro.experiments.resilience import resilience_sweep

    rates = tuple(parse_float_list(args.rates, "--rates"))
    config = ExperimentConfig(
        n_runs=args.runs, horizon_minutes=args.horizon, seed=args.seed,
        engine=args.engine, shards=args.shards,
    )
    points = resilience_sweep(
        config=config,
        trace=_load_trace(args),
        policies=tuple(args.policies),
        fault_rates=rates,
        fault_seed=args.fault_seed,
        pressure_cap_mb=args.pressure_mb,
    )
    print(
        format_table(
            [p.__dict__ for p in points],
            title="Resilience sweep (crash-isolated policies under faults)",
        )
    )
    return 0


def _sweep_trace(source: dict, out_dir: Path):
    """Build (trace, ingest_report) from a manifest trace-source record."""
    from repro.traces.schema import IngestReport

    if source["kind"] == "azure":
        report = IngestReport()
        trace = load_azure_csv(
            [Path(p) for p in source["paths"]],
            mode=source["mode"],
            quarantine_path=(
                out_dir / "quarantine.jsonl"
                if source["mode"] == "lenient"
                else None
            ),
            report=report,
        )
        return top_functions(trace, source["functions"]), report
    return (
        generate_trace(
            SyntheticTraceConfig(
                horizon_minutes=source["horizon"], seed=source["seed"]
            )
        ),
        None,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.api import run_sweep
    from repro.experiments.durable import DurableSweepConfig
    from repro.experiments.manifest import RunManifest

    if args.resume:
        # Everything — policies, scale, trace source, durability knobs —
        # comes from the manifest; the executor re-verifies the trace and
        # config hashes before driving the remaining runs.
        manifest_path = Path(args.resume)
        try:
            manifest = RunManifest.load(manifest_path)
        except (OSError, ValueError) as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 2
        sc = manifest.sweep_config
        out_dir = manifest_path.parent
        policies = list(sc["policies"])
        source = sc["trace_source"]
        durable_kw = dict(sc["durable"])
        n_jobs = sc["n_jobs"]
        resilient = sc["resilient"]
    else:
        if not args.out:
            print("sweep needs --out DIR (or --resume MANIFEST)", file=sys.stderr)
            return 2
        out_dir = Path(args.out)
        if (out_dir / "manifest.json").exists():
            print(
                f"{out_dir / 'manifest.json'} already exists; pass it to "
                "--resume to continue, or choose a fresh --out",
                file=sys.stderr,
            )
            return 2
        manifest = None
        policies = list(args.policies)
        if args.azure_csv:
            source = {
                "kind": "azure",
                "paths": [str(Path(p)) for p in args.azure_csv],
                "functions": args.functions,
                "mode": "lenient" if args.lenient else "strict",
            }
        else:
            source = {
                "kind": "synthetic",
                "horizon": args.horizon,
                "seed": args.seed,
            }
        durable_kw = {
            "timeout_s": args.timeout,
            "max_retries": args.retries,
            "checkpoint_every": args.checkpoint_every,
            "chaos": args.chaos,
        }
        n_jobs = args.jobs
        resilient = args.resilient

    trace, ingest = _sweep_trace(source, out_dir)
    if args.resume:
        config = ExperimentConfig(
            n_runs=sc["n_runs"], horizon_minutes=sc["horizon_minutes"],
            seed=sc["seed"], n_jobs=n_jobs, engine=sc["engine"],
            shards=sc.get("shards", 1),
        )
    else:
        config = ExperimentConfig(
            n_runs=args.runs, horizon_minutes=trace.horizon,
            seed=args.seed, n_jobs=n_jobs, engine=args.engine,
            shards=args.shards,
        )
    try:
        result = run_sweep(
            trace, policies=policies, config=config,
            durable=True,
            out_dir=out_dir,
            resume=str(manifest.path) if manifest is not None else None,
            durable_config=DurableSweepConfig(**durable_kw),
            ingest=ingest,
            resilient=resilient,
            sweep_config_extra={
                "trace_source": source,
                "n_jobs": n_jobs,
                "durable": durable_kw,
            },
        )
    except ValueError as exc:
        print(f"sweep refused: {exc}", file=sys.stderr)
        return 2
    summary = result.manifest.summary()
    print(
        "sweep {}: {done}/{runs} runs done, {failed} failed, "
        "{retries} retries, {timeouts} timeouts, "
        "{quarantined} trace rows quarantined".format(
            "ok" if result.ok else "FAILED", **summary
        )
    )
    print(f"manifest: {result.manifest.path}")
    for rec in sorted(result.manifest.runs.values(), key=lambda r: r.run_id):
        if rec.status == "failed" and rec.error is not None:
            print(
                f"  failed {rec.run_id} after {rec.attempts} attempts: "
                f"[{rec.error.get('kind')}] {rec.error.get('message', '')}",
                file=sys.stderr,
            )
    return 0 if result.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    config = ExperimentConfig(
        n_runs=args.runs, horizon_minutes=args.horizon, seed=args.seed
    )
    text = generate_report(config, _load_trace(args))
    atomic_write_text(Path(args.output), text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.figures import render_all

    config = ExperimentConfig(
        n_runs=args.runs, horizon_minutes=args.horizon, seed=args.seed
    )
    paths = render_all(args.output, config, _load_trace(args))
    for p in paths:
        print(f"wrote {p}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from repro.serve.app import ServeLimits, serve

    token = args.token or os.environ.get("REPRO_SERVE_TOKEN") or None
    return serve(
        args.host,
        port=args.port,
        token=token,
        journal_dir=args.journal_dir,
        recover=args.recover,
        compact_every=args.compact_every,
        limits=ServeLimits(
            max_sessions=args.max_sessions,
            max_inflight=args.max_inflight,
            deadline_s=args.deadline_s,
            max_body_bytes=args.max_body_mb * 1024 * 1024,
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PULSE reproduction: serverless mixed-quality keep-alive",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--horizon", type=int, default=2880,
                       help="synthetic trace length in minutes")
        p.add_argument("--seed", type=int, default=2024)
        p.add_argument("--azure-csv", nargs="+", metavar="CSV",
                       help="load these Azure per-day CSVs instead")
        p.add_argument("--functions", type=int, default=12,
                       help="keep the top-K functions of a loaded trace, or "
                            "scale the synthetic fleet to this many")

    names = list_policies()

    p_sim = sub.add_parser("simulate", help="run policies over a workload")
    add_trace_args(p_sim)
    p_sim.add_argument(
        "policies", nargs="+", choices=names, metavar="POLICY",
        help=f"one or more of: {', '.join(names)}",
    )
    p_sim.add_argument("--observe", action="store_true",
                       help="record metrics/spans/decision traces")
    p_sim.add_argument("--trace-out", metavar="JSONL",
                       help="dump the decision trace (implies --observe; "
                            "exactly one policy)")
    p_sim.add_argument("--report-out", metavar="HTML",
                       help="write an HTML run report (implies --observe; "
                            "exactly one policy)")
    p_sim.add_argument("--prom-out", metavar="PROM",
                       help="write a Prometheus text-format metrics "
                            "snapshot (implies --observe; exactly one "
                            "policy)")
    p_sim.add_argument("--trace-sample", type=int, default=0, metavar="N",
                       help="record full decision traces for a "
                            "deterministic sample of N function ids "
                            "(fleet engine; loop engines always record "
                            "every function; implies --observe)")
    p_sim.add_argument("--engine", choices=ENGINES, default="auto",
                       help="simulation engine (all are metric-identical)")
    p_sim.add_argument("--shards", type=int, default=1,
                       help="fleet-engine shard count (engine=fleet only; "
                            "bit-identical for any value)")
    p_sim.add_argument("--faults", metavar="SPEC",
                       help="fault plan, e.g. "
                            "'spawn=0.1,slow=0.05,drop=0.01,seed=7'")
    p_sim.add_argument("--resilient", action="store_true",
                       help="wrap each policy in the crash-isolation "
                            "ResilientPolicy")
    p_sim.set_defaults(func=_cmd_simulate)

    p_ins = sub.add_parser(
        "inspect", help="answer why-questions against a JSONL decision trace"
    )
    p_ins.add_argument("trace", metavar="TRACE.jsonl",
                       help="trace written by simulate --trace-out")
    p_ins.add_argument("--cold", metavar="FID:MINUTE",
                       help="explain why the invocation was a cold start")
    p_ins.add_argument("--plan", metavar="FID:MINUTE",
                       help="show the band→variant plan covering that minute")
    p_ins.add_argument("--downgrades", nargs="?", const="",
                       metavar="FID[:MINUTE]",
                       help="explain Algorithm-2 / valve downgrades")
    p_ins.add_argument("--faults", nargs="?", const="", metavar="FID",
                       help="explain injected faults and policy crashes "
                            "(why did this function fall back?)")
    p_ins.set_defaults(func=_cmd_inspect)

    p_lint = sub.add_parser(
        "lint",
        help="static reproducibility checks (repro.analysis rule pack)",
        description=(
            "AST-lint the codebase against the repro-specific rule pack: "
            "RPR001 determinism, RPR002 engine parity, RPR003 policy "
            "contract, RPR004 deprecation hygiene, RPR005 spec-string "
            "hygiene, RPR006 exception hygiene, RPR007 facade "
            "signatures, RPR008 serve-layer lock discipline, RPR009 "
            "columnar-kernel hygiene, RPR010 snapshot-schema drift. "
            "Directory operands are expanded to their *.py files; a "
            "file operand is always linted, even when discovery would "
            "skip it."
        ),
        epilog=(
            "exit codes: 0 = clean; 1 = findings; 2 = engine error "
            "(a file failed to parse, reported as RPR000)"
        ),
    )
    p_lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the installed "
             "repro package); explicit files are always linted",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (json is the CI artifact shape, sarif the "
             "code-scanning upload shape)",
    )
    p_lint.add_argument(
        "--rule", action="append", metavar="RULE",
        help="restrict to these rule ids (repeatable or comma-separated, "
             "e.g. --rule RPR001,RPR002)",
    )
    p_lint.add_argument(
        "--changed", action="store_true",
        help="lint only files changed vs git HEAD (plus untracked), "
             "keeping the files project-wide rules always need",
    )
    p_lint.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="lint files in N worker processes (0 = one per CPU; "
             "default: in-process)",
    )
    p_lint.add_argument(
        "--cache-dir", metavar="DIR",
        help="reuse per-file results from DIR/lint-cache.json when file "
             "and rule-pack hashes match (warm runs re-lint only what "
             "changed; the report stays byte-identical)",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_prof = sub.add_parser("profile", help="Table I profiling campaign")
    p_prof.add_argument("--warm-samples", type=int, default=1000)
    p_prof.add_argument("--cold-samples", type=int, default=30)
    p_prof.add_argument("--seed", type=int, default=2024)
    p_prof.set_defaults(func=_cmd_profile)

    p_trace = sub.add_parser("trace", help="generate / summarize a trace")
    add_trace_args(p_trace)
    p_trace.add_argument("--export", metavar="DIR",
                         help="write the trace as Azure-schema CSVs")
    p_trace.set_defaults(func=_cmd_trace)

    p_rep = sub.add_parser("reproduce", help="reproduce a paper element")
    add_trace_args(p_rep)
    p_rep.add_argument(
        "experiment",
        choices=[
            "table1", "fig1", "fig2", "tables2-3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablations",
            "capacity",
        ],
    )
    p_rep.add_argument("--runs", type=int, default=3)
    p_rep.set_defaults(func=_cmd_reproduce)

    p_res = sub.add_parser(
        "resilience", help="sweep fault intensities and compare policies"
    )
    add_trace_args(p_res)
    p_res.add_argument(
        "--policies", nargs="+", choices=names, metavar="POLICY",
        default=["pulse", "openwhisk", "all-low"],
        help="policies to sweep (default: pulse openwhisk all-low)",
    )
    p_res.add_argument("--rates", default="0.0,0.05,0.1,0.2",
                       help="comma-separated fault intensities in [0, 1]")
    p_res.add_argument("--runs", type=int, default=3)
    p_res.add_argument("--fault-seed", type=int, default=0)
    p_res.add_argument("--pressure-mb", type=float, default=None,
                       help="also inject memory-pressure spikes capped at "
                            "this many MB")
    p_res.add_argument("--engine", choices=ENGINES, default="auto")
    p_res.add_argument("--shards", type=int, default=1,
                       help="fleet-engine shard count (engine=fleet only)")
    p_res.set_defaults(func=_cmd_resilience)

    p_sweep = sub.add_parser(
        "sweep",
        help="durable policy sweep: manifest, checkpoints, crash-safe resume",
        description=(
            "Run every policy x run-index combination in its own worker "
            "process under a crash-safe manifest. Each run checkpoints "
            "periodically, failures are retried with jittered backoff, and "
            "an interrupted sweep continues with "
            "'repro sweep --resume DIR/manifest.json' — skipping finished "
            "runs and restarting in-flight ones from their last checkpoint. "
            "With --resume, every other flag is ignored: the manifest is "
            "the single source of truth for what the sweep was."
        ),
    )
    add_trace_args(p_sweep)
    p_sweep.add_argument("--out", metavar="DIR",
                         help="sweep output directory (manifest, run "
                              "artifacts, checkpoints)")
    p_sweep.add_argument("--resume", metavar="MANIFEST",
                         help="continue the sweep recorded in this "
                              "manifest.json")
    p_sweep.add_argument(
        "--policies", nargs="+", choices=names, metavar="POLICY",
        default=["pulse", "openwhisk", "all-low"],
        help="policies to sweep (default: pulse openwhisk all-low)",
    )
    p_sweep.add_argument("--runs", type=int, default=3,
                         help="sampled assignments per policy")
    p_sweep.add_argument("--jobs", type=int, default=2,
                         help="concurrent worker processes")
    p_sweep.add_argument("--engine", choices=ENGINES, default="auto")
    p_sweep.add_argument("--shards", type=int, default=1,
                         help="fleet-engine shard count (engine=fleet only)")
    p_sweep.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-attempt wall-clock timeout (hung workers "
                              "are killed and retried)")
    p_sweep.add_argument("--retries", type=int, default=2,
                         help="retry budget per run after the first attempt")
    p_sweep.add_argument("--checkpoint-every", type=int, default=240,
                         metavar="MINUTES",
                         help="engine checkpoint cadence in trace minutes")
    p_sweep.add_argument("--chaos", metavar="SPEC",
                         help="fault-inject the executor itself: 'kill:N' "
                              "SIGKILLs each first attempt at its Nth "
                              "checkpoint, 'hang:N' hangs it there "
                              "(testing/demo only)")
    p_sweep.add_argument("--resilient", action="store_true",
                         help="wrap each policy in the crash-isolation "
                              "ResilientPolicy")
    p_sweep.add_argument("--lenient", action="store_true",
                         help="quarantine malformed Azure CSV rows instead "
                              "of refusing the trace")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_report = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    add_trace_args(p_report)
    p_report.add_argument("output", metavar="OUT.md",
                          help="path of the markdown report to write")
    p_report.add_argument("--runs", type=int, default=3)
    p_report.set_defaults(func=_cmd_report)

    p_fig = sub.add_parser("figures", help="render the paper figures as SVGs")
    add_trace_args(p_fig)
    p_fig.add_argument("output", metavar="DIR", help="directory for the SVGs")
    p_fig.add_argument("--runs", type=int, default=3)
    p_fig.set_defaults(func=_cmd_figures)

    p_serve = sub.add_parser(
        "serve",
        help="run the HTTP control plane over repro.serve sessions",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (loopback by default; "
                              "non-loopback binds require --token)")
    p_serve.add_argument("--port", type=int, default=8750)
    p_serve.add_argument("--token", default=None,
                         help="bearer token every request must carry "
                              "(falls back to $REPRO_SERVE_TOKEN)")
    p_serve.add_argument("--journal-dir", default=None, metavar="DIR",
                         help="write-ahead-journal directory: every "
                              "advance is journaled before it executes, "
                              "with periodic snapshot compaction")
    p_serve.add_argument("--recover", action="store_true",
                         help="rebuild all sessions found in "
                              "--journal-dir before serving")
    p_serve.add_argument("--compact-every", type=int, default=240,
                         metavar="MINUTES",
                         help="snapshot-compaction cadence in "
                              "session-minutes")
    p_serve.add_argument("--max-sessions", type=int, default=64,
                         help="admission control: 503 past this many "
                              "open sessions")
    p_serve.add_argument("--max-inflight", type=int, default=4,
                         help="backpressure: 429 past this many queued "
                              "advances per session")
    p_serve.add_argument("--deadline-s", type=float, default=30.0,
                         help="per-request deadline waiting on a "
                              "session (503 past it)")
    p_serve.add_argument("--max-body-mb", type=int, default=8,
                         help="reject request bodies larger than this "
                              "(413)")
    p_serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
