"""PULSE itself: the paper's primary contribution.

Two cooperating optimizers (§III):

- **function-centric** (:mod:`repro.core.function_optimizer`) — per
  function, estimate the probability that the next invocation lands at
  each minute of the keep-alive window
  (:mod:`repro.core.interarrival`), then greedily map probability bands
  to model variants (:mod:`repro.core.thresholds`);
- **cross-function** (:mod:`repro.core.global_optimizer`) — detect
  keep-alive memory peaks (:mod:`repro.core.peak`, Algorithm 1) and
  downgrade the lowest-utility kept-alive model until the peak flattens
  (Algorithm 2), with the utility ``Uv = Ai + Pr + Ip``
  (:mod:`repro.core.utility`) and the downgrade-count priority structure
  (:mod:`repro.core.priority`, Eq. 1).

:class:`repro.core.pulse.PulsePolicy` wires both into the
:class:`~repro.runtime.policy.KeepAlivePolicy` interface.
"""

from repro.core.interarrival import InterArrivalEstimator
from repro.core.thresholds import (
    ThresholdScheme,
    TechniqueT1,
    TechniqueT2,
    get_scheme,
)
from repro.core.function_optimizer import FunctionCentricOptimizer
from repro.core.peak import PeakDetector
from repro.core.priority import PriorityStructure, normalize
from repro.core.utility import UtilityComponents, utility_value
from repro.core.global_optimizer import GlobalOptimizer
from repro.core.forecast_eval import CalibrationReport, evaluate_estimator
from repro.core.pulse import PulseConfig, PulsePolicy

__all__ = [
    "CalibrationReport",
    "evaluate_estimator",
    "FunctionCentricOptimizer",
    "GlobalOptimizer",
    "InterArrivalEstimator",
    "PeakDetector",
    "PriorityStructure",
    "PulseConfig",
    "PulsePolicy",
    "TechniqueT1",
    "TechniqueT2",
    "ThresholdScheme",
    "UtilityComponents",
    "get_scheme",
    "normalize",
    "utility_value",
]
