"""Calibration evaluation of the inter-arrival estimator.

PULSE's whole function-centric stage rides on the per-offset invocation
probabilities; this module measures how good those probabilities actually
are, by replaying a trace through the estimator and scoring, at every
arrival, the *exact-minute* probabilities it would have produced against
what actually happened in the following window:

- **Brier score** — mean squared error of P(arrival at offset d) against
  the 0/1 outcome, averaged over offsets and arrivals (lower is better;
  predicting the base rate everywhere is the reference);
- **reliability table** — predicted-probability bins vs observed arrival
  frequency (a calibrated estimator has observed ≈ predicted per bin);
- **hit rate** — fraction of actual arrivals that landed on an offset
  whose predicted probability cleared its T1 top band (the "was the
  high-quality model warm when it mattered?" question).

Used by the calibration bench and the estimator's regression tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.interarrival import InterArrivalEstimator
from repro.traces.schema import Trace
from repro.utils.validation import check_positive_int

__all__ = ["CalibrationReport", "evaluate_estimator"]


@dataclass(frozen=True)
class CalibrationReport:
    """Scores for one estimator over one trace."""

    n_predictions: int  # (arrival, offset) pairs scored
    brier_score: float
    base_rate: float  # overall arrival frequency per (arrival, offset)
    brier_of_base_rate: float  # score of always predicting the base rate
    reliability: list[tuple[float, float, int]]  # (mean predicted, observed, n)
    top_band_hit_rate: float  # arrivals with p >= 2/3 at their offset

    @property
    def skill(self) -> float:
        """Brier skill score vs the base-rate forecaster (1 = perfect,
        0 = no better than the base rate, negative = worse)."""
        if self.brier_of_base_rate == 0:
            return 0.0
        return 1.0 - self.brier_score / self.brier_of_base_rate


def evaluate_estimator(
    trace: Trace,
    window: int = 10,
    local_window: int = 60,
    normalization: str = "window",
    n_bins: int = 5,
    warmup_arrivals: int = 5,
) -> CalibrationReport:
    """Replay ``trace`` through a fresh estimator and score it.

    Predictions are scored only after a function has seen
    ``warmup_arrivals`` arrivals (an estimator without history predicts
    zeros, which would just dilute the measurement with the cold-start
    regime the fallback path handles separately).
    """
    check_positive_int("n_bins", n_bins)
    est = InterArrivalEstimator(
        trace.n_functions,
        window=window,
        local_window=local_window,
        normalization=normalization,
        mode="exact",
    )
    predicted: list[np.ndarray] = []
    outcomes: list[np.ndarray] = []
    seen = [0] * trace.n_functions

    arrivals_by_minute: list[np.ndarray] = [
        np.flatnonzero(trace.counts[:, t]) for t in range(trace.horizon)
    ]
    for t in range(trace.horizon):
        for fid in arrivals_by_minute[t]:
            fid = int(fid)
            if seen[fid] >= warmup_arrivals:
                p = est.probabilities(fid, t).copy()
                outcome = np.zeros(window)
                stop = min(t + 1 + window, trace.horizon)
                future = trace.counts[fid, t + 1 : stop]
                nz = np.flatnonzero(future)
                if len(nz):
                    outcome[int(nz[0])] = 1.0  # the *next* arrival's offset
                predicted.append(p)
                outcomes.append(outcome)
            est.observe(fid, t)
            seen[fid] += 1

    if not predicted:
        raise ValueError(
            "trace too short/sparse: no predictions past the warm-up phase"
        )
    pred = np.concatenate(predicted)
    obs = np.concatenate(outcomes)
    brier = float(np.mean((pred - obs) ** 2))
    base = float(obs.mean())
    brier_base = float(np.mean((base - obs) ** 2))

    # Reliability: bin by predicted probability.
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    reliability: list[tuple[float, float, int]] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (pred >= lo) & (pred < hi if hi < 1.0 else pred <= hi)
        n = int(mask.sum())
        if n:
            reliability.append((float(pred[mask].mean()), float(obs[mask].mean()), n))

    # Hit rate: among scored arrivals that did re-arrive in the window,
    # how often did the estimator give their offset top-band probability?
    hits = 0
    total_hits_possible = 0
    for p, o in zip(predicted, outcomes):
        idx = np.flatnonzero(o)
        if len(idx):
            total_hits_possible += 1
            if p[idx[0]] >= 2.0 / 3.0:
                hits += 1
    hit_rate = hits / total_hits_possible if total_hits_possible else 0.0

    return CalibrationReport(
        n_predictions=int(pred.size),
        brier_score=brier,
        base_rate=base,
        brier_of_base_rate=brier_base,
        reliability=reliability,
        top_band_hit_rate=hit_rate,
    )
