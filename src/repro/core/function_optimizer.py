"""Function-centric (individual) optimization (§III-A).

After an invocation of a function at minute *t*, decide — for each of the
next K minutes — which variant to keep alive, by greedily mapping that
minute's invocation probability through the threshold scheme. High
probability → high-accuracy variant warm exactly when an arrival is
likely; low probability → a cheap variant that still prevents a cold
start.

Functions with no inter-arrival history yet fall back to keeping the
*highest* variant alive for the full window — exactly the fixed
OpenWhisk behaviour — so PULSE never performs worse than the baseline
before it has data to act on.
"""

from __future__ import annotations

from time import perf_counter

from repro.core.interarrival import InterArrivalEstimator
from repro.core.thresholds import ThresholdScheme
from repro.models.variants import ModelFamily, ModelVariant
from repro.obs.session import NULL_OBS

__all__ = ["FunctionCentricOptimizer"]


class FunctionCentricOptimizer:
    """Greedy per-function variant scheduling over the keep-alive window."""

    #: Observability session; the owning policy replaces this at bind
    #: time when the run is observed (see ``PulsePolicy.on_bind``).
    obs = NULL_OBS

    def __init__(
        self,
        estimator: InterArrivalEstimator,
        scheme: ThresholdScheme,
        cold_start_fallback: str = "highest",
    ):
        if cold_start_fallback not in ("highest", "lowest"):
            raise ValueError(
                f"cold_start_fallback must be 'highest' or 'lowest', "
                f"got {cold_start_fallback!r}"
            )
        self.estimator = estimator
        self.scheme = scheme
        self.cold_start_fallback = cold_start_fallback

    def plan(
        self, function_id: int, minute: int, family: ModelFamily
    ) -> list[ModelVariant | None]:
        """The keep-alive plan for offsets 1..K after an arrival at ``minute``."""
        obs = self.obs
        if obs.spans_enabled:
            t0 = perf_counter()
            probs = self.estimator.probabilities(function_id, minute)
            obs.spans.add("estimate", perf_counter() - t0)
        else:
            probs = self.estimator.probabilities(function_id, minute)
        lifetime, recent = self.estimator.n_gaps(function_id)
        if lifetime == 0 and recent == 0:
            # No history: behave like the fixed policy until data exists.
            fallback = (
                family.highest
                if self.cold_start_fallback == "highest"
                else family.lowest
            )
            return [fallback] * self.estimator.window
        if obs.decisions_enabled:
            # The engine's plan record claims this snapshot after set_plan.
            obs.stage_probs(function_id, minute, probs)
        # tolist() hands back Python floats: cheaper to iterate and compare
        # than numpy scalars, and value-identical (float64 round trip).
        select_level = self.scheme.select_level
        variant = family.variant
        n_variants = family.n_variants
        plan: list[ModelVariant | None] = []
        append = plan.append
        t0 = perf_counter() if obs.spans_enabled else 0.0
        for p in probs.tolist():
            level = select_level(p if p < 1.0 else 1.0, n_variants)
            append(None if level is None else variant(level))
        if obs.spans_enabled:
            obs.spans.add("band-mapping", perf_counter() - t0)
        return plan

    def invocation_probability(self, function_id: int, minute: int) -> float:
        """Expose *Ip* for the cross-function utility computation."""
        return self.estimator.invocation_probability(function_id, minute)

    def max_remaining_probability(self, function_id: int, minute: int) -> float:
        """Highest invocation probability over the function's *remaining*
        keep-alive window (offsets from now through K after its last
        arrival).

        Used by the global optimizer's drop protection: a keep-alive may
        only be dropped entirely when the function has no chance of
        invocation at any minute its plan still covers — the probability
        at the current minute alone would wrongly shed functions whose
        arrival mode sits later in the window (e.g. a 7-minute timer
        reviewed at offset 2).
        """
        last = self.estimator.last_arrival(function_id)
        if last is None:
            return 0.0
        offset = minute - last
        if offset <= 0:
            return 1.0
        window = self.estimator.window
        if offset > window:
            return 0.0
        probs = self.estimator.exact_probabilities(function_id, minute)
        return float(probs[offset - 1 :].max())
