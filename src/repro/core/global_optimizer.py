"""Cross-function (global) optimization (§III-B, Algorithm 2).

Every minute, after the function-centric plans are installed, the global
optimizer checks whether the minute's keep-alive memory constitutes a peak
(Algorithm 1). While it does, it:

1. normalizes the priority structure (Eq. 1);
2. computes ``Uv = Ai + Pr + Ip`` for every model currently kept alive;
3. downgrades the model with the lowest Uv by one variant — rewriting
   that function's remaining schedule entries — and gives it +1 in the
   priority structure;

until the peak is flattened (memory back within the threshold of the
prior) or nothing is left to downgrade. Downgrading a model already at
its lowest variant drops the keep-alive entirely ("or even cold starts").
"""

from __future__ import annotations

from time import perf_counter

from repro.core.function_optimizer import FunctionCentricOptimizer
from repro.core.peak import PeakDetector
from repro.core.priority import PriorityStructure
from repro.core.utility import UtilityWeights, components_for
from repro.models.variants import ModelFamily
from repro.obs.session import NULL_OBS
from repro.runtime.events import EventKind
from repro.runtime.schedule import KeepAliveSchedule

__all__ = ["GlobalOptimizer"]


class GlobalOptimizer:
    """Algorithm 2, bound to a peak detector, priority structure and the
    function-centric optimizer that supplies invocation probabilities.

    ``weights`` defaults to the paper's equal weighting of the three
    utility components; the ablation harness zeroes individual terms.
    """

    #: Observability session / event log; the owning policy replaces
    #: these at bind time when the run is observed (``PulsePolicy.on_bind``).
    obs = NULL_OBS
    event_sink = None

    def __init__(
        self,
        detector: PeakDetector,
        priority: PriorityStructure,
        function_optimizer: FunctionCentricOptimizer,
        weights: UtilityWeights | None = None,
    ):
        self.detector = detector
        self.priority = priority
        self.function_optimizer = function_optimizer
        self.weights = weights or UtilityWeights()
        self.n_downgrades = 0
        self.n_peak_minutes = 0

    def review(
        self,
        minute: int,
        schedule: KeepAliveSchedule,
        assignment: dict[int, ModelFamily],
    ) -> int:
        """Flatten a peak at ``minute`` if there is one.

        Returns the number of downgrades performed this minute, and always
        commits the (post-flattening) memory into the detector's history.
        """
        obs = self.obs
        if obs.spans_enabled:
            t0 = perf_counter()
            demand = schedule.memory_at(minute)
            prior = self.detector.prior_memory()
            is_peak = self.detector.is_peak(demand, prior)
            obs.spans.add("peak-detect", perf_counter() - t0)
        else:
            demand = schedule.memory_at(minute)
            prior = self.detector.prior_memory()
            is_peak = self.detector.is_peak(demand, prior)
        current = demand
        downgrades = 0
        if is_peak:
            self.n_peak_minutes += 1
            target = self.detector.flatten_target(prior)
            if obs.decisions_enabled:
                obs.record_peak(minute, demand, prior, target)
            t0 = perf_counter() if obs.spans_enabled else 0.0
            record = obs.decisions_enabled or self.event_sink is not None
            while current > target:
                alive = schedule.alive_at(minute)
                collect = [] if obs.decisions_enabled else None
                victim = self._lowest_utility(alive, minute, assignment, collect)
                if victim is None:
                    break  # nothing downgradable remains; as flat as it gets
                allow_drop = (
                    self.function_optimizer.max_remaining_probability(victim, minute)
                    == 0.0
                )
                schedule.downgrade(
                    victim, minute, assignment[victim], allow_drop=allow_drop
                )
                self.priority.record_downgrade(victim)
                downgrades += 1
                current = schedule.memory_at(minute)
                if record:
                    new = schedule.alive_variant(victim, minute)
                    new_name = new.name if new is not None else None
                    if self.event_sink is not None:
                        self.event_sink.emit(
                            minute, EventKind.DOWNGRADE, victim, new_name
                        )
                    if obs.decisions_enabled:
                        obs.record_downgrade(
                            minute, victim, alive[victim].name, new_name, collect
                        )
            if obs.spans_enabled:
                obs.spans.add("downgrade-select", perf_counter() - t0)
        self.detector.observe(demand, current)
        self.n_downgrades += downgrades
        return downgrades

    def _lowest_utility(
        self,
        alive: dict,
        minute: int,
        assignment: dict[int, ModelFamily],
        collect: list[dict] | None = None,
    ) -> int | None:
        """Alg. 2 lines 4–9: normalize priorities, score every kept-alive
        model, pick the minimum (ties: lowest function id, deterministic).

        A model already at its lowest variant can only be "downgraded" by
        dropping its keep-alive entirely; that is allowed only when it has
        zero invocation probability over its whole remaining window —
        §II's design principle ("the utilization of lower-quality models
        when there's even a slight chance of invocation prevents ... cold
        starts") and the guarantee of §V ("PULSE ensures that at least
        the container with low-quality model is kept alive"). Returns
        ``None`` when no model is eligible.

        ``collect``, when given, receives one dict per kept-alive model —
        the scored ``Ai``/``Pr``/``Ip``/``Uv`` terms, or a ``protected``
        marker — purely for the decision trace; it never affects scoring.
        """
        normalized = self.priority.normalized()
        best_fid: int | None = None
        best_uv = float("inf")
        for fid in sorted(alive):
            variant = alive[fid]
            ip = self.function_optimizer.invocation_probability(fid, minute)
            if variant.level == 0 and (
                self.function_optimizer.max_remaining_probability(fid, minute) > 0.0
            ):
                if collect is not None:
                    collect.append(
                        {"fid": fid, "variant": variant.name, "protected": True}
                    )
                continue  # protected: dropping would risk a likely cold start
            comp = components_for(
                family=assignment[fid],
                kept_variant=variant,
                priority=float(normalized[fid]),
                invocation_probability=min(ip, 1.0),
            )
            value = self.weights.apply(comp)
            if collect is not None:
                collect.append({
                    "fid": fid,
                    "variant": variant.name,
                    "Ai": comp.accuracy_improvement,
                    "Pr": comp.priority,
                    "Ip": comp.invocation_probability,
                    "Uv": value,
                })
            if value < best_uv:
                best_uv = value
                best_fid = fid
        return best_fid
