"""Inter-arrival probability estimation (§III-A).

For every function PULSE maintains invocation history over **two periods**
— the immediate past (a sliding *local window*) and the full duration
since the system started — because inter-arrival behaviour drifts over
time (Figure 2). For each period it computes, at minute resolution, the
empirical probability of each inter-arrival value inside the keep-alive
window ("when the inter-arrival time of 2 appears 10 times, the
probability of 2 is 10 divided by the total number of inter-arrival
times"), then averages the two periods' probabilities.

The estimator is strictly causal: it sees arrivals through
:meth:`InterArrivalEstimator.observe` in time order and never looks ahead.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["InterArrivalEstimator"]


class _FunctionHistory:
    """Arrival bookkeeping for one function.

    ``version`` increments on every mutation (new gap recorded, old gap
    evicted); the probability queries cache their result against it, so
    repeated queries between mutations — e.g. the plan, the utility *Ip*
    and the drop-protection check all within one review minute — reuse
    one computation instead of re-normalizing the histograms each time.
    """

    __slots__ = (
        "last_arrival",
        "lifetime_counts",
        "lifetime_total",
        "recent",
        "recent_counts",
        "recent_total",
        "version",
        "exact_version",
        "exact_cache",
        "mode_version",
        "mode_cache",
    )

    def __init__(self, window: int):
        self.last_arrival: int | None = None
        # index d-1 holds the count of inter-arrivals equal to d minutes,
        # for d in 1..window; longer gaps only grow the totals.
        self.lifetime_counts = np.zeros(window, dtype=np.int64)
        self.lifetime_total = 0
        self.recent: deque[tuple[int, int]] = deque()  # (arrival minute, gap)
        self.recent_counts = np.zeros(window, dtype=np.int64)
        self.recent_total = 0
        self.version = 0
        self.exact_version = -1  # version the caches were computed at
        self.exact_cache: np.ndarray | None = None
        self.mode_version = -1
        self.mode_cache: np.ndarray | None = None


class InterArrivalEstimator:
    """Per-function inter-arrival probabilities over the keep-alive window.

    Parameters
    ----------
    n_functions:
        Number of functions in the run.
    window:
        Keep-alive window length in minutes (the paper's 10).
    local_window:
        Length in minutes of the sliding immediate-past period
        (the paper's ``l_window``; evaluated at 10/60/120 in Figure 12).
    normalization:
        Denominator of the empirical probabilities. ``"all"`` divides a
        gap value's count by the total number of inter-arrivals (the
        paper's literal formula); ``"window"`` divides by the number of
        inter-arrivals that land *inside* the keep-alive window — i.e.
        the probability of re-arrival at minute *d* conditioned on
        re-arrival within the window ("the probabilities associated with
        the inter-arrival times during the keep-alive period"). The
        conditional reading concentrates probability mass and therefore
        keeps higher-quality variants alive at likely minutes; it is the
        default because it reproduces the paper's accuracy/cost balance.
    mode:
        Shape of the per-offset probability handed to the greedy mapper.
        ``"exact"`` is P(gap = d) — the paper's literal formula.
        ``"survival"`` is P(gap ≥ d): the probability that the arrival is
        still to come at offset *d*. It is monotone non-increasing, so the
        greedy band mapping gives every variant one *contiguous duration*
        inside the window — matching §III-A's "selects the model variant
        ... and specifies the duration for the keep-alive of each
        variant" — and it is the default because it reproduces the
        paper's reported accuracy/cost/service-time balance (see
        EXPERIMENTS.md for the ablation across modes).
        ``"cumulative"`` is P(gap ≤ d), included for the ablation.
        ``"hazard"`` is P(gap = d | gap ≥ d) — the discrete hazard rate:
        the probability the arrival lands at offset *d* given it has not
        happened yet. It concentrates exactly at the likely arrival
        minutes (a 6-minute timer gets hazard 1 at offset 6 and 0
        before), which is the paper's description of the outcome: "the
        high-quality model is kept alive precisely during the period (at
        minute resolution) of an invocation".
    """

    def __init__(
        self,
        n_functions: int,
        window: int = 10,
        local_window: int = 60,
        normalization: str = "window",
        mode: str = "survival",
    ):
        check_positive_int("n_functions", n_functions)
        check_positive_int("window", window)
        check_positive_int("local_window", local_window)
        if normalization not in ("all", "window"):
            raise ValueError(
                f"normalization must be 'all' or 'window', got {normalization!r}"
            )
        if mode not in ("exact", "survival", "cumulative", "hazard"):
            raise ValueError(
                "mode must be 'exact', 'survival', 'cumulative' or "
                f"'hazard', got {mode!r}"
            )
        self.n_functions = n_functions
        self.window = window
        self.local_window = local_window
        self.normalization = normalization
        self.mode = mode
        self._h = [_FunctionHistory(window) for _ in range(n_functions)]
        self._now = -1

    # -- feeding -----------------------------------------------------------
    def observe(self, function_id: int, minute: int) -> None:
        """Record an arrival minute (multiple invocations in the same
        minute are one arrival — the paper's minute resolution)."""
        h = self._history(function_id)
        if minute < self._now:
            raise ValueError(
                f"arrivals must be observed in time order ({minute} < {self._now})"
            )
        self._now = max(self._now, minute)
        if h.last_arrival is not None:
            if minute == h.last_arrival:
                return  # same minute: not a new arrival at this resolution
            gap = minute - h.last_arrival
            self._record_gap(h, minute, gap)
        h.last_arrival = minute

    def _record_gap(self, h: _FunctionHistory, minute: int, gap: int) -> None:
        h.lifetime_total += 1
        h.recent.append((minute, gap))
        h.recent_total += 1
        if gap <= self.window:
            h.lifetime_counts[gap - 1] += 1
            h.recent_counts[gap - 1] += 1
        h.version += 1

    def _evict(self, h: _FunctionHistory, now: int) -> None:
        cutoff = now - self.local_window
        evicted = False
        while h.recent and h.recent[0][0] < cutoff:
            _, gap = h.recent.popleft()
            h.recent_total -= 1
            if gap <= self.window:
                h.recent_counts[gap - 1] -= 1
            evicted = True
        if evicted:
            h.version += 1

    # -- queries -----------------------------------------------------------
    # Both query paths cache against the history's version counter. Eviction
    # runs *before* the cache check, so the cached vector is always the one
    # a fresh computation at ``now`` would produce. Returned arrays are
    # shared with the cache: callers must treat them as read-only (all
    # in-repo consumers only read element values).
    def probabilities(self, function_id: int, now: int) -> np.ndarray:
        """Per-offset probabilities in the configured ``mode``, d=1..window."""
        if self.mode == "exact":
            return self.exact_probabilities(function_id, now)
        h = self._history(function_id)
        self._evict(h, now)
        if h.mode_version == h.version and h.mode_cache is not None:
            return h.mode_cache
        exact = self._exact(h)
        if self.mode == "cumulative":
            out = np.minimum(np.cumsum(exact), 1.0)
        else:
            survival = np.minimum(np.cumsum(exact[::-1])[::-1], 1.0)
            if self.mode == "survival":
                out = survival
            else:
                # hazard: P(gap = d | gap >= d); 0 where no mass remains.
                with np.errstate(divide="ignore", invalid="ignore"):
                    hazard = np.where(survival > 0, exact / survival, 0.0)
                out = np.minimum(hazard, 1.0)
        h.mode_version = h.version
        h.mode_cache = out
        return out

    def exact_probabilities(self, function_id: int, now: int) -> np.ndarray:
        """P(next arrival exactly ``d`` minutes after an arrival), d=1..window.

        The average of the local-window and lifetime empirical
        distributions. All-zero when the function has no inter-arrival
        history yet.
        """
        h = self._history(function_id)
        self._evict(h, now)
        return self._exact(h)

    def _exact(self, h: _FunctionHistory) -> np.ndarray:
        if h.exact_version == h.version and h.exact_cache is not None:
            return h.exact_cache
        if self.normalization == "window":
            lifetime_denom = int(h.lifetime_counts.sum())
            recent_denom = int(h.recent_counts.sum())
        else:
            lifetime_denom = h.lifetime_total
            recent_denom = h.recent_total
        lifetime = (
            h.lifetime_counts / lifetime_denom
            if lifetime_denom
            else np.zeros(self.window)
        )
        recent = (
            h.recent_counts / recent_denom
            if recent_denom
            else np.zeros(self.window)
        )
        if lifetime_denom and recent_denom:
            out = (lifetime + recent) / 2.0
        else:
            # Only one period has data (e.g. right after start): use it
            # alone rather than averaging against an uninformative zero
            # vector.
            out = lifetime if lifetime_denom else recent
        h.exact_version = h.version
        h.exact_cache = out
        return out

    def invocation_probability(self, function_id: int, now: int) -> float:
        """The paper's *Ip*: probability of an invocation at the current
        offset since the function's last arrival.

        Offsets at or beyond the window (or functions never seen) give 0;
        an arrival in this very minute gives 1 (it *is* being invoked).
        """
        h = self._history(function_id)
        if h.last_arrival is None:
            return 0.0
        offset = now - h.last_arrival
        if offset <= 0:
            return 1.0
        if offset > self.window:
            return 0.0
        # Ip is always the exact-minute probability, independent of the
        # planning mode: it scores the chance of an arrival *now*.
        return float(self.exact_probabilities(function_id, now)[offset - 1])

    def last_arrival(self, function_id: int) -> int | None:
        """Minute of the function's most recent arrival, if any."""
        return self._history(function_id).last_arrival

    def n_gaps(self, function_id: int) -> tuple[int, int]:
        """(lifetime, local-window) inter-arrival sample sizes."""
        h = self._history(function_id)
        return h.lifetime_total, h.recent_total

    def _history(self, function_id: int) -> _FunctionHistory:
        if not 0 <= function_id < self.n_functions:
            raise IndexError(
                f"function_id {function_id} out of range 0..{self.n_functions - 1}"
            )
        return self._h[function_id]
