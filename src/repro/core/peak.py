"""Keep-alive memory peak detection (§III-B, Algorithm 1).

A minute is a *peak* when its keep-alive memory exceeds the **prior
keep-alive memory** by more than the tunable keep-alive memory threshold
(KM_T, 10 % by default; Figure 11 evaluates 5/10/15 %)::

    is_peak(C) = C > P + KM_T * P

The subtlety is choosing P (Algorithm 1):

- under continuous activity, P is the previous minute's keep-alive
  memory, floored by the average over the sliding local window;
- after a period of *inactivity* (previous memory 0 — think nocturnal or
  diurnal functions waking up) the naive previous-minute rule would flag
  every resumption as a peak and force cold starts, so the detector falls
  back to (a) the local-window average when the system has run long
  enough (≥ 2 × l_window) and the average is informative (> 0), otherwise
  (b) the most recent non-zero memory value, and if none exists
  (system just started) P = ∞ so nothing is flagged before history
  accumulates.

One further accounting choice matters. The flattening loop *changes* the
committed memory, so a detector averaging committed values would ratchet:
each flattened minute lowers the prior, which flags the next minute,
which flattens further, until every keep-alive is shredded. The detector
therefore keeps its window average and last-non-zero over the **demand**
memory — what the function-centric plans asked for *before* flattening —
while the previous-minute term uses the committed (post-flattening)
value, exactly the quantity "keep-alive memory of t-1" denotes.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive, check_positive_int

__all__ = ["PeakDetector"]


class PeakDetector:
    """Stateful Algorithm 1: feed per-minute memory, query peaks."""

    def __init__(
        self,
        memory_threshold: float = 0.10,
        local_window: int = 60,
        prior_rule: str = "algorithm1",
    ):
        check_positive("memory_threshold", memory_threshold)
        check_positive_int("local_window", local_window)
        if prior_rule not in ("algorithm1", "previous_minute"):
            raise ValueError(
                "prior_rule must be 'algorithm1' or 'previous_minute', got "
                f"{prior_rule!r}"
            )
        self.memory_threshold = memory_threshold
        self.local_window = local_window
        self.prior_rule = prior_rule
        self._demand: list[float] = []  # pre-flattening memory per minute
        self._prev_committed: float | None = None  # post-flattening, t-1
        self._last_nonzero: float | None = None
        self._window_sum = 0.0  # rolling sum of the last local_window demands

    # -- state feed ----------------------------------------------------------
    def observe(self, demand_mb: float, committed_mb: float | None = None) -> None:
        """Commit one minute.

        ``demand_mb`` is the keep-alive memory the plans requested;
        ``committed_mb`` (default: same) is what remained after any
        flattening.
        """
        if demand_mb < 0:
            raise ValueError(f"memory must be >= 0, got {demand_mb}")
        committed = demand_mb if committed_mb is None else committed_mb
        if committed < 0:
            raise ValueError(f"memory must be >= 0, got {committed}")
        self._demand.append(demand_mb)
        self._window_sum += demand_mb
        if len(self._demand) > self.local_window:
            self._window_sum -= self._demand[-self.local_window - 1]
        if demand_mb > 0:
            self._last_nonzero = demand_mb
        self._prev_committed = committed

    @property
    def minutes_observed(self) -> int:
        return len(self._demand)

    def _window_average(self) -> float:
        n = min(len(self._demand), self.local_window)
        return self._window_sum / n if n else 0.0

    # -- Algorithm 1 ----------------------------------------------------------
    def prior_memory(self) -> float:
        """P_KaM for the *next* minute, per Algorithm 1.

        With ``prior_rule="previous_minute"`` (the naive ablation of the
        peak-detector design) the prior is simply the previous minute's
        committed memory — no window floor, no inactivity handling.
        """
        if not self._demand:
            return math.inf
        prev = self._prev_committed
        assert prev is not None
        if self.prior_rule == "previous_minute":
            # Naive rule: after inactivity the prior is 0, so any
            # resumption is flagged as a peak — the failure mode §III-B
            # describes ("would result in a high number of cold starts").
            return prev
        if prev > 0:
            # Continuous activity: previous minute, floored by the sliding
            # local-window average of demand (see module docstring).
            return max(prev, self._window_average())
        # Resumption after inactivity.
        if len(self._demand) >= 2 * self.local_window:
            avg = self._window_average()
            if avg > 0:
                return avg
        if self._last_nonzero is not None:
            return self._last_nonzero
        return math.inf

    def is_peak(self, current_memory_mb: float, prior: float | None = None) -> bool:
        """IsPeak(C_KaM, P_KaM): C > P + KM_T × P."""
        if current_memory_mb < 0:
            raise ValueError(f"memory must be >= 0, got {current_memory_mb}")
        p = self.prior_memory() if prior is None else prior
        if math.isinf(p):
            return False
        return current_memory_mb > p * (1.0 + self.memory_threshold)

    def flatten_target(self, prior: float | None = None) -> float:
        """Highest memory that is *not* a peak relative to ``prior``."""
        p = self.prior_memory() if prior is None else prior
        if math.isinf(p):
            return math.inf
        return p * (1.0 + self.memory_threshold)
