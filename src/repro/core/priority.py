"""The priority structure (§III-B, Eq. 1).

PULSE counts how many times each model has been downgraded; during a peak
the counts are min-max normalized (Eq. 1) so the most-downgraded model
gets priority 1 and is therefore *protected* from further downgrades
(priority is added into the utility value, and the lowest-utility model is
the one downgraded). When every model has the same count, Eq. 1's
degenerate branch yields all zeros.

"To minimize memory overhead, the priority structure is implemented as an
array" — we keep that representation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["PriorityStructure", "normalize"]


def normalize(values: np.ndarray) -> np.ndarray:
    """Eq. 1 min-max normalization.

    ``(X - Xmin) / (Xmax - Xmin)`` elementwise; when ``Xmax == Xmin`` the
    equation degenerates to ``X - Xmin`` (all zeros).
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return values.copy()
    vmin = values.min()
    vmax = values.max()
    if vmax == vmin:
        return values - vmin
    return (values - vmin) / (vmax - vmin)


class PriorityStructure:
    """Per-function downgrade counters with Eq. 1 normalization."""

    def __init__(self, n_functions: int):
        check_positive_int("n_functions", n_functions)
        # "Initialize the priority structure as an array with zeros for all
        # models... immediately after the system has started." (Alg. 2)
        self._counts = np.zeros(n_functions, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._counts)

    def record_downgrade(self, function_id: int) -> None:
        """+1 for the model that was just downgraded (Alg. 2, line 10)."""
        self._check(function_id)
        self._counts[function_id] += 1

    def count(self, function_id: int) -> int:
        self._check(function_id)
        return int(self._counts[function_id])

    @property
    def counts(self) -> np.ndarray:
        """A copy of the raw downgrade counts."""
        return self._counts.copy()

    def normalized(self) -> np.ndarray:
        """All priorities after Eq. 1 normalization, each in [0, 1]."""
        return normalize(self._counts)

    def priority(self, function_id: int) -> float:
        """One model's normalized priority (the *Pr* utility component)."""
        self._check(function_id)
        return float(self.normalized()[function_id])

    def _check(self, function_id: int) -> None:
        if not 0 <= function_id < len(self._counts):
            raise IndexError(
                f"function_id {function_id} out of range 0..{len(self._counts) - 1}"
            )
