"""The PULSE keep-alive policy (the paper's contribution, assembled).

Wires the function-centric optimizer (inter-arrival probabilities +
greedy threshold mapping) and the cross-function optimizer (Algorithm 1
peak detection + Algorithm 2 utility-based downgrades) into the
:class:`~repro.runtime.policy.KeepAlivePolicy` interface the simulator
drives.

Typical use::

    from repro import PulsePolicy, PulseConfig, Simulation, generate_trace
    from repro.experiments.assignments import sample_assignment

    trace = generate_trace()
    assignment = sample_assignment(trace.n_functions, seed=1)
    result = Simulation(trace, assignment, PulsePolicy()).run()
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.function_optimizer import FunctionCentricOptimizer
from repro.core.global_optimizer import GlobalOptimizer
from repro.core.interarrival import InterArrivalEstimator
from repro.core.peak import PeakDetector
from repro.core.priority import PriorityStructure
from repro.core.thresholds import ThresholdScheme, get_scheme
from repro.core.utility import UtilityWeights
from repro.models.variants import ModelVariant
from repro.runtime.policy import KeepAlivePolicy
from repro.runtime.schedule import KeepAliveSchedule
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["PulseConfig", "PulsePolicy"]


@dataclass(frozen=True)
class PulseConfig:
    """PULSE's tunables, with the paper's defaults.

    - ``local_window`` — sliding immediate-past period in minutes
      (Figure 12 evaluates 10/60/120);
    - ``memory_threshold`` — Algorithm 1's KM_T (Figure 11 evaluates
      0.05/0.10/0.15);
    - ``threshold_scheme`` — "T1" or "T2" (Figure 10), or any
      :class:`~repro.core.thresholds.ThresholdScheme` instance;
    - ``enable_global`` — turn the cross-function stage off to reproduce
      Figure 4(b) (individual optimization only, peaks persist);
    - ``cold_variant`` — which variant a cold start brings up
      ("highest", matching the quality a fixed policy would deliver, or
      "lowest" for the cheapest possible recovery).
    """

    local_window: int = 60
    memory_threshold: float = 0.10
    threshold_scheme: str | ThresholdScheme = "T1"
    enable_global: bool = True
    cold_variant: str = "highest"
    probability_normalization: str = "window"
    probability_mode: str = "survival"
    window: int | None = None  # None: use the engine's keep-alive window
    utility_weights: UtilityWeights | None = None  # None: equal (the paper)
    prior_rule: str = "algorithm1"  # "previous_minute" = naive ablation

    def __post_init__(self) -> None:
        check_positive_int("local_window", self.local_window)
        check_positive("memory_threshold", self.memory_threshold)
        if self.cold_variant not in ("highest", "lowest"):
            raise ValueError(
                f"cold_variant must be 'highest' or 'lowest', got "
                f"{self.cold_variant!r}"
            )
        if self.probability_normalization not in ("all", "window"):
            raise ValueError(
                "probability_normalization must be 'all' or 'window', got "
                f"{self.probability_normalization!r}"
            )
        if self.probability_mode not in ("exact", "survival", "cumulative", "hazard"):
            raise ValueError(
                "probability_mode must be 'exact', 'survival', 'cumulative' "
                f"or 'hazard', got {self.probability_mode!r}"
            )
        if self.window is not None:
            check_positive_int("window", self.window)
        if self.prior_rule not in ("algorithm1", "previous_minute"):
            raise ValueError(
                "prior_rule must be 'algorithm1' or 'previous_minute', got "
                f"{self.prior_rule!r}"
            )
        get_scheme(self.threshold_scheme)  # validate early


class PulsePolicy(KeepAlivePolicy):
    """PULSE: mixed-quality dynamic keep-alive."""

    def __init__(self, config: PulseConfig | None = None):
        super().__init__()
        self.config = config or PulseConfig()
        scheme = get_scheme(self.config.threshold_scheme)
        self.name = f"PULSE-{scheme.name}" if scheme.name != "T1" else "PULSE"
        self._scheme = scheme
        # Built at bind time (need n_functions / window):
        self._estimator: InterArrivalEstimator | None = None
        self._fopt: FunctionCentricOptimizer | None = None
        self._gopt: GlobalOptimizer | None = None

    def on_bind(self) -> None:
        window = self.config.window or self.keep_alive_window
        if window > self.keep_alive_window:
            raise ValueError(
                f"PULSE window {window} exceeds the engine's keep-alive "
                f"window {self.keep_alive_window}"
            )
        self._estimator = InterArrivalEstimator(
            n_functions=self.n_functions,
            window=window,
            local_window=self.config.local_window,
            normalization=self.config.probability_normalization,
            mode=self.config.probability_mode,
        )
        self._fopt = FunctionCentricOptimizer(self._estimator, self._scheme)
        self._gopt = GlobalOptimizer(
            detector=PeakDetector(
                memory_threshold=self.config.memory_threshold,
                local_window=self.config.local_window,
                prior_rule=self.config.prior_rule,
            ),
            priority=PriorityStructure(self.n_functions),
            function_optimizer=self._fopt,
            weights=self.config.utility_weights,
        )
        # Propagate the run's telemetry (attach_observability precedes
        # bind, so these are final). Instance attributes shadow the
        # NULL_OBS class defaults only on observed runs.
        if self.obs.enabled:
            self._fopt.obs = self.obs
            self._gopt.obs = self.obs
        if self.event_sink is not None:
            self._gopt.event_sink = self.event_sink

    # -- engine interface ---------------------------------------------------
    def observe_invocation(self, function_id: int, minute: int, count: int) -> None:
        assert self._estimator is not None
        self._estimator.observe(function_id, minute)

    def cold_variant(self, function_id: int, minute: int) -> ModelVariant:
        family = self.family(function_id)
        return family.highest if self.config.cold_variant == "highest" else family.lowest

    def plan(self, function_id: int, minute: int) -> list[ModelVariant | None]:
        assert self._fopt is not None
        return self._fopt.plan(function_id, minute, self.family(function_id))

    def review_minute(self, minute: int, schedule: KeepAliveSchedule) -> None:
        assert self._gopt is not None
        if self.config.enable_global:
            self._gopt.review(minute, schedule, self.assignment)
        else:
            # Still feed the detector so diagnostics stay meaningful.
            self._gopt.detector.observe(schedule.memory_at(minute))

    def idle_review(self, minute: int, schedule: KeepAliveSchedule) -> bool:
        """O(1) per-minute detector feed for the fast engine.

        Mirrors :meth:`review_minute` exactly on non-peak minutes (the
        detector observes the minute's demand with no flattening, which is
        precisely what the full review does when ``is_peak`` is false);
        defers to the full review when the minute is a peak so Algorithm 2
        (or the MILP subclass's solver) runs unchanged.
        """
        assert self._gopt is not None
        detector = self._gopt.detector
        demand = schedule.memory_at(minute)
        if self.config.enable_global and detector.is_peak(demand):
            return True
        detector.observe(demand)
        return False

    # -- diagnostics ---------------------------------------------------------
    @property
    def n_downgrades(self) -> int:
        """Total Algorithm-2 downgrades performed so far."""
        return self._gopt.n_downgrades if self._gopt else 0

    @property
    def n_peak_minutes(self) -> int:
        """Minutes flagged as peaks so far."""
        return self._gopt.n_peak_minutes if self._gopt else 0

    @property
    def priority_counts(self):
        """Raw downgrade counts per function (the priority structure)."""
        assert self._gopt is not None
        return self._gopt.priority.counts
