"""Probability-threshold schemes for the greedy variant selection (§III-A, §V).

With *N* variants, PULSE divides the invocation-probability space [0, 1]
into areas and assigns the lowest-accuracy variant to the lowest-
probability area, and so on. The paper evaluates two schemes (Figure 10):

- **T1** — N areas separated by N-1 thresholds at 1/N, 2/N, …, (N-1)/N.
  Probability 0 still maps to the lowest variant: PULSE "ensures that at
  least the container with low-quality model is kept alive every 10
  minutes after an invocation" (§V).
- **T2** — reserves the lowest variant for probability exactly 0 and
  splits (0, 1] into N-1 areas (N-2 thresholds) over the remaining
  variants.

Both return a *variant level* (0 = lowest accuracy); the paper's
robustness claim is that any scheme keeping "the variant with the highest
accuracy at higher invocation probabilities" works, which
:class:`MonotoneScheme` (the ablation scheme with arbitrary monotone cut
points) lets you test directly.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = [
    "MonotoneScheme",
    "TechniqueT1",
    "TechniqueT2",
    "ThresholdScheme",
    "get_scheme",
]


class ThresholdScheme(abc.ABC):
    """Maps an invocation probability to a variant level (or to ``None``
    for "do not keep anything alive")."""

    name: str = "scheme"

    @abc.abstractmethod
    def select_level(self, probability: float, n_variants: int) -> int | None:
        """Variant level for ``probability``; ``None`` keeps nothing alive."""

    def _check(self, probability: float, n_variants: int) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability!r}")
        check_positive_int("n_variants", n_variants)


class TechniqueT1(ThresholdScheme):
    """The default scheme: N equal probability areas for N variants."""

    name = "T1"

    def select_level(self, probability: float, n_variants: int) -> int | None:
        self._check(probability, n_variants)
        return min(int(probability * n_variants), n_variants - 1)


class TechniqueT2(ThresholdScheme):
    """Lowest variant reserved for probability 0; N-1 areas over (0, 1]."""

    name = "T2"

    def select_level(self, probability: float, n_variants: int) -> int | None:
        self._check(probability, n_variants)
        if probability == 0.0 or n_variants == 1:
            return 0
        upper = n_variants - 1  # number of areas over (0, 1]
        return 1 + min(int(probability * upper), upper - 1)


class MonotoneScheme(ThresholdScheme):
    """Arbitrary monotone cut points (ablation of the robustness claim).

    ``cuts`` are strictly increasing values in (0, 1); probability below
    ``cuts[0]`` selects level 0, between ``cuts[i-1]`` and ``cuts[i]``
    level ``i`` (clamped to the family's top level). Any choice of cuts
    preserves the "higher probability → higher accuracy" principle.
    """

    def __init__(self, cuts: list[float] | tuple[float, ...], name: str = "monotone"):
        cuts = tuple(float(c) for c in cuts)
        if any(not 0.0 < c < 1.0 for c in cuts):
            raise ValueError(f"cuts must lie strictly inside (0, 1): {cuts}")
        if any(b <= a for a, b in zip(cuts, cuts[1:])):
            raise ValueError(f"cuts must be strictly increasing: {cuts}")
        self.cuts = cuts
        self.name = name

    def select_level(self, probability: float, n_variants: int) -> int | None:
        self._check(probability, n_variants)
        level = int(np.searchsorted(self.cuts, probability, side="right"))
        return min(level, n_variants - 1)


_SCHEMES: dict[str, type[ThresholdScheme]] = {
    "T1": TechniqueT1,
    "T2": TechniqueT2,
}


def get_scheme(name: str | ThresholdScheme) -> ThresholdScheme:
    """Resolve a scheme by name ("T1"/"T2") or pass an instance through."""
    if isinstance(name, ThresholdScheme):
        return name
    try:
        return _SCHEMES[name]()
    except KeyError:
        raise KeyError(
            f"unknown threshold scheme {name!r}; known: {sorted(_SCHEMES)}"
        ) from None
