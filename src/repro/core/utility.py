"""Utility value of a keep-alive decision (§III-B, Eq. 2).

During a peak, every model currently kept alive is scored::

    Uv = Ai + Pr + Ip

- **Ai** — accuracy improvement of the kept variant over the next-lower
  variant (for the lowest variant: its accuracy in decimal form, since
  "downgrading" it means dropping the keep-alive and risking a cold
  start);
- **Pr** — Eq. 1-normalized downgrade count (protects models that already
  absorbed downgrades — the unbiasedness mechanism);
- **Ip** — probability of invocation at the current offset, from the
  function-centric optimizer.

Each component lies in [0, 1] and they are *equally weighted* ("to ensure
a balanced assessment and prevent bias"). The model with the lowest Uv is
downgraded first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.variants import ModelFamily, ModelVariant

__all__ = ["UtilityComponents", "UtilityWeights", "utility_value", "components_for"]


@dataclass(frozen=True)
class UtilityWeights:
    """Weights on the three Eq. 2 components.

    The paper weights them equally "to ensure a balanced assessment and
    prevent bias"; the utility-component ablation
    (:func:`repro.experiments.ablations.utility_component_ablation`) zeroes
    them one at a time to show what each term buys.
    """

    accuracy_improvement: float = 1.0
    priority: float = 1.0
    invocation_probability: float = 1.0

    def __post_init__(self) -> None:
        for label, v in (
            ("accuracy_improvement", self.accuracy_improvement),
            ("priority", self.priority),
            ("invocation_probability", self.invocation_probability),
        ):
            if v < 0:
                raise ValueError(f"weight {label} must be >= 0, got {v!r}")

    def apply(self, components: "UtilityComponents") -> float:
        """Weighted Eq. 2 value."""
        return (
            self.accuracy_improvement * components.accuracy_improvement
            + self.priority * components.priority
            + self.invocation_probability * components.invocation_probability
        )


@dataclass(frozen=True)
class UtilityComponents:
    """The three scored components of one keep-alive decision."""

    accuracy_improvement: float  # Ai
    priority: float  # Pr
    invocation_probability: float  # Ip

    def __post_init__(self) -> None:
        for label, v in (
            ("Ai", self.accuracy_improvement),
            ("Pr", self.priority),
            ("Ip", self.invocation_probability),
        ):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {v!r}")

    @property
    def value(self) -> float:
        """Eq. 2: the equally-weighted sum."""
        return (
            self.accuracy_improvement + self.priority + self.invocation_probability
        )


def utility_value(ai: float, pr: float, ip: float) -> float:
    """Eq. 2 as a plain function."""
    return UtilityComponents(ai, pr, ip).value


def components_for(
    family: ModelFamily,
    kept_variant: ModelVariant,
    priority: float,
    invocation_probability: float,
) -> UtilityComponents:
    """Build the components for one kept-alive model during a peak."""
    return UtilityComponents(
        accuracy_improvement=family.accuracy_improvement(kept_variant),
        priority=priority,
        invocation_probability=invocation_probability,
    )
