"""Per-table / per-figure reproduction harness.

One module per paper element (see DESIGN.md §4 for the experiment
index). All experiments share :mod:`repro.experiments.runner`'s
orchestration: a trace, N model-to-function assignments sampled per run
(the paper's 1000 runs use a different assignment each), one simulation
per (policy, assignment), aggregated with
:func:`repro.runtime.metrics.aggregate_results`.

Benches (``benchmarks/``) call these functions at reduced scale; the
functions themselves accept the paper-scale parameters.
"""

from repro.experiments.assignments import sample_assignment, sample_assignments
from repro.experiments.runner import (
    ExperimentConfig,
    default_trace,
    run_policies,
    run_policy,
)
from repro.experiments.table1 import table1_characterization
from repro.experiments.motivation import figure1_histograms, figure2_drift
from repro.experiments.peaks import PeakStrategyRow, tables2_3_peak_strategies
from repro.experiments.tradeoff import figure5_tradeoff
from repro.experiments.headline import figure6_headline
from repro.experiments.memory import figure4_and_7_memory
from repro.experiments.integration import figure8_integration
from repro.experiments.overhead import figure9_overhead
from repro.experiments.sensitivity import (
    figure10_threshold_schemes,
    figure11_memory_thresholds,
    figure12_local_windows,
    keep_alive_duration_sweep,
)
from repro.experiments.ablations import (
    peak_detector_ablation,
    scalability_study,
    utility_component_ablation,
)
from repro.experiments.capacity import memory_capacity_study
from repro.experiments.pareto import pareto_frontier, pulse_configuration_sweep
from repro.experiments.report import generate_report
from repro.experiments.resilience import ResiliencePoint, resilience_sweep
from repro.experiments.variance import paired_deltas, variance_report

__all__ = [
    "generate_report",
    "memory_capacity_study",
    "ResiliencePoint",
    "resilience_sweep",
    "paired_deltas",
    "pareto_frontier",
    "pulse_configuration_sweep",
    "variance_report",
    "peak_detector_ablation",
    "scalability_study",
    "utility_component_ablation",
    "ExperimentConfig",
    "PeakStrategyRow",
    "default_trace",
    "figure1_histograms",
    "figure2_drift",
    "figure4_and_7_memory",
    "figure5_tradeoff",
    "figure6_headline",
    "figure8_integration",
    "figure9_overhead",
    "figure10_threshold_schemes",
    "figure11_memory_thresholds",
    "figure12_local_windows",
    "keep_alive_duration_sweep",
    "run_policies",
    "run_policy",
    "sample_assignment",
    "sample_assignments",
    "table1_characterization",
    "tables2_3_peak_strategies",
]
