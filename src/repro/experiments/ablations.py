"""Design-choice ablations (DESIGN.md §8).

Three studies beyond the paper's figures, each isolating one design
decision DESIGN.md calls out:

- :func:`utility_component_ablation` — drop each Eq. 2 term (Ai / Pr /
  Ip) from the downgrade utility. The priority term's job is fairness:
  without it, the same (low-Ai) models absorb every downgrade.
- :func:`peak_detector_ablation` — Algorithm 1's prior-memory rules vs
  the naive previous-minute rule, on a trace dominated by day-phase
  (nocturnal/diurnal) functions whose resumptions the naive rule
  misclassifies as peaks.
- :func:`scalability_study` — per-decision overhead as the number of
  concurrent functions grows (§V: "PULSE's overhead remains minimal even
  when handling a large number of concurrent functions").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial

import numpy as np

from repro.core.pulse import PulseConfig, PulsePolicy
from repro.core.utility import UtilityWeights
from repro.experiments.assignments import sample_assignment
from repro.experiments.runner import ExperimentConfig, default_trace, run_policies
from repro.runtime.metrics import aggregate_results
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.traces.schema import Trace
from repro.traces.synthetic import (
    FunctionArchetype,
    SyntheticTraceConfig,
    generate_trace,
)

__all__ = [
    "AblationRow",
    "peak_detector_ablation",
    "scalability_study",
    "utility_component_ablation",
]


@dataclass(frozen=True)
class AblationRow:
    """One configuration's outcome."""

    label: str
    keepalive_cost_usd: float
    service_time_s: float
    accuracy_percent: float
    warm_fraction: float
    extra: dict[str, float]


def _row(label: str, agg: dict[str, float], **extra: float) -> AblationRow:
    return AblationRow(
        label=label,
        keepalive_cost_usd=agg["keepalive_cost_usd"],
        service_time_s=agg["service_time_s"],
        accuracy_percent=agg["accuracy_percent"],
        warm_fraction=agg["warm_fraction"],
        extra=dict(extra),
    )


def utility_component_ablation(
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
) -> list[AblationRow]:
    """PULSE with each Eq. 2 component removed, plus full PULSE.

    Also reports downgrade-concentration: the fraction of all downgrades
    absorbed by the single most-downgraded function (higher = less fair;
    the priority term exists to push this down).
    """
    config = config or ExperimentConfig()
    trace = trace if trace is not None else default_trace(config)
    variants = {
        "full (Ai+Pr+Ip)": UtilityWeights(),
        "no Ai": UtilityWeights(accuracy_improvement=0.0),
        "no Pr": UtilityWeights(priority=0.0),
        "no Ip": UtilityWeights(invocation_probability=0.0),
    }
    rows: list[AblationRow] = []
    for label, weights in variants.items():
        factory = partial(PulsePolicy, PulseConfig(utility_weights=weights))
        results = run_policies(trace, {label: factory}, config)
        agg = aggregate_results(results[label])
        # Measure concentration on one representative run.
        policy = factory()
        Simulation(
            trace,
            sample_assignment(trace.n_functions, seed=config.seed),
            policy,
            config.sim,
        ).run()
        counts = policy.priority_counts
        total = counts.sum()
        concentration = float(counts.max() / total) if total else 0.0
        rows.append(_row(label, agg, downgrade_concentration=concentration))
    return rows


def dayphase_trace(horizon_minutes: int, seed: int = 2024) -> Trace:
    """A trace dominated by nocturnal/diurnal functions (long daily
    inactivity), the stress case for Algorithm 1's prior rules."""
    mix = (
        FunctionArchetype("nocturnal", {"period": 5}),
        FunctionArchetype("nocturnal", {"period": 8}),
        FunctionArchetype("nocturnal", {"rate": 0.3}),
        FunctionArchetype("diurnal", {"period": 4}),
        FunctionArchetype("diurnal", {"period": 9}),
        FunctionArchetype("diurnal", {"rate": 0.3}),
        FunctionArchetype("periodic", {"period": 6, "jitter": 0}),
        FunctionArchetype("sparse", {"mean_gap": 300.0}),
    )
    return generate_trace(
        SyntheticTraceConfig(
            horizon_minutes=horizon_minutes, functions=mix, n_peaks=3, seed=seed
        )
    )


def peak_detector_ablation(
    config: ExperimentConfig | None = None,
) -> list[AblationRow]:
    """Algorithm 1 vs the naive previous-minute prior, on the day-phase
    trace. The naive rule flags every morning/evening resumption as a
    peak, shedding droppable keep-alives and hurting warm starts."""
    config = config or ExperimentConfig()
    trace = dayphase_trace(config.horizon_minutes, seed=config.seed)
    rows = []
    for label, rule in (
        ("Algorithm 1", "algorithm1"),
        ("previous-minute", "previous_minute"),
    ):
        factory = partial(PulsePolicy, PulseConfig(prior_rule=rule))
        results = run_policies(trace, {label: factory}, config)
        agg = aggregate_results(results[label])
        policy = factory()
        Simulation(
            trace,
            sample_assignment(trace.n_functions, seed=config.seed),
            policy,
            config.sim,
        ).run()
        rows.append(
            _row(
                label,
                agg,
                peak_minutes=float(policy.n_peak_minutes),
                downgrades=float(policy.n_downgrades),
            )
        )
    return rows


def scalability_study(
    function_counts: tuple[int, ...] = (12, 24, 48, 96),
    horizon_minutes: int = 720,
    seed: int = 2024,
) -> list[AblationRow]:
    """PULSE per-decision overhead as concurrency grows.

    Builds traces with N functions (cycling the default archetype mix)
    and reports mean decision overhead; the claim to verify is that
    overhead per decision stays roughly flat (the greedy loop touches
    only the kept-alive set).
    """
    from repro.traces.synthetic import DEFAULT_FUNCTION_MIX

    rows = []
    for n in function_counts:
        mix = tuple(DEFAULT_FUNCTION_MIX[i % len(DEFAULT_FUNCTION_MIX)] for i in range(n))
        trace = generate_trace(
            SyntheticTraceConfig(
                horizon_minutes=horizon_minutes, functions=mix, seed=seed
            )
        )
        assignment = sample_assignment(n, seed=seed)
        sim = SimulationConfig(measure_overhead=True, record_series=False,
                               track_containers=False)
        result = Simulation(trace, assignment, PulsePolicy(), sim).run()
        rows.append(
            AblationRow(
                label=f"{n} functions",
                keepalive_cost_usd=result.keepalive_cost_usd,
                service_time_s=result.total_service_time_s,
                accuracy_percent=result.mean_accuracy,
                warm_fraction=result.warm_fraction,
                extra={
                    "overhead_per_decision_us": result.overhead_per_decision_s * 1e6,
                    "overhead_over_service": result.overhead_over_service_time,
                    "n_decisions": float(result.n_policy_decisions),
                },
            )
        )
    return rows
