"""Model-to-function assignment sampling.

Each simulation run assigns one model family to each trace function; the
paper performs 1000 runs, "each presenting a unique combination of
model-to-function assignments", and averages the metrics. Sampling is
*balanced*: every family appears either ``floor(n/k)`` or ``ceil(n/k)``
times, so no run degenerates into a single-family workload.
"""

from __future__ import annotations

import numpy as np

from repro.models.variants import ModelFamily
from repro.models.zoo import ModelZoo, default_zoo
from repro.utils.rng import rng_from_seed, spawn_rng
from repro.utils.validation import check_positive_int

__all__ = ["sample_assignment", "sample_assignments"]


def sample_assignment(
    n_functions: int,
    zoo: ModelZoo | None = None,
    seed: int | np.random.Generator | None = None,
) -> dict[int, ModelFamily]:
    """One balanced random family-per-function assignment."""
    check_positive_int("n_functions", n_functions)
    zoo = zoo or default_zoo()
    rng = rng_from_seed(seed)
    families = list(zoo)
    # Balanced multiset of family indices, then a random permutation.
    reps = -(-n_functions // len(families))  # ceil
    pool = np.tile(np.arange(len(families)), reps)[:n_functions]
    rng.shuffle(pool)
    return {fid: families[int(pool[fid])] for fid in range(n_functions)}


def sample_assignments(
    n_functions: int,
    n_runs: int,
    zoo: ModelZoo | None = None,
    seed: int | np.random.Generator | None = None,
) -> list[dict[int, ModelFamily]]:
    """``n_runs`` independent assignments (one per simulation run)."""
    check_positive_int("n_runs", n_runs)
    parent = rng_from_seed(seed)
    return [
        sample_assignment(n_functions, zoo, spawn_rng(parent, i))
        for i in range(n_runs)
    ]
