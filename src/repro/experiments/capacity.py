"""Memory-capacity study (extension grounded in §III-A).

"The memory, a finite resource for serverless providers, is shared
between actual invocations and keep-alive. ... During peak memory
consumption when total memory consumption exceeds available resources,
random functions/models are downgraded, which may result in models with
higher-chance of invocation being downgraded while lower-chance models
are kept alive."

This experiment puts a hard memory capacity on the platform and sweeps
it. Under the fixed policy, bursts blow past the cap and the platform's
*random* pressure valve sheds keep-alives indiscriminately (forced
downgrades → cold starts for exactly the functions about to fire).
PULSE's utility-guided flattening keeps memory below the cap in the
first place, so it suffers far fewer forced downgrades — the
quantitative version of the paper's motivation for unbiased downgrades.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.core.pulse import PulsePolicy
from repro.experiments.runner import ExperimentConfig, default_trace, run_policies
from repro.runtime.metrics import RunResult
from repro.traces.schema import Trace

__all__ = ["CapacityPoint", "memory_capacity_study"]


@dataclass(frozen=True)
class CapacityPoint:
    """Both policies' outcomes at one capacity value."""

    capacity_mb: float
    openwhisk_warm_fraction: float
    pulse_warm_fraction: float
    openwhisk_forced_downgrades: float
    pulse_forced_downgrades: float
    openwhisk_accuracy: float
    pulse_accuracy: float


def _mean(results: list[RunResult], attr: str) -> float:
    return sum(getattr(r, attr) for r in results) / len(results)


def memory_capacity_study(
    capacities_mb: tuple[float, ...] = (6000.0, 9000.0, 12000.0),
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
) -> list[CapacityPoint]:
    """Sweep platform memory capacities; compare OpenWhisk and PULSE."""
    if not capacities_mb:
        raise ValueError("need at least one capacity value")
    config = config or ExperimentConfig()
    trace = trace if trace is not None else default_trace(config)
    points = []
    for cap in capacities_mb:
        if cap <= 0:
            raise ValueError(f"capacity must be positive, got {cap}")
        cfg = replace(
            config,
            sim=replace(
                config.sim, memory_capacity_mb=cap, record_series=False
            ),
        )
        results = run_policies(
            trace, {"OpenWhisk": OpenWhiskPolicy, "PULSE": PulsePolicy}, cfg
        )
        points.append(
            CapacityPoint(
                capacity_mb=cap,
                openwhisk_warm_fraction=_mean(results["OpenWhisk"], "warm_fraction"),
                pulse_warm_fraction=_mean(results["PULSE"], "warm_fraction"),
                openwhisk_forced_downgrades=_mean(
                    results["OpenWhisk"], "n_forced_downgrades"
                ),
                pulse_forced_downgrades=_mean(
                    results["PULSE"], "n_forced_downgrades"
                ),
                openwhisk_accuracy=_mean(results["OpenWhisk"], "mean_accuracy"),
                pulse_accuracy=_mean(results["PULSE"], "mean_accuracy"),
            )
        )
    return points
