"""Durable sweep execution: crash-isolated workers, retries, resume.

The plain sweep runner (:func:`repro.experiments.runner.run_policies`)
executes runs in-process or in a shared pool — fine until a worker hangs,
is OOM-killed, or the sweep process itself dies, at which point every
completed run is lost. This module trades a little throughput for
survivability:

- **one OS process per run attempt** — a SIGKILL, a segfault or an
  unpicklable crash takes down exactly one attempt, never the pool;
- **per-attempt wall-clock timeouts** — a hung worker is killed and
  retried instead of wedging the sweep;
- **bounded retries with seeded jittered backoff** — transient failures
  are re-attempted (from the run's last engine checkpoint when one
  exists) a fixed number of times, then recorded as failed;
- **a :class:`~repro.experiments.manifest.RunManifest`** rewritten
  atomically at every transition, so the sweep can be resumed after any
  interruption, skipping ``done`` runs and restarting the rest from
  their checkpoints.

Workers write their artifact — the run's headline summary as canonical
JSON, minus the nondeterministic ``wall_clock_s`` — atomically, so a
``done`` run's artifact is always complete, and a resumed sweep's
artifacts are byte-identical to an uninterrupted one (the chaos tests
pin this).

Deterministic chaos hooks (``chaos="kill:N"`` / ``"hang:N"``) make the
failure path testable: the worker SIGKILLs itself (or hangs) right after
its N-th engine checkpoint, on the first attempt of every run only, so a
chaos sweep must exercise kill -> retry -> resume-from-checkpoint on
each run and still converge to clean-run artifacts.
"""

from __future__ import annotations

import json
import os
import signal
import time
import zlib
from collections import deque
from dataclasses import dataclass, replace
from multiprocessing import Process
from pathlib import Path
from typing import Any

from repro.experiments.manifest import RunManifest, RunRecord, config_hash
from repro.experiments.runner import ExperimentConfig
from repro.experiments.assignments import sample_assignments
from repro.models.zoo import ModelZoo, default_zoo
from repro.obs.session import ObservabilityConfig, ObsSession
from repro.runtime.checkpoint import CheckpointConfig
from repro.runtime.simulator import Simulation
from repro.traces.schema import IngestReport, Trace
from repro.utils.atomicio import atomic_write_json
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive_int

__all__ = ["DurableSweepConfig", "SweepResult", "run_durable_sweep"]

#: Fields of RunResult.summary() that measure the machine rather than the
#: simulated system; excluded from artifacts so clean/resumed/retried
#: runs produce byte-identical files.
_NONDETERMINISTIC_FIELDS = ("wall_clock_s",)


@dataclass(frozen=True)
class DurableSweepConfig:
    """Durability knobs for one sweep (orthogonal to ``ExperimentConfig``).

    ``timeout_s`` — per-attempt wall-clock budget (``None`` disables).
    ``max_retries`` — extra attempts after the first, per run.
    ``backoff_s`` — base of the exponential retry backoff; the delay for
    attempt *k* is ``backoff_s * 2**(k-1)``, jittered up to +50 % by a
    per-run RNG seeded from ``backoff_seed`` (deterministic, but
    decorrelated across runs so retries do not stampede).
    ``checkpoint_every`` — engine checkpoint cadence in trace minutes.
    ``chaos`` — ``None``, ``"kill:N"`` or ``"hang:N"``: first-attempt
    fault injection after the N-th checkpoint (tests/CI only).
    """

    timeout_s: float | None = None
    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_seed: int = 0
    checkpoint_every: int = 240
    poll_interval_s: float = 0.02
    chaos: str | None = None

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        check_positive_int("checkpoint_every", self.checkpoint_every)
        if self.chaos is not None:
            _parse_chaos(self.chaos)  # validate eagerly


def _parse_chaos(spec: str) -> tuple[str, int]:
    kind, sep, arg = spec.partition(":")
    if kind not in ("kill", "hang") or not sep or not arg.isdigit() or int(arg) < 1:
        raise ValueError(
            f"chaos spec must be 'kill:N' or 'hang:N' (N >= 1), got {spec!r}"
        )
    return kind, int(arg)


@dataclass
class SweepResult:
    """What a durable sweep hands back: the manifest plus loaded artifacts.

    ``summaries[policy][run_index]`` is the run's artifact dict, or
    ``None`` for a run that exhausted its retries. ``ok`` is the sweep's
    exit health — callers (the CLI) turn ``not ok`` into a non-zero exit.
    """

    manifest: RunManifest
    summaries: dict[str, list[dict[str, Any] | None]]
    obs: ObsSession

    @property
    def ok(self) -> bool:
        return self.manifest.n_failed == 0


# -- worker side -------------------------------------------------------------

def _chaos_hook(spec: str):
    """An on_snapshot callback that injects the configured fault."""
    kind, after = _parse_chaos(spec)
    seen = 0

    def hook(_state) -> None:
        nonlocal seen
        seen += 1
        if seen < after:
            return
        if kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        while True:  # hang: wedge until the parent's timeout kills us
            time.sleep(3600)

    return hook


def _durable_worker(payload: dict[str, Any]) -> None:
    """One run attempt, in its own process.

    Resumes from the checkpoint file when one exists, checkpoints
    periodically, writes the artifact atomically, and converts any
    exception into an error sidecar + non-zero exit. The parent only
    ever sees an exit code and files — nothing here can corrupt it.
    """
    from repro.api import make_policy, policy_spec

    artifact_path = Path(payload["artifact_path"])
    error_path = Path(payload["error_path"])
    try:
        trace: Trace = payload["trace"]
        policy_name: str = payload["policy"]
        cfg = payload["sim"]
        spec = policy_spec(policy_name)
        if payload["honor_policy_window"] and (
            cfg.keep_alive_window != spec.keep_alive_window
        ):
            cfg = replace(cfg, keep_alive_window=spec.keep_alive_window)
        policy = make_policy(policy_name, resilient=payload["resilient"])

        ckpt_path = Path(payload["checkpoint_path"])
        chaos = payload["chaos"] if payload["attempt"] == 1 else None
        checkpoint: CheckpointConfig | None = CheckpointConfig(
            path=ckpt_path,
            every_minutes=payload["checkpoint_every"],
            on_snapshot=_chaos_hook(chaos) if chaos else None,
        )
        resume_from = ckpt_path if ckpt_path.exists() else None
        if payload["engine"] == "fleet":
            # The fleet kernel has no checkpoint/resume; its runs are fast
            # enough that a retried attempt simply restarts from minute 0.
            checkpoint = None
            resume_from = None

        result = Simulation(trace, payload["assignment"], policy, cfg).run(
            payload["engine"],
            shards=payload.get("shards", 1),
            checkpoint=checkpoint,
            resume_from=resume_from,
        )
        summary = {
            k: v
            for k, v in result.summary().items()
            if k not in _NONDETERMINISTIC_FIELDS
        }
        summary["run_id"] = payload["run_id"]
        summary["run_index"] = payload["run_index"]
        summary["n_checkpoints"] = result.n_checkpoints
        atomic_write_json(artifact_path, summary)
        error_path.unlink(missing_ok=True)  # stale sidecar from a failed attempt
    except Exception as exc:  # noqa: BLE001 - crash isolation boundary
        import traceback as tb

        atomic_write_json(
            error_path,
            {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": "".join(
                    tb.format_exception(type(exc), exc, exc.__traceback__)
                ),
            },
        )
        raise SystemExit(1)


# -- parent side -------------------------------------------------------------

def _slug(run_id: str) -> str:
    return run_id.replace("/", "-")


def _retry_delay(cfg: DurableSweepConfig, run_id: str, attempt: int) -> float:
    """Deterministic jittered exponential backoff for one run's attempt."""
    rng = rng_from_seed(cfg.backoff_seed + zlib.crc32(run_id.encode()))
    base = cfg.backoff_s * (2 ** max(0, attempt - 1))
    return base * (1.0 + 0.5 * float(rng.random()))


def run_durable_sweep(
    trace: Trace,
    policies: list[str],
    config: ExperimentConfig,
    *,
    out_dir: str | Path,
    durable: DurableSweepConfig | None = None,
    resume: RunManifest | None = None,
    zoo: ModelZoo | None = None,
    ingest: IngestReport | None = None,
    resilient: bool = False,
    sweep_config_extra: dict[str, Any] | None = None,
) -> SweepResult:
    """Run (or resume) a durable multi-policy sweep under ``out_dir``.

    Fresh sweeps create ``out_dir/manifest.json``; ``resume`` takes a
    loaded manifest instead, verifies the trace/config content hashes,
    skips ``done`` runs and drives the rest (from their checkpoints where
    they left one). Returns a :class:`SweepResult`; inspect ``.ok`` — a
    sweep with failed runs completes rather than raising.
    """
    durable = durable or DurableSweepConfig()
    out_dir = Path(out_dir)
    runs_dir = out_dir / "runs"
    ckpt_dir = out_dir / "checkpoints"
    runs_dir.mkdir(parents=True, exist_ok=True)
    ckpt_dir.mkdir(parents=True, exist_ok=True)

    sweep_config: dict[str, Any] = {
        "policies": list(policies),
        "n_runs": config.n_runs,
        "horizon_minutes": config.horizon_minutes,
        "seed": config.seed,
        "engine": config.engine,
        "shards": config.shards,
        "sim": repr(config.sim),
        "resilient": resilient,
        **(sweep_config_extra or {}),
    }
    if resume is None:
        manifest = RunManifest.create(
            sweep_config,
            trace,
            policies,
            config.n_runs,
            ingest=ingest.as_dict() if ingest is not None else None,
        )
        manifest.save(out_dir / "manifest.json")
    else:
        manifest = resume
        manifest.verify_trace(trace)
        if manifest.config_sha256 != config_hash(sweep_config):
            raise ValueError(
                "sweep config mismatch: the manifest was created with a "
                "different policy set / run count / engine / sim config; "
                "resume with the original parameters"
            )
        if manifest.path is None:
            manifest.path = out_dir / "manifest.json"

    zoo = zoo or default_zoo()
    assignments = sample_assignments(
        trace.n_functions, config.n_runs, zoo, seed=config.seed
    )

    # Sweep-level telemetry: executor counters, separate from each run's
    # own (in-worker) session.
    obs = ObsSession(ObservabilityConfig(spans=False, decisions=False))
    retries_c = obs.metrics.counter(
        "sweep_retries_total", "run attempts beyond the first"
    )
    timeouts_c = obs.metrics.counter(
        "sweep_timeouts_total", "attempts killed by the wall-clock timeout"
    )
    failures_c = obs.metrics.counter(
        "sweep_run_failures_total", "runs that exhausted their retries"
    )
    done_c = obs.metrics.counter("sweep_runs_done_total", "runs completed")

    def paths_for(rec: RunRecord) -> tuple[Path, Path, Path]:
        slug = _slug(rec.run_id)
        return (
            runs_dir / f"{slug}.json",
            runs_dir / f"{slug}.error.json",
            ckpt_dir / f"{slug}.ckpt",
        )

    def spawn(rec: RunRecord) -> Process:
        artifact, error, ckpt = paths_for(rec)
        rec.attempts += 1
        rec.status = "running"
        manifest.save()
        payload = {
            "run_id": rec.run_id,
            "run_index": rec.run_index,
            "policy": rec.policy,
            "trace": trace,
            "assignment": assignments[rec.run_index],
            "sim": config.sim,
            "engine": config.engine,
            "shards": config.shards,
            "resilient": resilient,
            "honor_policy_window": True,
            "artifact_path": str(artifact),
            "error_path": str(error),
            "checkpoint_path": str(ckpt),
            "checkpoint_every": durable.checkpoint_every,
            "chaos": durable.chaos,
            "attempt": rec.attempts,
        }
        proc = Process(target=_durable_worker, args=(payload,), daemon=True)
        proc.start()
        return proc

    def settle(rec: RunRecord, kind: str) -> None:
        """A non-zero attempt outcome: record, then retry or fail."""
        artifact, error, ckpt = paths_for(rec)
        detail: dict[str, str] = {"kind": kind}
        if error.exists():
            try:
                with open(error) as fh:
                    err = json.load(fh)
                detail = {
                    "kind": kind,
                    "type": err.get("type", ""),
                    "message": err.get("message", ""),
                }
            # repro: lint-ok[RPR006] a missing sidecar means the worker
            # died before writing one; the generic `kind` detail below
            # still records the failure (torn sidecars can't happen: atomic)
            except (OSError, json.JSONDecodeError):
                pass
        rec.error = detail
        if kind == "timeout":
            manifest.n_timeouts += 1
            timeouts_c.inc()
        if rec.attempts <= durable.max_retries:
            manifest.n_retries += 1
            retries_c.inc()
            rec.status = "pending"
            retry_at[rec.run_id] = (
                time.monotonic() + _retry_delay(durable, rec.run_id, rec.attempts)
            )
            waiting.append(rec)
        else:
            rec.status = "failed"
            failures_c.inc()
        manifest.save()

    todo = manifest.incomplete()
    # Runs already marked running belong to a dead executor: their
    # processes are gone, only their checkpoints remain — restart them.
    for rec in todo:
        if rec.status == "running":
            rec.status = "pending"
    manifest.save()

    waiting: deque[RunRecord] = deque(todo)
    retry_at: dict[str, float] = {}
    active: dict[str, tuple[Process, RunRecord, float]] = {}
    try:
        while waiting or active:
            # Fill free slots with runs whose backoff has elapsed.
            now = time.monotonic()
            for _ in range(len(waiting)):
                if len(active) >= config.n_jobs:
                    break
                rec = waiting.popleft()
                if retry_at.get(rec.run_id, 0.0) > now:
                    waiting.append(rec)
                    continue
                active[rec.run_id] = (spawn(rec), rec, now)

            time.sleep(durable.poll_interval_s)
            now = time.monotonic()
            for run_id in list(active):
                proc, rec, started = active[run_id]
                if proc.is_alive():
                    if (
                        durable.timeout_s is not None
                        and now - started > durable.timeout_s
                    ):
                        proc.kill()
                        proc.join()
                        proc.close()
                        del active[run_id]
                        settle(rec, "timeout")
                    continue
                proc.join()
                code = proc.exitcode
                proc.close()
                del active[run_id]
                artifact, _error, _ckpt = paths_for(rec)
                if code == 0 and artifact.exists():
                    rec.status = "done"
                    rec.artifact = str(artifact.relative_to(out_dir))
                    ckpt = paths_for(rec)[2]
                    rec.checkpoint = (
                        str(ckpt.relative_to(out_dir)) if ckpt.exists() else None
                    )
                    rec.error = None
                    done_c.inc()
                    manifest.save()
                else:
                    settle(rec, "exception" if code == 1 else "killed")
    finally:
        for proc, rec, _started in active.values():
            proc.kill()
            proc.join()
            # Killed mid-flight by an outer interrupt: the manifest keeps
            # them "running"; the next resume restarts them.
        manifest.save()

    summaries: dict[str, list[dict[str, Any] | None]] = {
        p: [None] * config.n_runs for p in policies
    }
    for rec in manifest.runs.values():
        if rec.status == "done" and rec.artifact is not None:
            with open(out_dir / rec.artifact) as fh:
                summaries[rec.policy][rec.run_index] = json.load(fh)
    return SweepResult(manifest=manifest, summaries=summaries, obs=obs)
