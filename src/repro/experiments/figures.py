"""Render the paper's figures as SVG files.

Each ``render_*`` function takes the corresponding experiment's output
and writes one SVG per figure panel;
:func:`render_all` runs the needed experiments at the given scale and
produces the full set — ``python -m repro figures out/`` from the CLI.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.headline import HeadlineResult, figure6_headline
from repro.experiments.memory import MemorySeriesResult, figure4_and_7_memory
from repro.experiments.motivation import figure1_histograms, figure2_drift
from repro.experiments.runner import ExperimentConfig, default_trace
from repro.experiments.sensitivity import SweepPoint, figure11_memory_thresholds
from repro.experiments.tradeoff import TradeoffPoint, figure5_tradeoff
from repro.traces.schema import Trace
from repro.utils.svgplot import bar_chart, line_chart, save, scatter_chart

__all__ = ["render_all"]


def _render_motivation(trace: Trace, outdir: Path) -> list[Path]:
    paths = []
    hists = figure1_histograms(trace)
    paths.append(
        save(
            line_chart(
                hists,
                title="Fig 1: inter-arrival histograms (window minutes)",
                xlabel="minute of the keep-alive window",
                ylabel="% of invocations",
            ),
            outdir / "fig1_interarrival_histograms.svg",
        )
    )
    drift = figure2_drift(trace)
    paths.append(
        save(
            line_chart(
                drift,
                title="Fig 2: one function across trace periods",
                xlabel="minute of the keep-alive window",
                ylabel="% of invocations",
            ),
            outdir / "fig2_interarrival_drift.svg",
        )
    )
    return paths


def _render_memory(
    mem: dict[str, MemorySeriesResult], outdir: Path
) -> list[Path]:
    paths = []
    paths.append(
        save(
            line_chart(
                {
                    "OpenWhisk fixed": mem["openwhisk"].memory_series_mb,
                    "individual-only": mem["individual_only"].memory_series_mb,
                },
                title="Fig 4: individual optimization lowers memory, peaks persist",
                xlabel="minute",
                ylabel="keep-alive memory (MB)",
            ),
            outdir / "fig4_individual_memory.svg",
        )
    )
    paths.append(
        save(
            line_chart(
                {
                    "OpenWhisk fixed": mem["openwhisk"].memory_series_mb,
                    "PULSE": mem["pulse"].memory_series_mb,
                },
                title="Fig 7: PULSE smooths keep-alive memory",
                xlabel="minute",
                ylabel="keep-alive memory (MB)",
            ),
            outdir / "fig7_pulse_memory.svg",
        )
    )
    return paths


def _render_tradeoff(points: list[TradeoffPoint], outdir: Path) -> Path:
    return save(
        scatter_chart(
            {
                p.label: (p.keepalive_cost_usd, p.accuracy_percent)
                for p in points
            },
            title="Fig 5: accuracy vs keep-alive cost",
            xlabel="keep-alive cost ($)",
            ylabel="accuracy (%)",
        ),
        outdir / "fig5_tradeoff.svg",
    )


def _render_headline(res: HeadlineResult, outdir: Path) -> list[Path]:
    paths = [
        save(
            bar_chart(
                res.improvements,
                title="Fig 6a: % improvement of PULSE over OpenWhisk",
                ylabel="% improvement",
            ),
            outdir / "fig6a_improvements.svg",
        ),
        save(
            line_chart(
                {
                    "OpenWhisk": res.openwhisk_cost_error,
                    "PULSE": res.pulse_cost_error,
                },
                title="Fig 6b: keep-alive cost error vs ideal",
                xlabel="minute",
                ylabel="error (%)",
            ),
            outdir / "fig6b_cost_error.svg",
        ),
    ]
    return paths


def _render_sensitivity(points: list[SweepPoint], outdir: Path) -> Path:
    return save(
        bar_chart(
            {p.label: p.keepalive_cost for p in points},
            title="Fig 11: cost improvement across memory thresholds",
            ylabel="% improvement over OpenWhisk",
        ),
        outdir / "fig11_memory_thresholds.svg",
    )


def render_all(
    outdir: str | Path,
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
) -> list[Path]:
    """Render the SVG figure set; returns the written paths."""
    config = config or ExperimentConfig()
    trace = trace if trace is not None else default_trace(config)
    outdir = Path(outdir)
    paths: list[Path] = []
    paths += _render_motivation(trace, outdir)
    paths += _render_memory(figure4_and_7_memory(config, trace), outdir)
    paths.append(_render_tradeoff(figure5_tradeoff(config, trace), outdir))
    paths += _render_headline(figure6_headline(config, trace), outdir)
    paths.append(
        _render_sensitivity(figure11_memory_thresholds(config, trace), outdir)
    )
    return paths
