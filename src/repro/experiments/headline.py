"""Figure 6 — PULSE vs the OpenWhisk fixed 10-minute keep-alive policy.

Panel (a): percentage improvement of PULSE over OpenWhisk on accuracy,
keep-alive cost and service time, averaged over N runs with random
model-to-function assignments (paper: +39.5 % cost, +8.8 % service time,
−0.6 % accuracy).

Panel (b): per-minute keep-alive cost deviation from the *ideal* (a
container alive exactly during invocation minutes) for both policies —
OpenWhisk overshoots the ideal persistently, PULSE tracks it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.core.pulse import PulsePolicy
from repro.experiments.runner import ExperimentConfig, default_trace, run_policies
from repro.runtime.metrics import RunResult, aggregate_results, percent_improvement
from repro.traces.schema import Trace

__all__ = ["HeadlineResult", "figure6_headline"]


@dataclass(frozen=True)
class HeadlineResult:
    """Everything Figure 6 plots."""

    improvements: dict[str, float]  # panel (a): % improvement over OpenWhisk
    pulse_cost_error: np.ndarray  # panel (b): per-minute % error vs ideal
    openwhisk_cost_error: np.ndarray
    pulse_aggregate: dict[str, float]
    openwhisk_aggregate: dict[str, float]
    pulse_runs: list[RunResult]
    openwhisk_runs: list[RunResult]


def figure6_headline(
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
) -> HeadlineResult:
    """Run the headline comparison; returns improvements and error series."""
    config = config or ExperimentConfig()
    trace = trace if trace is not None else default_trace(config)
    results = run_policies(
        trace,
        {"OpenWhisk": OpenWhiskPolicy, "PULSE": PulsePolicy},
        config,
    )
    ow = aggregate_results(results["OpenWhisk"])
    pu = aggregate_results(results["PULSE"])
    improvements = {
        "accuracy": percent_improvement(
            ow["accuracy_percent"], pu["accuracy_percent"], higher_is_better=True
        ),
        "keepalive_cost": percent_improvement(
            ow["keepalive_cost_usd"], pu["keepalive_cost_usd"], higher_is_better=False
        ),
        "service_time": percent_improvement(
            ow["service_time_s"], pu["service_time_s"], higher_is_better=False
        ),
    }
    cm = config.sim.cost_model
    return HeadlineResult(
        improvements=improvements,
        pulse_cost_error=results["PULSE"][0].cost_error_series(cm),
        openwhisk_cost_error=results["OpenWhisk"][0].cost_error_series(cm),
        pulse_aggregate=pu,
        openwhisk_aggregate=ow,
        pulse_runs=results["PULSE"],
        openwhisk_runs=results["OpenWhisk"],
    )
