"""Figure 8 — integrating PULSE into Wild and IceBreaker.

For each base technique, runs the technique standalone (variant-unaware:
highest quality during its predicted windows) and with PULSE layered on
top (:class:`~repro.sota.integration.PulseIntegratedPolicy`), and reports
the percentage change in accuracy, keep-alive cost and service time.

Paper shapes: Wild+PULSE slashes keep-alive cost (−99 %) at the price of
service time; IceBreaker+PULSE improves both cost (−14 %) and service
time (−7 %); both lose well under 1 % accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial

from repro.experiments.runner import ExperimentConfig, default_trace, run_policies
from repro.runtime.metrics import aggregate_results, percent_improvement
from repro.runtime.simulator import SimulationConfig
from repro.sota.icebreaker import IceBreakerPolicy
from repro.sota.integration import PulseIntegratedPolicy
from repro.sota.wild import WildPolicy
from repro.traces.schema import Trace

__all__ = ["IntegrationResult", "figure8_integration"]

#: Schedule capacity large enough for Wild's 99th-percentile keep-alives.
INTEGRATION_WINDOW = 240


def _wild_pulse() -> PulseIntegratedPolicy:
    return PulseIntegratedPolicy(WildPolicy())


def _icebreaker_pulse() -> PulseIntegratedPolicy:
    return PulseIntegratedPolicy(IceBreakerPolicy())


@dataclass(frozen=True)
class IntegrationResult:
    """Percent improvements of <technique>+PULSE over <technique>."""

    technique: str
    accuracy: float
    keepalive_cost: float
    service_time: float
    base_aggregate: dict[str, float]
    integrated_aggregate: dict[str, float]


def figure8_integration(
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
) -> list[IntegrationResult]:
    """Both integrations' improvement triplets."""
    config = config or ExperimentConfig()
    sim = replace(config.sim, keep_alive_window=INTEGRATION_WINDOW)
    config = replace(config, sim=sim)
    trace = trace if trace is not None else default_trace(config)
    results = run_policies(
        trace,
        {
            "Wild": WildPolicy,
            "Wild+PULSE": _wild_pulse,
            "IceBreaker": IceBreakerPolicy,
            "IceBreaker+PULSE": _icebreaker_pulse,
        },
        config,
    )
    out = []
    for technique in ("Wild", "IceBreaker"):
        base = aggregate_results(results[technique])
        integ = aggregate_results(results[f"{technique}+PULSE"])
        out.append(
            IntegrationResult(
                technique=technique,
                accuracy=percent_improvement(
                    base["accuracy_percent"],
                    integ["accuracy_percent"],
                    higher_is_better=True,
                ),
                keepalive_cost=percent_improvement(
                    base["keepalive_cost_usd"],
                    integ["keepalive_cost_usd"],
                    higher_is_better=False,
                ),
                service_time=percent_improvement(
                    base["service_time_s"],
                    integ["service_time_s"],
                    higher_is_better=False,
                ),
                base_aggregate=base,
                integrated_aggregate=integ,
            )
        )
    return out
