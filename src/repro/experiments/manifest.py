"""Sweep run manifests: the durable record of a multi-run experiment.

A :class:`RunManifest` is one JSON file per sweep that names every run,
its status (``pending``/``running``/``done``/``failed``), attempt count,
artifact and checkpoint paths, and the content hashes of the trace and
sweep configuration it was created against. It is rewritten atomically
after every state transition, so at any instant — including the instant
a SIGKILL lands — the file on disk is a complete, parseable description
of exactly which runs finished.

That makes resume trivial and safe: ``repro sweep --resume MANIFEST``
reloads the manifest, rebuilds the trace from the recorded source,
verifies the hashes (a resume against a different trace or sweep config
is refused, not silently blended), skips ``done`` runs and restarts the
rest — from their last checkpoint when one exists.

Paths inside the manifest are relative to the manifest's directory, so a
sweep output directory can be archived or moved wholesale.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.traces.schema import Trace
from repro.utils.atomicio import atomic_write_json, sha256_bytes

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "RunRecord",
    "config_hash",
    "trace_hash",
]

MANIFEST_SCHEMA_VERSION = 1

#: Legal run states and the transitions the executor drives:
#: pending -> running -> done | failed; failed -> running (retry/resume).
RUN_STATUSES = ("pending", "running", "done", "failed")


def trace_hash(trace: Trace) -> str:
    """Content hash of a trace: the count matrix plus the function names
    (two traces with equal counts but different functions differ)."""
    names = "\x00".join(f.name for f in trace.functions)
    return sha256_bytes(
        trace.counts.tobytes()
        + names.encode()
        + str(trace.counts.shape).encode()
    )


def config_hash(config: dict[str, Any]) -> str:
    """Content hash of the sweep configuration (canonical JSON)."""
    return sha256_bytes(
        json.dumps(config, sort_keys=True, default=str).encode()
    )


@dataclass
class RunRecord:
    """One run's durable state inside the manifest."""

    run_id: str  # "<policy>/<run_index>"
    policy: str
    run_index: int
    status: str = "pending"
    attempts: int = 0
    artifact: str | None = None  # manifest-relative path of the summary JSON
    checkpoint: str | None = None  # manifest-relative path, when one exists
    error: dict[str, str] | None = None  # {kind, type, message} of last failure

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RunRecord":
        return cls(**d)


@dataclass
class RunManifest:
    """The sweep's durable ledger (see module docstring)."""

    sweep_config: dict[str, Any]
    trace_sha256: str
    config_sha256: str
    runs: dict[str, RunRecord] = field(default_factory=dict)
    ingest: dict[str, Any] | None = None  # IngestReport.as_dict() when CSV-fed
    #: Executor totals, updated alongside run transitions.
    n_retries: int = 0
    n_timeouts: int = 0
    schema_version: int = MANIFEST_SCHEMA_VERSION
    #: Where this manifest lives on disk (set by save/load; not serialized).
    path: Path | None = field(default=None, compare=False)

    # -- construction --------------------------------------------------------
    @classmethod
    def create(
        cls,
        sweep_config: dict[str, Any],
        trace: Trace,
        policies: list[str],
        n_runs: int,
        ingest: dict[str, Any] | None = None,
    ) -> "RunManifest":
        manifest = cls(
            sweep_config=dict(sweep_config),
            trace_sha256=trace_hash(trace),
            config_sha256=config_hash(sweep_config),
            ingest=ingest,
        )
        for policy in policies:
            for idx in range(n_runs):
                rec = RunRecord(
                    run_id=f"{policy}/{idx:03d}", policy=policy, run_index=idx
                )
                manifest.runs[rec.run_id] = rec
        return manifest

    # -- queries -------------------------------------------------------------
    @property
    def n_done(self) -> int:
        return sum(1 for r in self.runs.values() if r.status == "done")

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.runs.values() if r.status == "failed")

    def incomplete(self) -> list[RunRecord]:
        """Runs a (re)started executor still has to drive, in id order."""
        return sorted(
            (r for r in self.runs.values() if r.status != "done"),
            key=lambda r: r.run_id,
        )

    def summary(self) -> dict[str, Any]:
        """Compact human-readable status (CLI output, test assertions)."""
        return {
            "runs": len(self.runs),
            "done": self.n_done,
            "failed": self.n_failed,
            "retries": self.n_retries,
            "timeouts": self.n_timeouts,
            "quarantined": (self.ingest or {}).get("n_quarantined", 0),
        }

    def verify_trace(self, trace: Trace) -> None:
        """Refuse to resume against a trace other than the original."""
        got = trace_hash(trace)
        if got != self.trace_sha256:
            raise ValueError(
                "trace content hash mismatch: manifest was created for "
                f"{self.trace_sha256[:12]}..., resume supplied {got[:12]}..."
            )

    # -- persistence ---------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "sweep_config": self.sweep_config,
            "trace_sha256": self.trace_sha256,
            "config_sha256": self.config_sha256,
            "ingest": self.ingest,
            "n_retries": self.n_retries,
            "n_timeouts": self.n_timeouts,
            "runs": {rid: r.as_dict() for rid, r in sorted(self.runs.items())},
        }

    def save(self, path: str | Path | None = None) -> Path:
        """Atomically (re)write the manifest; remembers ``path`` so later
        transitions can just call ``save()``."""
        if path is not None:
            self.path = Path(path)
        if self.path is None:
            raise ValueError("manifest has no path; pass one to save()")
        return atomic_write_json(self.path, self.as_dict())

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        path = Path(path)
        with open(path) as fh:
            d = json.load(fh)
        version = d.get("schema_version")
        if version != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: manifest schema v{version} is not readable by "
                f"this build (expects v{MANIFEST_SCHEMA_VERSION})"
            )
        manifest = cls(
            sweep_config=d["sweep_config"],
            trace_sha256=d["trace_sha256"],
            config_sha256=d["config_sha256"],
            ingest=d.get("ingest"),
            n_retries=d.get("n_retries", 0),
            n_timeouts=d.get("n_timeouts", 0),
            runs={
                rid: RunRecord.from_dict(rd) for rid, rd in d["runs"].items()
            },
            path=path,
        )
        return manifest
