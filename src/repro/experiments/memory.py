"""Figures 4 & 7 — keep-alive memory over time.

Figure 4: (a) the fixed policy's memory series shows high, sudden peaks;
(b) individual-function optimization alone lowers memory but peaks
persist — motivating the cross-function stage.

Figure 7: (a) the fixed policy vs (b) full PULSE — lower average memory,
spikes smoothed, accuracy within a fraction of a percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.core.pulse import PulseConfig, PulsePolicy
from repro.experiments.assignments import sample_assignment
from repro.experiments.runner import ExperimentConfig, default_trace, run_policy
from repro.traces.schema import Trace

__all__ = ["MemorySeriesResult", "figure4_and_7_memory", "peakiness"]


@dataclass(frozen=True)
class MemorySeriesResult:
    """One policy's memory behaviour over a single run."""

    label: str
    memory_series_mb: np.ndarray
    mean_memory_mb: float
    max_memory_mb: float
    peakiness: float
    accuracy_percent: float


def peakiness(series: np.ndarray) -> float:
    """Peak-to-average ratio of a memory series (1.0 = perfectly flat)."""
    series = np.asarray(series, dtype=float)
    mean = series.mean()
    if mean == 0:
        return 0.0
    return float(series.max() / mean)


def figure4_and_7_memory(
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
) -> dict[str, MemorySeriesResult]:
    """Memory series for the fixed policy, individual-only PULSE and full
    PULSE over one run (same assignment for all three)."""
    config = config or ExperimentConfig()
    trace = trace if trace is not None else default_trace(config)
    assignment = sample_assignment(trace.n_functions, seed=config.seed)
    policies = {
        "openwhisk": OpenWhiskPolicy,
        "individual_only": partial(
            PulsePolicy, PulseConfig(enable_global=False)
        ),
        "pulse": PulsePolicy,
    }
    out: dict[str, MemorySeriesResult] = {}
    for label, factory in policies.items():
        r = run_policy(trace, assignment, factory(), config.sim)
        series = r.memory_series_mb
        assert series is not None, "memory figures need record_series=True"
        out[label] = MemorySeriesResult(
            label=label,
            memory_series_mb=series,
            mean_memory_mb=float(series.mean()),
            max_memory_mb=float(series.max()),
            peakiness=peakiness(series),
            accuracy_percent=r.mean_accuracy,
        )
    return out
