"""Figures 1 & 2 — motivation: diverse and drifting inter-arrival patterns.

Figure 1 plots, for five different functions, the percentage of
invocations re-arriving at each minute of the 10-minute post-invocation
window; the shapes differ sharply across functions. Figure 2 plots the
same histogram for *one* function over the first / middle / last four
days of the trace, showing the shape changes over time.
"""

from __future__ import annotations

import numpy as np

from repro.traces.analysis import window_interarrival_histogram
from repro.traces.schema import MINUTES_PER_DAY, Trace

__all__ = ["figure1_histograms", "figure2_drift", "histogram_divergence"]


def figure1_histograms(
    trace: Trace,
    function_ids: list[int] | None = None,
    window: int = 10,
) -> dict[str, np.ndarray]:
    """Per-function windowed inter-arrival histograms (Fig. 1's panels).

    Defaults to five functions chosen for shape diversity: the five whose
    histograms are pairwise most different (greedy max-min selection on
    L1 distance).
    """
    if function_ids is None:
        hists = [
            window_interarrival_histogram(trace, fid, window)
            for fid in range(trace.n_functions)
        ]
        chosen = [int(np.argmax([h.sum() for h in hists]))]
        while len(chosen) < min(5, trace.n_functions):
            best, best_d = -1, -1.0
            for fid in range(trace.n_functions):
                if fid in chosen:
                    continue
                d = min(float(np.abs(hists[fid] - hists[c]).sum()) for c in chosen)
                if d > best_d:
                    best, best_d = fid, d
            chosen.append(best)
        function_ids = chosen
    return {
        trace.functions[fid].name: window_interarrival_histogram(trace, fid, window)
        for fid in function_ids
    }


def figure2_drift(
    trace: Trace,
    function_id: int | None = None,
    days_per_period: int = 4,
    window: int = 10,
) -> dict[str, np.ndarray]:
    """One function's histogram over three trace periods (Fig. 2's panels).

    Defaults to the function whose histograms drift the most across the
    first / middle / last ``days_per_period`` days.
    """
    horizon_days = int(trace.horizon // MINUTES_PER_DAY)
    if horizon_days >= 3:
        days = min(days_per_period, max(1, horizon_days // 3))
        mid_start = max(0, (horizon_days - days) // 2)
        last_start = max(0, horizon_days - days)
        periods = {
            f"first {days} days": trace.days(0, days),
            f"middle {days} days": trace.days(mid_start, days),
            f"last {days} days": trace.days(last_start, days),
        }
    else:
        # Short traces: non-overlapping thirds of the horizon.
        third = trace.horizon // 3
        periods = {
            "first third": trace.window(0, third),
            "middle third": trace.window(third, 2 * third),
            "last third": trace.window(2 * third, trace.horizon),
        }
    if function_id is None:
        function_id = max(
            range(trace.n_functions),
            key=lambda fid: histogram_divergence(
                [
                    window_interarrival_histogram(p, fid, window)
                    for p in periods.values()
                ]
            ),
        )
    return {
        label: window_interarrival_histogram(p, function_id, window)
        for label, p in periods.items()
    }


def histogram_divergence(histograms: list[np.ndarray]) -> float:
    """Total pairwise L1 distance — how much a set of histograms differ."""
    total = 0.0
    for i in range(len(histograms)):
        for j in range(i + 1, len(histograms)):
            total += float(np.abs(histograms[i] - histograms[j]).sum())
    return total
