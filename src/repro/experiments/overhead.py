"""Figure 9 — decision overhead and accuracy: MILP vs PULSE.

Panel (a): the distribution over simulation runs of (total policy
decision overhead) / (total service time) — the paper's histogram has
MILP roughly an order of magnitude above PULSE. Panel (b): end-to-end
accuracy of the two policies — MILP loses accuracy because the joint
optimization "tends to favor lower-quality models".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.pulse import PulsePolicy
from repro.experiments.runner import ExperimentConfig, default_trace, run_policies
from repro.milp.policy import MilpPolicy
from repro.runtime.metrics import aggregate_results
from repro.traces.schema import Trace

__all__ = ["OverheadResult", "figure9_overhead"]


@dataclass(frozen=True)
class OverheadResult:
    """Figure 9's data: per-run overhead ratios and accuracies."""

    pulse_overhead_ratio: np.ndarray  # overhead / service time, per run
    milp_overhead_ratio: np.ndarray
    pulse_accuracy: float
    milp_accuracy: float
    pulse_aggregate: dict[str, float]
    milp_aggregate: dict[str, float]

    @property
    def overhead_factor(self) -> float:
        """How many times more overhead MILP incurs than PULSE (medians)."""
        p = float(np.median(self.pulse_overhead_ratio))
        if p == 0:
            return float("inf")
        return float(np.median(self.milp_overhead_ratio)) / p


def figure9_overhead(
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
) -> OverheadResult:
    """Run both optimizers with decision-overhead instrumentation."""
    config = config or ExperimentConfig()
    config = replace(config, sim=replace(config.sim, measure_overhead=True))
    trace = trace if trace is not None else default_trace(config)
    results = run_policies(
        trace,
        {"PULSE": PulsePolicy, "MILP": MilpPolicy},
        config,
    )
    pulse_ratio = np.array(
        [r.overhead_over_service_time for r in results["PULSE"]]
    )
    milp_ratio = np.array([r.overhead_over_service_time for r in results["MILP"]])
    pu = aggregate_results(results["PULSE"])
    mi = aggregate_results(results["MILP"])
    return OverheadResult(
        pulse_overhead_ratio=pulse_ratio,
        milp_overhead_ratio=milp_ratio,
        pulse_accuracy=pu["accuracy_percent"],
        milp_accuracy=mi["accuracy_percent"],
        pulse_aggregate=pu,
        milp_aggregate=mi,
    )
