"""Cost–accuracy Pareto frontier over PULSE's configuration space.

Figure 5 plots three points (all-lowest, all-highest, PULSE); this
extension sweeps PULSE's configuration grid — threshold scheme ×
probability shape × memory threshold — and computes which configurations
are Pareto-optimal in (keep-alive cost ↓, accuracy ↑). It makes the
probability-shape trade-off of DESIGN.md §7.1 visible as a frontier a
provider can pick an operating point from.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from itertools import product

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.baselines.static import AllLowQualityPolicy
from repro.core.pulse import PulseConfig, PulsePolicy
from repro.experiments.runner import ExperimentConfig, default_trace, run_policies
from repro.runtime.metrics import aggregate_results
from repro.traces.schema import Trace

__all__ = ["ParetoPoint", "pareto_frontier", "pulse_configuration_sweep"]


@dataclass(frozen=True)
class ParetoPoint:
    """One configuration's position in the cost/accuracy plane."""

    label: str
    keepalive_cost_usd: float
    accuracy_percent: float
    service_time_s: float
    on_frontier: bool = False

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weakly better on both objectives, strictly on one."""
        better_cost = self.keepalive_cost_usd <= other.keepalive_cost_usd
        better_acc = self.accuracy_percent >= other.accuracy_percent
        strictly = (
            self.keepalive_cost_usd < other.keepalive_cost_usd
            or self.accuracy_percent > other.accuracy_percent
        )
        return better_cost and better_acc and strictly


def pareto_frontier(points: list[ParetoPoint]) -> list[ParetoPoint]:
    """Mark and return the non-dominated subset (cost ↓, accuracy ↑)."""
    out = []
    for p in points:
        dominated = any(q.dominates(p) for q in points if q is not p)
        out.append(
            ParetoPoint(
                label=p.label,
                keepalive_cost_usd=p.keepalive_cost_usd,
                accuracy_percent=p.accuracy_percent,
                service_time_s=p.service_time_s,
                on_frontier=not dominated,
            )
        )
    return out


def pulse_configuration_sweep(
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
    schemes: tuple[str, ...] = ("T1", "T2"),
    modes: tuple[str, ...] = ("exact", "survival", "hazard"),
    memory_thresholds: tuple[float, ...] = (0.10,),
) -> list[ParetoPoint]:
    """Sweep the grid, add the two fixed anchors, mark the frontier."""
    if not schemes or not modes or not memory_thresholds:
        raise ValueError("each sweep dimension needs at least one value")
    config = config or ExperimentConfig()
    trace = trace if trace is not None else default_trace(config)
    policies = {
        "all-highest": OpenWhiskPolicy,
        "all-lowest": AllLowQualityPolicy,
    }
    for scheme, mode, km_t in product(schemes, modes, memory_thresholds):
        label = f"{scheme}/{mode}/KM_T={km_t:.2f}"
        policies[label] = partial(
            PulsePolicy,
            PulseConfig(
                threshold_scheme=scheme,
                probability_mode=mode,
                memory_threshold=km_t,
            ),
        )
    results = run_policies(trace, policies, config)
    points = []
    for label, runs in results.items():
        agg = aggregate_results(runs)
        points.append(
            ParetoPoint(
                label=label,
                keepalive_cost_usd=agg["keepalive_cost_usd"],
                accuracy_percent=agg["accuracy_percent"],
                service_time_s=agg["service_time_s"],
            )
        )
    return pareto_frontier(points)
