"""Tables II & III — strategy comparison over the post-peak window.

§II designates the two most prominent cumulative-invocation peaks in the
trace and evaluates four quality-assignment strategies over the 10-minute
keep-alive window that follows each peak, for the functions invoked at
the peak (every strategy keeps all of them alive for the full window, so
warm starts are equal by construction; the strategies differ in *which
variant* each function holds):

1. **all high** — every function keeps its highest-quality variant;
2. **all low** — every function keeps its lowest;
3. **random high/low** — a balanced random split;
4. **intelligent** — functions ranked by their *actual* invocation count
   inside the window; the top half keep high quality.

Reported per strategy: total service time over the window's invocations,
keep-alive cost of holding the containers for the window, and
invocation-weighted accuracy — Table II for the first peak, Table III for
the second.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.variants import ModelFamily
from repro.runtime.costmodel import CostModel
from repro.traces.analysis import invocation_peaks
from repro.traces.schema import Trace
from repro.utils.rng import rng_from_seed

__all__ = ["PeakStrategyRow", "evaluate_peak_window", "tables2_3_peak_strategies"]

STRATEGIES = ("all_high", "all_low", "random_mixed", "intelligent")


@dataclass(frozen=True)
class PeakStrategyRow:
    """One table row: a strategy's metrics over one post-peak window."""

    strategy: str
    service_time_s: float
    keepalive_cost_usd: float
    accuracy_percent: float
    n_invocations: int
    n_functions: int


def _levels_for(
    strategy: str,
    fids: list[int],
    future_counts: dict[int, int],
    rng: np.random.Generator,
) -> dict[int, str]:
    """Which quality ('high'/'low') each function keeps, per strategy."""
    if strategy == "all_high":
        return {f: "high" for f in fids}
    if strategy == "all_low":
        return {f: "low" for f in fids}
    if strategy == "random_mixed":
        order = list(fids)
        rng.shuffle(order)
        half = (len(order) + 1) // 2
        return {f: ("high" if i < half else "low") for i, f in enumerate(order)}
    if strategy == "intelligent":
        ranked = sorted(fids, key=lambda f: (-future_counts[f], f))
        half = (len(ranked) + 1) // 2
        return {f: ("high" if i < half else "low") for i, f in enumerate(ranked)}
    raise ValueError(f"unknown strategy {strategy!r}")


def evaluate_peak_window(
    trace: Trace,
    assignment: dict[int, ModelFamily],
    peak_minute: int,
    window: int = 10,
    cost_model: CostModel | None = None,
    seed: int | np.random.Generator | None = None,
) -> list[PeakStrategyRow]:
    """Evaluate all four strategies over one post-peak window."""
    cost_model = cost_model or CostModel()
    rng = rng_from_seed(seed)
    stop = min(peak_minute + 1 + window, trace.horizon)
    fids = [int(f) for f in np.flatnonzero(trace.counts[:, peak_minute])]
    if not fids:
        raise ValueError(f"no function invokes at minute {peak_minute}")
    future_counts = {
        f: int(trace.counts[f, peak_minute + 1 : stop].sum()) for f in fids
    }
    rows = []
    for strategy in STRATEGIES:
        quality = _levels_for(strategy, fids, future_counts, rng)
        service = 0.0
        acc_weighted = 0.0
        cost = 0.0
        n_inv = 0
        for f in fids:
            fam = assignment[f]
            variant = fam.highest if quality[f] == "high" else fam.lowest
            # Keep-alive cost: the container is held for the whole window.
            cost += cost_model.minute_cost(variant.memory_mb) * (stop - peak_minute)
            # Window invocations (including the peak minute) are all warm.
            count = int(trace.counts[f, peak_minute:stop].sum())
            service += count * variant.warm_service_time_s
            acc_weighted += count * variant.accuracy
            n_inv += count
        rows.append(
            PeakStrategyRow(
                strategy=strategy,
                service_time_s=service,
                keepalive_cost_usd=cost,
                accuracy_percent=acc_weighted / n_inv if n_inv else 0.0,
                n_invocations=n_inv,
                n_functions=len(fids),
            )
        )
    return rows


def tables2_3_peak_strategies(
    trace: Trace,
    assignment: dict[int, ModelFamily],
    window: int = 10,
    cost_model: CostModel | None = None,
    seed: int = 2024,
) -> dict[str, list[PeakStrategyRow]]:
    """Both tables: the two most prominent peaks' strategy comparisons."""
    peaks = invocation_peaks(trace, n_peaks=2)
    if len(peaks) < 2:
        raise ValueError("trace does not contain two distinct invocation peaks")
    return {
        "table2_peak1": evaluate_peak_window(
            trace, assignment, peaks[0], window, cost_model, seed
        ),
        "table3_peak2": evaluate_peak_window(
            trace, assignment, peaks[1], window, cost_model, seed + 1
        ),
    }
