"""Full-report generation: every experiment, one markdown document.

``generate_report`` runs the complete per-table/per-figure suite at a
chosen scale and renders a self-contained markdown report with the same
structure as EXPERIMENTS.md — useful for checking a code change against
every paper element at once (``python -m repro report out.md``).
"""

from __future__ import annotations

import io
from dataclasses import replace

import numpy as np

from repro.experiments.ablations import (
    peak_detector_ablation,
    scalability_study,
    utility_component_ablation,
)
from repro.experiments.assignments import sample_assignment
from repro.experiments.headline import figure6_headline
from repro.experiments.integration import figure8_integration
from repro.experiments.memory import figure4_and_7_memory
from repro.experiments.motivation import figure1_histograms, figure2_drift
from repro.experiments.overhead import figure9_overhead
from repro.experiments.peaks import tables2_3_peak_strategies
from repro.experiments.reporting import format_bar_chart, format_series, format_table
from repro.experiments.runner import ExperimentConfig, default_trace
from repro.experiments.sensitivity import (
    figure10_threshold_schemes,
    figure11_memory_thresholds,
    figure12_local_windows,
    keep_alive_duration_sweep,
)
from repro.experiments.table1 import table1_characterization
from repro.experiments.tradeoff import figure5_tradeoff
from repro.traces.schema import Trace

__all__ = ["generate_report"]


def _sweep_rows(points) -> list[dict[str, float | str]]:
    return [
        {
            "point": p.label,
            "keepalive_cost_%": p.keepalive_cost,
            "service_time_%": p.service_time,
            "accuracy_%": p.accuracy,
        }
        for p in points
    ]


def generate_report(
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
    quick: bool = False,
) -> str:
    """Run everything; return the markdown report.

    ``quick`` shrinks the fixed-size side studies (scalability grid) so a
    smoke-test report finishes in seconds; the per-figure experiments
    already scale with ``config``.
    """
    config = config or ExperimentConfig()
    trace = trace if trace is not None else default_trace(config)
    assignment = sample_assignment(trace.n_functions, seed=config.seed)
    out = io.StringIO()
    w = out.write

    w("# PULSE reproduction report\n\n")
    w(
        f"Scale: {config.n_runs} runs x {config.horizon_minutes} minutes, "
        f"seed {config.seed}; trace `{trace.name}` with "
        f"{trace.n_functions} functions and "
        f"{trace.total_invocations()} invocations.\n\n"
    )

    w("## Table I — variant characterization\n\n```\n")
    _, rows = table1_characterization(seed=config.seed)
    w(format_table(rows))
    w("\n```\n\n")

    w("## Figures 1 & 2 — inter-arrival shapes\n\n```\n")
    for name, h in figure1_histograms(trace).items():
        w(format_series(h, label=f"{name:24s}") + "\n")
    w("\n")
    for label, h in figure2_drift(trace).items():
        w(format_series(h, label=f"{label:16s}") + "\n")
    w("```\n\n")

    w("## Tables II & III — post-peak strategies\n\n```\n")
    for name, rows_ in tables2_3_peak_strategies(trace, assignment).items():
        w(format_table([r.__dict__ for r in rows_], title=name) + "\n\n")
    w("```\n\n")

    w("## Figures 4 & 7 — keep-alive memory\n\n```\n")
    for label, r in figure4_and_7_memory(config, trace).items():
        w(
            format_series(r.memory_series_mb, label=f"{label:16s}")
            + f"  avg={r.mean_memory_mb:.0f}MB max={r.max_memory_mb:.0f}MB"
            + f" acc={r.accuracy_percent:.2f}%\n"
        )
    w("```\n\n")

    w("## Figure 5 — trade-off\n\n```\n")
    w(format_table([p.__dict__ for p in figure5_tradeoff(config, trace)]))
    w("\n```\n\n")

    w("## Figure 6 — headline vs OpenWhisk\n\n```\n")
    headline = figure6_headline(config, trace)
    w(format_bar_chart(headline.improvements, unit="%") + "\n")
    w(format_series(headline.openwhisk_cost_error, label="OpenWhisk err") + "\n")
    w(format_series(headline.pulse_cost_error, label="PULSE err    ") + "\n")
    w("```\n\n")

    w("## Figure 8 — integrations\n\n```\n")
    for r in figure8_integration(config, trace):
        w(f"{r.technique}+PULSE vs {r.technique}:\n")
        w(
            format_bar_chart(
                {
                    "accuracy": r.accuracy,
                    "keepalive_cost": r.keepalive_cost,
                    "service_time": r.service_time,
                },
                unit="%",
            )
            + "\n"
        )
    w("```\n\n")

    w("## Figure 9 — MILP vs PULSE\n\n```\n")
    ov = figure9_overhead(replace(config, n_runs=max(1, config.n_runs // 2)), trace)
    w(
        f"median overhead/service: PULSE "
        f"{float(np.median(ov.pulse_overhead_ratio)):.2e}, "
        f"MILP {float(np.median(ov.milp_overhead_ratio)):.2e} "
        f"({ov.overhead_factor:.1f}x)\n"
    )
    w(f"accuracy: PULSE {ov.pulse_accuracy:.2f}%, MILP {ov.milp_accuracy:.2f}%\n")
    w("```\n\n")

    w("## Figures 10-12 — sensitivity\n\n```\n")
    w(format_table(_sweep_rows(figure10_threshold_schemes(config, trace)),
                   title="Fig 10: T1 vs T2") + "\n\n")
    w(format_table(_sweep_rows(figure11_memory_thresholds(config, trace)),
                   title="Fig 11: memory thresholds") + "\n\n")
    w(format_table(_sweep_rows(figure12_local_windows(config, trace)),
                   title="Fig 12: local windows") + "\n")
    w("```\n\n")

    w("## Extensions\n\n```\n")
    duration = keep_alive_duration_sweep(config, trace)
    w(
        format_table(
            [
                {"window_min": k, **_sweep_rows(v)[0]}
                for k, v in duration.items()
            ],
            title="Keep-alive durations",
        )
        + "\n\n"
    )
    w(
        format_table(
            [
                {"label": r.label, "cost_usd": r.keepalive_cost_usd,
                 "accuracy_%": r.accuracy_percent, **r.extra}
                for r in utility_component_ablation(config, trace)
            ],
            title="Utility components",
        )
        + "\n\n"
    )
    w(
        format_table(
            [
                {"label": r.label, "warm_fraction": r.warm_fraction, **r.extra}
                for r in peak_detector_ablation(config)
            ],
            title="Peak detector (day-phase trace)",
        )
        + "\n\n"
    )
    scaling = (
        scalability_study((12, 24), horizon_minutes=240, seed=config.seed)
        if quick
        else scalability_study()
    )
    w(
        format_table(
            [{"label": r.label, **r.extra} for r in scaling],
            title="Scalability",
        )
        + "\n"
    )
    w("```\n")
    return out.getvalue()
