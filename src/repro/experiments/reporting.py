"""Plain-text rendering of experiment outputs.

The paper's artifact renders matplotlib bar plots from averaged .txt
metrics; offline we render the same rows/series as aligned ASCII tables
and sparkline-style series so every bench prints exactly what the
corresponding table or figure reports.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "format_bar_chart"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    values: np.ndarray | Sequence[float],
    label: str = "",
    width: int = 72,
) -> str:
    """Render a numeric series as a one-line unicode sparkline.

    Long series are bucket-averaged down to ``width`` points.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return f"{label}: (empty)"
    if x.size > width:
        edges = np.linspace(0, x.size, width + 1).astype(int)
        x = np.array([x[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = float(x.min()), float(x.max())
    if hi == lo:
        body = _BLOCKS[1] * x.size
    else:
        idx = np.round((x - lo) / (hi - lo) * (len(_BLOCKS) - 1)).astype(int)
        body = "".join(_BLOCKS[i] for i in idx)
    prefix = f"{label}: " if label else ""
    return f"{prefix}[{lo:.3g}..{hi:.3g}] {body}"


def format_bar_chart(
    entries: Mapping[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart of labeled values (handles negatives)."""
    if not entries:
        return "(no entries)"
    label_w = max(len(k) for k in entries)
    max_abs = max(abs(v) for v in entries.values()) or 1.0
    lines = []
    for k, v in entries.items():
        n = int(round(abs(v) / max_abs * width))
        bar = ("-" if v < 0 else "#") * n
        lines.append(f"{k.ljust(label_w)}  {v:+9.2f}{unit}  {bar}")
    return "\n".join(lines)
