"""Resilience sweep: how gracefully do policies degrade under faults?

PULSE's value claim — learned mixed-quality keep-alive beats the fixed
OpenWhisk policy — is made on a clean simulator. Production platforms
are not clean: container spawns fail and get retried, cold starts stall
under contention, co-located load steals keep-alive memory. This
extension sweeps a :class:`~repro.faults.plan.FaultPlan`'s intensity
and compares policies under it, answering two questions the paper
cannot: does PULSE's advantage *survive* platform noise, and does
either optimizer degrade disproportionately as faults intensify?

At fault intensity ``r`` the plan injects spawn failures and cold-start
slowdowns at rate ``r`` and drops/duplicates trace entries at ``r / 4``
(trace noise hurts every policy's predictor equally; the lower rate
keeps the workload recognizably the same across the sweep). Policies
run crash-isolated (:func:`repro.api.make_policy` with
``resilient=True``), so the sweep also exercises the degradation path.

Faults are seeded per sweep point (``fault_seed + point index``), and
all policies at one point share the same plan — differences within a
point are attributable to the policy, the paired design the runner
already uses for assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial

from repro.api import make_policy
from repro.experiments.runner import ExperimentConfig, default_trace, run_policies
from repro.faults.plan import FaultPlan
from repro.runtime.metrics import aggregate_results
from repro.traces.schema import Trace

__all__ = ["ResiliencePoint", "resilience_sweep"]

DEFAULT_POLICIES = ("pulse", "openwhisk", "all-low")
DEFAULT_RATES = (0.0, 0.05, 0.1, 0.2)


@dataclass(frozen=True)
class ResiliencePoint:
    """One policy's mean outcomes at one fault intensity."""

    policy: str
    fault_rate: float
    keepalive_cost_usd: float
    accuracy_percent: float
    service_time_s: float
    warm_fraction: float
    n_spawn_failures: float
    n_retries: float
    n_policy_faults: float
    n_degraded_minutes: float
    n_forced_downgrades: float


def fault_plan_at(
    rate: float, seed: int, pressure_cap_mb: float | None = None
) -> FaultPlan:
    """The sweep's fault plan at one intensity ``rate``."""
    return FaultPlan(
        seed=seed,
        spawn_failure_rate=rate,
        cold_slowdown_rate=rate,
        pressure_rate=rate / 4 if pressure_cap_mb is not None else 0.0,
        pressure_cap_mb=pressure_cap_mb,
        drop_rate=rate / 4,
        duplicate_rate=rate / 4,
    )


def resilience_sweep(
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    fault_rates: tuple[float, ...] = DEFAULT_RATES,
    fault_seed: int = 0,
    pressure_cap_mb: float | None = None,
) -> list[ResiliencePoint]:
    """Sweep fault intensities; returns one point per (rate, policy)."""
    if not fault_rates:
        raise ValueError("need at least one fault rate")
    for rate in fault_rates:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rates must be in [0, 1], got {rate}")
    config = config or ExperimentConfig()
    trace = trace if trace is not None else default_trace(config)
    factories = {
        name: partial(make_policy, name, resilient=True) for name in policies
    }
    points: list[ResiliencePoint] = []
    for i, rate in enumerate(fault_rates):
        plan = fault_plan_at(rate, fault_seed + i, pressure_cap_mb)
        cfg = replace(
            config,
            sim=replace(config.sim, faults=plan, record_series=False),
        )
        results = run_policies(trace, factories, cfg)
        for name in policies:
            agg = aggregate_results(results[name])
            points.append(
                ResiliencePoint(
                    policy=name,
                    fault_rate=rate,
                    keepalive_cost_usd=agg["keepalive_cost_usd"],
                    accuracy_percent=agg["accuracy_percent"],
                    service_time_s=agg["service_time_s"],
                    warm_fraction=agg["warm_fraction"],
                    n_spawn_failures=agg["n_spawn_failures"],
                    n_retries=agg["n_retries"],
                    n_policy_faults=agg["n_policy_faults"],
                    n_degraded_minutes=agg["n_degraded_minutes"],
                    n_forced_downgrades=agg["n_forced_downgrades"],
                )
            )
    return points
