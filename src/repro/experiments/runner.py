"""Shared experiment orchestration.

Runs one or many (policy, assignment) simulations over a trace and
aggregates. Policies are passed as zero-argument *factories* because a
policy instance carries per-run state and must be fresh for every run;
build them with ``functools.partial(repro.api.make_policy, name)`` (a
picklable replacement for the historical zero-arg lambdas).

Multi-run sweeps can fan out over processes (``n_jobs``): each worker
rebuilds its simulation from picklable inputs, which follows the
scientific-Python guidance of parallelizing at the outermost (run) level
where work units are seconds long and independent.
"""

from __future__ import annotations

import traceback
from collections.abc import Callable
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.models.variants import ModelFamily
from repro.models.zoo import ModelZoo, default_zoo
from repro.runtime.metrics import RunResult
from repro.runtime.policy import KeepAlivePolicy
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.traces.schema import MINUTES_PER_DAY, Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from repro.experiments.assignments import sample_assignments
from repro.utils.specs import parse_engine
from repro.utils.validation import check_positive_int

__all__ = [
    "ExperimentConfig",
    "PolicyFactory",
    "RunError",
    "default_trace",
    "merged_telemetry",
    "run_policies",
    "run_policy",
    "split_errors",
]

PolicyFactory = Callable[[], KeepAlivePolicy]


@dataclass(frozen=True)
class RunError:
    """A per-run failure record (``run_policies(..., on_error="record")``).

    Takes the failed run's slot in the results list so the paired-design
    indexing survives: entry ``i`` of every policy's list still belongs
    to assignment ``i``, whether it is a :class:`RunResult` or this.
    """

    policy: str
    run_index: int
    error_type: str
    message: str
    traceback: str

    @classmethod
    def from_exception(
        cls, policy: str, run_index: int, exc: BaseException
    ) -> "RunError":
        return cls(
            policy=policy,
            run_index=run_index,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )


def split_errors(
    results: dict[str, list[RunResult | RunError]],
) -> tuple[dict[str, list[RunResult]], list[RunError]]:
    """Separate a mixed sweep result into clean runs and failure records."""
    ok: dict[str, list[RunResult]] = {}
    errors: list[RunError] = []
    for name, runs in results.items():
        ok[name] = [r for r in runs if isinstance(r, RunResult)]
        errors.extend(r for r in runs if isinstance(r, RunError))
    return ok, errors


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and determinism knobs shared by the experiment functions.

    Paper scale is ``n_runs=1000`` over the full two-week trace; the
    defaults here (20 runs x 2 days) keep a laptop reproduction in
    minutes. Benches shrink further.
    """

    n_runs: int = 20
    horizon_minutes: int = 2 * MINUTES_PER_DAY
    seed: int = 2024
    n_jobs: int = 1
    sim: SimulationConfig = field(default_factory=SimulationConfig)
    #: Engine every run dispatches on (see ``Simulation.run``): "auto"
    #: picks the fast loop except where the config needs the reference
    #: cadence — all loops are metric-identical, so this is speed only.
    #: "fleet" selects the columnar fleet-scale kernel.
    engine: str = "auto"
    #: Fleet-engine shard count (only meaningful with ``engine="fleet"``;
    #: bit-identical results for any value).
    shards: int = 1

    def __post_init__(self) -> None:
        check_positive_int("n_runs", self.n_runs)
        check_positive_int("horizon_minutes", self.horizon_minutes)
        check_positive_int("n_jobs", self.n_jobs)
        # One engine vocabulary everywhere (CLI, api facade, sessions):
        # canonicalize through the shared parser, keeping the frozen
        # field normalized for the durable layer's config hashing.
        object.__setattr__(
            self, "engine", parse_engine(self.engine, flag="engine")
        )
        check_positive_int("shards", self.shards)
        if self.shards != 1 and self.engine != "fleet":
            raise ValueError(
                f"shards={self.shards} is only meaningful with "
                f"engine='fleet', got engine={self.engine!r}"
            )


def default_trace(config: ExperimentConfig) -> Trace:
    """The calibrated synthetic Azure-like trace at the config's horizon."""
    return generate_trace(
        SyntheticTraceConfig(horizon_minutes=config.horizon_minutes, seed=config.seed)
    )


def run_policy(
    trace: Trace,
    assignment: dict[int, ModelFamily],
    policy: KeepAlivePolicy,
    sim: SimulationConfig | None = None,
    engine: str = "auto",
    shards: int = 1,
) -> RunResult:
    """One simulation run (thin convenience wrapper)."""
    return Simulation(trace, assignment, policy, sim).run(
        engine=engine, shards=shards
    )


def _one_run(
    args: tuple[
        Trace, dict[int, ModelFamily], PolicyFactory, SimulationConfig, str, int
    ],
) -> RunResult:
    trace, assignment, factory, sim, engine, shards = args
    return Simulation(trace, assignment, factory(), sim).run(
        engine=engine, shards=shards
    )


# The trace dominates the pickled payload of a sweep task (counts is an
# (n_functions x horizon) array; assignments and configs are tiny). Workers
# therefore receive it once, at pool start, through the initializer below,
# and per-task payloads carry only the per-run pieces.
_worker_trace: Trace | None = None


def _init_worker(trace: Trace) -> None:
    global _worker_trace
    _worker_trace = trace


def _one_worker_run(
    args: tuple[
        dict[int, ModelFamily], PolicyFactory, SimulationConfig, str, int
    ],
) -> RunResult:
    assignment, factory, sim, engine, shards = args
    assert _worker_trace is not None, "pool initializer did not run"
    return Simulation(_worker_trace, assignment, factory(), sim).run(
        engine=engine, shards=shards
    )


def run_policies(
    trace: Trace,
    policies: dict[str, PolicyFactory],
    config: ExperimentConfig,
    zoo: ModelZoo | None = None,
    *,
    on_error: str = "raise",
) -> dict[str, list[RunResult | RunError]]:
    """Run every policy over the same ``n_runs`` sampled assignments.

    All policies see identical assignments run-for-run, so per-run metric
    differences are attributable to the policy alone (paired design).

    With ``n_jobs > 1`` a single process pool is shared across *all*
    policies (one worker spawn + one trace transfer per sweep, not per
    policy), and the trace ships to each worker exactly once via the pool
    initializer rather than inside every task.

    ``on_error`` picks the failure semantics. ``"raise"`` (default)
    propagates the first worker exception. ``"record"`` isolates each
    failure into a :class:`RunError` occupying that run's slot — the
    sweep continues, and :func:`split_errors` separates survivors from
    failures afterwards.
    """
    if on_error not in ("raise", "record"):
        raise ValueError(
            f"on_error must be 'raise' or 'record', got {on_error!r}"
        )
    zoo = zoo or default_zoo()
    assignments = sample_assignments(
        trace.n_functions, config.n_runs, zoo, seed=config.seed
    )
    out: dict[str, list[RunResult | RunError]] = {}
    if config.n_jobs > 1:
        with ProcessPoolExecutor(
            max_workers=config.n_jobs,
            initializer=_init_worker,
            initargs=(trace,),
        ) as pool:
            # submit() rather than map(): map's lazy iterator aborts the
            # whole sweep at the first worker exception, losing every
            # result after it; per-future collection keeps the rest.
            futures = {
                name: [
                    pool.submit(
                        _one_worker_run,
                        (a, factory, config.sim, config.engine, config.shards),
                    )
                    for a in assignments
                ]
                for name, factory in policies.items()
            }
            for name, futs in futures.items():
                runs: list[RunResult | RunError] = []
                for idx, fut in enumerate(futs):
                    try:
                        runs.append(fut.result())
                    except Exception as exc:
                        if on_error == "raise":
                            raise
                        runs.append(RunError.from_exception(name, idx, exc))
                out[name] = runs
    else:
        for name, factory in policies.items():
            runs = []
            for idx, a in enumerate(assignments):
                try:
                    runs.append(
                        _one_run((
                            trace, a, factory, config.sim,
                            config.engine, config.shards,
                        ))
                    )
                except Exception as exc:
                    if on_error == "raise":
                        raise
                    runs.append(RunError.from_exception(name, idx, exc))
            out[name] = runs
    return out


def merged_telemetry(results: dict[str, list[RunResult]]):
    """Merge each policy's per-run observability sessions into one.

    Returns ``{policy_name: ObsSession}`` with counters summed, span
    timings pooled and ``n_runs`` counting the contributing runs —
    per-run decision records are dropped (they only make sense against a
    single run's timeline). Sessions travel back from pool workers by
    pickling, so this works identically for ``n_jobs > 1`` sweeps.
    Policies whose runs were unobserved are omitted; an all-unobserved
    sweep yields an empty dict.
    """
    from repro.obs.export import merge_sessions

    out = {}
    for name, runs in results.items():
        merged = merge_sessions(
            r.obs for r in runs if isinstance(r, RunResult)
        )
        if merged is not None:
            out[name] = merged
    return out
