"""Figures 10–12 — sensitivity sweeps, plus the keep-alive duration sweep.

Each sweep reports PULSE's percentage improvement over the OpenWhisk
fixed policy on the three headline metrics, across:

- Figure 10: probability-threshold technique T1 vs T2 (≈ equal — the
  robustness claim);
- Figure 11: keep-alive memory threshold KM_T ∈ {5 %, 10 %, 15 %}
  (M1/M2/M3);
- Figure 12: local window size ∈ {10, 60, 120} minutes;
- extension (§V's "can be adapted to different keep-alive durations"):
  engine keep-alive windows of 5/10/15 minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.core.pulse import PulseConfig, PulsePolicy
from repro.experiments.runner import ExperimentConfig, default_trace, run_policies
from repro.runtime.metrics import aggregate_results, percent_improvement
from repro.traces.schema import Trace

__all__ = [
    "SweepPoint",
    "figure10_threshold_schemes",
    "figure11_memory_thresholds",
    "figure12_local_windows",
    "keep_alive_duration_sweep",
]


@dataclass(frozen=True)
class SweepPoint:
    """PULSE-vs-OpenWhisk improvement triplet for one parameter value."""

    label: str
    accuracy: float
    keepalive_cost: float
    service_time: float


def _sweep(
    variants: dict[str, PulseConfig],
    config: ExperimentConfig,
    trace: Trace,
) -> list[SweepPoint]:
    policies = {"OpenWhisk": OpenWhiskPolicy}
    policies.update(
        {label: partial(PulsePolicy, cfg) for label, cfg in variants.items()}
    )
    results = run_policies(trace, policies, config)
    base = aggregate_results(results["OpenWhisk"])
    points = []
    for label in variants:
        agg = aggregate_results(results[label])
        points.append(
            SweepPoint(
                label=label,
                accuracy=percent_improvement(
                    base["accuracy_percent"],
                    agg["accuracy_percent"],
                    higher_is_better=True,
                ),
                keepalive_cost=percent_improvement(
                    base["keepalive_cost_usd"],
                    agg["keepalive_cost_usd"],
                    higher_is_better=False,
                ),
                service_time=percent_improvement(
                    base["service_time_s"],
                    agg["service_time_s"],
                    higher_is_better=False,
                ),
            )
        )
    return points


def figure10_threshold_schemes(
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
) -> list[SweepPoint]:
    """T1 vs T2 probability-threshold techniques."""
    config = config or ExperimentConfig()
    trace = trace if trace is not None else default_trace(config)
    return _sweep(
        {
            "T1": PulseConfig(threshold_scheme="T1"),
            "T2": PulseConfig(threshold_scheme="T2"),
        },
        config,
        trace,
    )


def figure11_memory_thresholds(
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
    thresholds: tuple[float, ...] = (0.05, 0.10, 0.15),
) -> list[SweepPoint]:
    """KM_T sweep (the paper's M1/M2/M3)."""
    config = config or ExperimentConfig()
    trace = trace if trace is not None else default_trace(config)
    return _sweep(
        {
            f"M{i + 1} ({int(t * 100)}%)": PulseConfig(memory_threshold=t)
            for i, t in enumerate(thresholds)
        },
        config,
        trace,
    )


def figure12_local_windows(
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
    windows: tuple[int, ...] = (10, 60, 120),
) -> list[SweepPoint]:
    """Local window size sweep."""
    config = config or ExperimentConfig()
    trace = trace if trace is not None else default_trace(config)
    return _sweep(
        {f"{w}min": PulseConfig(local_window=w) for w in windows},
        config,
        trace,
    )


def keep_alive_duration_sweep(
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
    durations: tuple[int, ...] = (5, 10, 15),
) -> dict[int, list[SweepPoint]]:
    """PULSE vs OpenWhisk at different keep-alive window lengths.

    Both policies use the same window per point, so this tests §V's claim
    that PULSE "can be adapted to different keep-alive durations".
    """
    config = config or ExperimentConfig()
    trace = trace if trace is not None else default_trace(config)
    out: dict[int, list[SweepPoint]] = {}
    for k in durations:
        cfg_k = replace(config, sim=replace(config.sim, keep_alive_window=k))
        out[k] = _sweep({f"window={k}": PulseConfig()}, cfg_k, trace)
    return out
