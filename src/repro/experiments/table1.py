"""Table I — comparative analysis of model variants.

Runs the simulated Lambda profiling campaign
(:class:`~repro.models.profiler.LambdaProfiler`) over the zoo and reports
each variant's measured warm service time, keep-alive cost and accuracy —
the same three columns as the paper's Table I — plus the cold-start
characterization the simulation consumes.
"""

from __future__ import annotations

from repro.models.profiler import LambdaProfiler, ProfileReport
from repro.models.zoo import ModelZoo, default_zoo

__all__ = ["table1_characterization"]


def table1_characterization(
    zoo: ModelZoo | None = None,
    n_warm_samples: int = 1000,
    n_cold_samples: int = 30,
    seed: int = 2024,
) -> tuple[ProfileReport, list[dict[str, float | str]]]:
    """Profile every variant; returns (full report, Table-I-shaped rows)."""
    zoo = zoo or default_zoo()
    profiler = LambdaProfiler(
        zoo,
        n_warm_samples=n_warm_samples,
        n_cold_samples=n_cold_samples,
        seed=seed,
    )
    report = profiler.run()
    rows = [
        {
            "model": p.variant.name,
            "service_time_s": round(p.warm_mean_s, 2),
            "keepalive_cost_cents_per_hour": round(
                p.keepalive_cost_cents_per_hour, 3
            ),
            "accuracy_percent": p.variant.accuracy,
            "cold_service_time_s": round(p.cold_mean_s, 2),
            "memory_mb": round(p.variant.memory_mb, 0),
        }
        for p in report
    ]
    return report, rows
