"""Figure 5 — accuracy vs keep-alive cost trade-off.

Three points: keeping only the lowest-quality variants (cheap, least
accurate), only the highest-quality variants (accurate, expensive) and
PULSE — which should land at near-lowest cost with near-highest accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.baselines.static import AllLowQualityPolicy
from repro.core.pulse import PulsePolicy
from repro.experiments.runner import ExperimentConfig, default_trace, run_policies
from repro.runtime.metrics import aggregate_results
from repro.traces.schema import Trace

__all__ = ["TradeoffPoint", "figure5_tradeoff"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One scatter point of Figure 5."""

    label: str
    keepalive_cost_usd: float
    accuracy_percent: float
    service_time_s: float


def figure5_tradeoff(
    config: ExperimentConfig | None = None,
    trace: Trace | None = None,
) -> list[TradeoffPoint]:
    """The three trade-off points (lowest / highest / PULSE)."""
    config = config or ExperimentConfig()
    trace = trace if trace is not None else default_trace(config)
    results = run_policies(
        trace,
        {
            "lowest quality": AllLowQualityPolicy,
            "highest quality": OpenWhiskPolicy,
            "PULSE": PulsePolicy,
        },
        config,
    )
    points = []
    for label, runs in results.items():
        agg = aggregate_results(runs)
        points.append(
            TradeoffPoint(
                label=label,
                keepalive_cost_usd=agg["keepalive_cost_usd"],
                accuracy_percent=agg["accuracy_percent"],
                service_time_s=agg["service_time_s"],
            )
        )
    return points
