"""Run-to-run variability analysis.

The paper reports averages over 1000 runs with random model-to-function
assignments; this module quantifies the spread behind those averages —
per-metric summary statistics with confidence intervals and the
distribution over runs (Figure 9a is exactly such a distribution for the
overhead ratio).

Use :func:`variance_report` on the output of
:func:`repro.experiments.runner.run_policies`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.metrics import RunResult
from repro.utils.stats import SummaryStats, summarize

__all__ = ["MetricVariance", "variance_report", "paired_deltas"]

_METRICS = {
    "keepalive_cost_usd": lambda r: r.keepalive_cost_usd,
    "service_time_s": lambda r: r.total_service_time_s,
    "accuracy_percent": lambda r: r.mean_accuracy,
    "warm_fraction": lambda r: r.warm_fraction,
}


@dataclass(frozen=True)
class MetricVariance:
    """One policy × metric summary across runs."""

    policy: str
    metric: str
    stats: SummaryStats

    @property
    def relative_spread(self) -> float:
        """Coefficient of variation across runs (0 for a constant)."""
        if self.stats.mean == 0:
            return 0.0
        return self.stats.std / abs(self.stats.mean)


def variance_report(
    results: dict[str, list[RunResult]],
) -> list[MetricVariance]:
    """Per-policy, per-metric spread across runs."""
    if not results:
        raise ValueError("no results given")
    out: list[MetricVariance] = []
    for policy, runs in results.items():
        if not runs:
            raise ValueError(f"policy {policy!r} has no runs")
        for metric, getter in _METRICS.items():
            out.append(
                MetricVariance(
                    policy=policy,
                    metric=metric,
                    stats=summarize(getter(r) for r in runs),
                )
            )
    return out


def paired_deltas(
    results: dict[str, list[RunResult]],
    baseline: str,
    candidate: str,
    metric: str = "keepalive_cost_usd",
) -> SummaryStats:
    """Per-run paired differences ``baseline - candidate`` on one metric.

    Because :func:`~repro.experiments.runner.run_policies` reuses the same
    assignment per run index across policies, the paired differences have
    far lower variance than the unpaired means — the right way to ask
    "does PULSE beat OpenWhisk *on the same workload*?".
    """
    if metric not in _METRICS:
        raise KeyError(f"unknown metric {metric!r}; known: {sorted(_METRICS)}")
    if baseline not in results or candidate not in results:
        raise KeyError(
            f"need both {baseline!r} and {candidate!r} in results "
            f"(have {sorted(results)})"
        )
    base, cand = results[baseline], results[candidate]
    if len(base) != len(cand):
        raise ValueError(
            f"paired analysis needs equal run counts ({len(base)} vs {len(cand)})"
        )
    getter = _METRICS[metric]
    return summarize(getter(b) - getter(c) for b, c in zip(base, cand))
