"""Deterministic fault injection and crash isolation.

Three pieces:

- :class:`~repro.faults.plan.FaultPlan` — the seeded, picklable fault
  model (spawn failures, cold-start slowdowns, memory-pressure spikes,
  trace perturbations). Pass it as ``SimulationConfig(faults=...)`` or
  on the CLI as ``--faults spawn=0.1,pressure=0.05,pressure-mb=4000``.
- :class:`~repro.faults.injector.FaultInjector` — the per-run engine
  hook that turns a plan into concrete, seed-deterministic faults,
  identically on the reference and fast engines.
- :class:`~repro.faults.isolation.ResilientPolicy` — crash isolation
  for any keep-alive policy: caught exceptions degrade the affected
  function to the fixed 10-minute OpenWhisk fallback instead of killing
  the run.

See ``docs/architecture.md`` ("Fault injection & crash isolation") for
the determinism contract and the degradation semantics.
"""

from repro.faults.injector import FaultInjector
from repro.faults.isolation import FALLBACK_WINDOW_MINUTES, ResilientPolicy
from repro.faults.plan import FaultPlan

__all__ = [
    "FALLBACK_WINDOW_MINUTES",
    "FaultInjector",
    "FaultPlan",
    "ResilientPolicy",
]
