"""The live fault injector both engines consult during a run.

One :class:`FaultInjector` serves one run. It is created by the
simulator when the run's :class:`~repro.faults.plan.FaultPlan` has any
runtime fault axis enabled (``plan.injects_runtime``), and consulted at
exactly two points, both of which exist identically on the reference
minute loop and the event-driven fast path:

- **every cold start** — :meth:`cold_start_penalty` returns the extra
  user-visible seconds injected at that (function, minute): retry/backoff
  latency from failed container spawns plus a contention slowdown of the
  cold-start penalty itself. It also updates the run's resilience
  counters and, when enabled, the event log / decision trace.
- **every minute's capacity check** — :meth:`effective_capacity` maps
  the configured standing memory capacity to the minute's effective one,
  applying the transient ``pressure_cap_mb`` on spike minutes. The
  engines then run the ordinary capacity pressure valve against the
  effective cap, so the peak detector and Algorithm 2 see pressure
  spikes through exactly the machinery the paper's valve already uses.

Determinism: every stochastic decision is drawn from a generator seeded
by ``SeedSequence(entropy=plan.seed, spawn_key=(axis, fid, minute))`` —
a pure function of the plan and the coordinate, never of call order.
Since both engines visit the same (function, minute) cold starts and the
same minutes, a fixed plan yields bit-identical faults on both.

The injector never drops an invocation (spawns always eventually
succeed) and draws nothing when a fault axis is disabled, so a plan with
all rates zero is indistinguishable from no plan at all.
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import SALT_PRESSURE, SALT_SPAWN, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Per-run fault state: counters plus the precomputed spike minutes."""

    __slots__ = ("plan", "pressure_minutes", "n_spawn_failures", "n_retries")

    def __init__(self, plan: FaultPlan, horizon: int):
        self.plan = plan
        #: Failed spawn attempts observed so far (resilience counter).
        self.n_spawn_failures = 0
        #: Retries consumed (failures within the per-cold-start budget).
        self.n_retries = 0
        if plan.has_pressure:
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=plan.seed, spawn_key=(SALT_PRESSURE,)
                )
            )
            # One bool per minute, drawn up front: which minutes spike.
            self.pressure_minutes = rng.random(horizon) < plan.pressure_rate
        else:
            self.pressure_minutes = None

    # -- memory pressure ---------------------------------------------------
    def effective_capacity(
        self, minute: int, capacity_mb: float | None
    ) -> float | None:
        """The memory capacity in force at ``minute``: the standing cap,
        tightened to ``pressure_cap_mb`` on spike minutes."""
        if self.pressure_minutes is None or not self.pressure_minutes[minute]:
            return capacity_mb
        cap = self.plan.pressure_cap_mb
        return cap if capacity_mb is None else min(capacity_mb, cap)

    # -- cold-start faults -------------------------------------------------
    def cold_start_penalty(
        self, minute: int, function_id: int, variant, rec=None, events=None
    ) -> float:
        """Extra service seconds injected at one cold start.

        ``variant`` is the serving :class:`~repro.models.variants.ModelVariant`;
        ``rec`` an :class:`~repro.obs.session.ObsSession` (or ``None``) and
        ``events`` an :class:`~repro.runtime.events.EventLog` (or ``None``).

        Spawn model: the initial attempt fails with probability
        ``spawn_failure_rate``; each failure consumes a retry (at most
        ``max_spawn_retries``), and once the budget is spent the
        platform's fallback spawn succeeds unconditionally — invocations
        are delayed, never lost. Failure *i* (0-indexed) adds
        ``retry_penalty_s * (i + 1)`` seconds of backoff.

        Slowdown model: with probability ``cold_slowdown_rate`` the cold
        start runs under node contention and its penalty over a warm
        invocation (``variant.cold_start_penalty_s``) is stretched by
        ``cold_slowdown_factor`` — the injected extra is
        ``penalty * (factor - 1)``.
        """
        plan = self.plan
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=plan.seed,
                spawn_key=(SALT_SPAWN, function_id, minute),
            )
        )
        penalty_s = 0.0
        failures = 0
        if plan.spawn_failure_rate > 0.0:
            # initial attempt + up to max_spawn_retries retries may fail
            while (
                failures <= plan.max_spawn_retries
                and rng.random() < plan.spawn_failure_rate
            ):
                penalty_s += plan.retry_penalty_s * (failures + 1)
                failures += 1
            if failures:
                self.n_spawn_failures += failures
                self.n_retries += min(failures, plan.max_spawn_retries)
                if events is not None:
                    # Imported here, not at module level: the simulator
                    # imports this module, and repro.runtime's __init__
                    # imports the simulator — a top-level events import
                    # would close that cycle.
                    from repro.runtime.events import EventKind

                    events.emit(
                        minute,
                        EventKind.SPAWN_FAILURE,
                        function_id=function_id,
                        variant_name=variant.name,
                        value=float(failures),
                    )
                if rec is not None:
                    rec.record_spawn_fault(
                        minute, function_id, variant.name, failures, penalty_s
                    )
        if (
            plan.cold_slowdown_rate > 0.0
            and rng.random() < plan.cold_slowdown_rate
        ):
            penalty_s += variant.cold_start_penalty_s * (
                plan.cold_slowdown_factor - 1.0
            )
        return penalty_s
