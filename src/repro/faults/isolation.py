"""Policy-crash isolation: one bad policy decision must not kill a run.

:class:`ResilientPolicy` wraps any :class:`~repro.runtime.policy.KeepAlivePolicy`
and catches exceptions from every engine-facing hook. A production
platform cannot crash a node because one tenant's keep-alive heuristic
threw — it isolates the failure, falls back to a safe default, and keeps
serving. The contract here mirrors that:

- a crash in a *per-function* hook (``cold_variant``, ``plan``,
  ``observe_invocation``) permanently **degrades that function** to the
  provider default the paper baselines against: keep the family's
  highest-quality variant warm for a fixed 10 minutes after each
  invocation (OpenWhisk's policy). Other functions keep running the
  inner policy untouched;
- a crash in the *cross-function* review stage (``review_minute`` /
  ``idle_review``) disables the review globally — per-function plans
  keep flowing, the global peak-flattening stage is lost;
- a crash in ``bind`` degrades every function from minute 0;
- every caught fault is counted (``RunResult.n_policy_faults``),
  recorded on the decision trace (``policy_fault`` records — ``repro
  inspect --faults`` answers "why did this function fall back"), and
  emitted on the event log as :data:`~repro.runtime.events.EventKind.POLICY_FAULT`.

The wrapper reports ``resilience_stats(horizon)`` — the engines collect
it after the run via duck typing, so plain policies pay nothing.

Determinism caveat: the two engines call serving hooks (``cold_variant``,
``plan``, ``observe_invocation``) at identical (function, minute) points,
so crashes there degrade identically on both. The *review* stage runs
every minute on the reference engine but is elided on invocation-free
minutes by the fast path, so a review hook that crashes only on an idle
minute may fault at different minutes across engines. Per-function
resilience metrics from serving-hook faults are engine-identical (the
golden tests pin this); review faults are platform-level and engines may
legitimately time them differently.
"""

from __future__ import annotations

from repro.runtime.events import EventKind
from repro.runtime.policy import KeepAlivePolicy

__all__ = ["ResilientPolicy", "FALLBACK_WINDOW_MINUTES"]

#: The fixed keep-alive a degraded function falls back to: the provider
#: default the paper describes (OpenWhisk keeps a container warm 10
#: minutes after each invocation).
FALLBACK_WINDOW_MINUTES = 10


class ResilientPolicy(KeepAlivePolicy):
    """Crash-isolation wrapper around any keep-alive policy."""

    def __init__(self, inner: KeepAlivePolicy):
        super().__init__()
        if isinstance(inner, ResilientPolicy):
            raise ValueError("ResilientPolicy is already crash-isolated")
        self._inner = inner
        # Reports and figures keep the inner policy's name: resilience is
        # a platform property, not a different strategy.
        self.name = inner.name
        self.is_oracle = inner.is_oracle
        #: fid -> minute the function degraded to the fixed fallback.
        self.degraded_since: dict[int, int] = {}
        self._review_dead = False
        self._n_faults = 0
        self._inner_has_review = (
            type(inner).review_minute is not KeepAlivePolicy.review_minute
        )

    # -- lifecycle ---------------------------------------------------------
    def attach_observability(self, obs=None, event_sink=None) -> None:
        super().attach_observability(obs, event_sink)
        self._inner.attach_observability(obs, event_sink)

    def on_bind(self) -> None:
        try:
            self._inner.bind(
                self._trace, self._assignment, self._keep_alive_window
            )
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            self._record_fault(0, -1, "bind", exc)
            self._review_dead = True
            for fid in range(self._trace.n_functions):
                self.degraded_since.setdefault(fid, 0)

    # -- fault bookkeeping -------------------------------------------------
    def _record_fault(self, minute: int, fid: int, hook: str, exc: Exception) -> None:
        self._n_faults += 1
        error = f"{type(exc).__name__}: {exc}"
        if self.obs.decisions_enabled:
            self.obs.record_policy_fault(minute, fid, hook, error)
        if self.event_sink is not None:
            self.event_sink.emit(
                minute, EventKind.POLICY_FAULT, function_id=fid, variant_name=hook
            )

    def _degrade(self, fid: int, minute: int, hook: str, exc: Exception) -> None:
        self._record_fault(minute, fid, hook, exc)
        self.degraded_since.setdefault(fid, minute)

    def _fallback_variant(self, fid: int):
        return self.family(fid).highest

    def _fallback_plan(self, fid: int):
        window = self._keep_alive_window
        keep = min(FALLBACK_WINDOW_MINUTES, window)
        # Pad with None so a long-window inner plan already in the
        # schedule is cleared beyond the fixed 10 minutes.
        return [self.family(fid).highest] * keep + [None] * (window - keep)

    # -- engine-facing hooks, each crash-isolated --------------------------
    def observe_invocation(self, function_id: int, minute: int, count: int) -> None:
        if function_id in self.degraded_since:
            return
        try:
            self._inner.observe_invocation(function_id, minute, count)
        except Exception as exc:  # noqa: BLE001
            self._degrade(function_id, minute, "observe_invocation", exc)

    def cold_variant(self, function_id: int, minute: int):
        if function_id in self.degraded_since:
            return self._fallback_variant(function_id)
        try:
            return self._inner.cold_variant(function_id, minute)
        except Exception as exc:  # noqa: BLE001
            self._degrade(function_id, minute, "cold_variant", exc)
            return self._fallback_variant(function_id)

    def plan(self, function_id: int, minute: int):
        if function_id in self.degraded_since:
            return self._fallback_plan(function_id)
        try:
            return self._inner.plan(function_id, minute)
        except Exception as exc:  # noqa: BLE001
            self._degrade(function_id, minute, "plan", exc)
            return self._fallback_plan(function_id)

    def review_minute(self, minute: int, schedule) -> None:
        if self._review_dead or not self._inner_has_review:
            return
        try:
            self._inner.review_minute(minute, schedule)
        except Exception as exc:  # noqa: BLE001
            self._record_fault(minute, -1, "review_minute", exc)
            self._review_dead = True

    def idle_review(self, minute: int, schedule) -> bool:
        if self._review_dead or not self._inner_has_review:
            return False
        try:
            return self._inner.idle_review(minute, schedule)
        except Exception as exc:  # noqa: BLE001
            self._record_fault(minute, -1, "idle_review", exc)
            self._review_dead = True
            return False

    # -- resilience reporting ----------------------------------------------
    def resilience_stats(self, horizon: int) -> dict[str, int]:
        """Counters the engines fold into ``RunResult`` after the run."""
        degraded = sum(
            max(0, horizon - since) for since in self.degraded_since.values()
        )
        return {
            "n_policy_faults": self._n_faults,
            "n_degraded_minutes": degraded,
        }

    def __repr__(self) -> str:
        return f"ResilientPolicy({self._inner!r})"
