"""The fault model: what goes wrong, how often, under which seed.

A :class:`FaultPlan` is a frozen, picklable description of the platform
failures a run should be subjected to. Production serverless platforms
see container spawns fail and get retried, cold starts stall under node
contention, co-located workloads steal memory, and trace/event pipelines
drop, duplicate and reorder invocations — none of which the clean-room
simulator exercises by itself. The plan covers four fault axes:

- **container spawn failures** — each cold start's spawn attempt fails
  with probability ``spawn_failure_rate``; the platform retries up to
  ``max_spawn_retries`` times with linear backoff (failure *i* adds
  ``retry_penalty_s * (i + 1)`` seconds of user-visible service time);
  after the retry budget the fallback spawn always succeeds, so no
  invocation is ever lost;
- **cold-start slowdowns** — with probability ``cold_slowdown_rate`` a
  cold start's penalty (the seconds it adds over a warm invocation) is
  multiplied by ``cold_slowdown_factor``;
- **memory-pressure spikes** — each minute is a spike minute with
  probability ``pressure_rate``; during a spike, co-located load caps
  the keep-alive memory available to the run at ``pressure_cap_mb``
  (combined with ``SimulationConfig.memory_capacity_mb`` by ``min`` when
  both are set), and the platform's random-downgrade pressure valve
  enforces the transient cap exactly like the standing one;
- **trace perturbations** — before the run starts, each invocation-
  carrying (function, minute) cell is independently dropped
  (``drop_rate``), doubled (``duplicate_rate``) or delivered out of
  order into the neighbouring minute (``jitter_rate``).

Determinism contract: every draw is keyed on ``seed`` (plus the fault
axis and, for per-decision faults, the (function, minute) coordinate)
through the ``SeedSequence`` spawning protocol — never on call order.
The same plan therefore produces the *same* faults on the reference and
event-driven engines, which is what lets the golden equivalence tests
cover faults-on runs bit-exactly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.traces.schema import Trace
from repro.utils.specs import parse_kv_spec

__all__ = ["FaultPlan"]

# spawn_key salts: one namespace per fault axis, so adding an axis never
# shifts another axis's stream.
SALT_SPAWN = 1
SALT_PRESSURE = 2
SALT_TRACE = 3

#: ``--faults`` spec keys -> (FaultPlan field, cast). Shared between the
#: CLI flag and :meth:`FaultPlan.from_spec`.
_SPEC_FIELDS = {
    "seed": ("seed", int),
    "spawn": ("spawn_failure_rate", float),
    "retries": ("max_spawn_retries", int),
    "retry-penalty": ("retry_penalty_s", float),
    "slow": ("cold_slowdown_rate", float),
    "slow-factor": ("cold_slowdown_factor", float),
    "pressure": ("pressure_rate", float),
    "pressure-mb": ("pressure_cap_mb", float),
    "drop": ("drop_rate", float),
    "dup": ("duplicate_rate", float),
    "jitter": ("jitter_rate", float),
}


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable description of injected platform faults.

    The all-defaults plan injects nothing; a run with ``faults=None``
    and one with ``faults=FaultPlan()`` are bit-identical.
    """

    seed: int = 0
    spawn_failure_rate: float = 0.0
    max_spawn_retries: int = 2
    retry_penalty_s: float = 2.0
    cold_slowdown_rate: float = 0.0
    cold_slowdown_factor: float = 3.0
    pressure_rate: float = 0.0
    pressure_cap_mb: float | None = None
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    jitter_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "spawn_failure_rate", "cold_slowdown_rate", "pressure_rate",
            "drop_rate", "duplicate_rate", "jitter_rate",
        ):
            _check_rate(name, getattr(self, name))
        if self.max_spawn_retries < 0:
            raise ValueError(
                f"max_spawn_retries must be >= 0, got {self.max_spawn_retries}"
            )
        if self.retry_penalty_s < 0.0:
            raise ValueError(
                f"retry_penalty_s must be >= 0, got {self.retry_penalty_s}"
            )
        if self.cold_slowdown_factor < 1.0:
            raise ValueError(
                "cold_slowdown_factor must be >= 1 (1 = no slowdown), "
                f"got {self.cold_slowdown_factor}"
            )
        if self.pressure_cap_mb is not None and self.pressure_cap_mb <= 0:
            raise ValueError(
                f"pressure_cap_mb must be positive, got {self.pressure_cap_mb}"
            )
        if self.pressure_rate > 0.0 and self.pressure_cap_mb is None:
            raise ValueError(
                "pressure_rate > 0 requires pressure_cap_mb (the transient "
                "memory cap a spike imposes)"
            )

    # -- which machinery does this plan need? -----------------------------
    @property
    def has_pressure(self) -> bool:
        return self.pressure_rate > 0.0 and self.pressure_cap_mb is not None

    @property
    def injects_runtime(self) -> bool:
        """True when the engines must run a live injector (anything beyond
        pre-run trace perturbation)."""
        return (
            self.spawn_failure_rate > 0.0
            or self.cold_slowdown_rate > 0.0
            or self.has_pressure
        )

    @property
    def perturbs_trace(self) -> bool:
        return (
            self.drop_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.jitter_rate > 0.0
        )

    @property
    def active(self) -> bool:
        return self.injects_runtime or self.perturbs_trace

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready); inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FaultPlan fields {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**data)

    @classmethod
    def from_spec(cls, spec: str, flag: str = "--faults") -> "FaultPlan":
        """Parse the CLI's compact form, e.g.
        ``"seed=7,spawn=0.1,retries=2,pressure=0.05,pressure-mb=4000"``.

        Raises :class:`repro.utils.specs.SpecError` (prints and exits in
        CLI context) on unknown keys or malformed values.
        """
        return cls(**parse_kv_spec(spec, flag, _SPEC_FIELDS))

    # -- trace perturbation ------------------------------------------------
    def perturb_trace(self, trace: Trace) -> Trace:
        """Apply drop/duplicate/jitter perturbations, deterministically.

        Returns ``trace`` unchanged when no perturbation rate is set.
        Each axis draws its own full uniform matrix regardless of the
        other rates, so enabling one axis never shifts another's draws.
        Jitter moves a cell's whole count into the next minute (the
        previous minute at the horizon edge), modelling late/out-of-order
        event delivery; moves are computed against a snapshot mask, so a
        jittered cell never cascades.
        """
        if not self.perturbs_trace:
            return trace
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(SALT_TRACE,))
        )
        counts = trace.counts.copy()
        shape = counts.shape
        u_drop = rng.random(shape)
        u_dup = rng.random(shape)
        u_jit = rng.random(shape)
        if self.drop_rate > 0.0:
            counts[(counts > 0) & (u_drop < self.drop_rate)] = 0
        if self.duplicate_rate > 0.0:
            dup = (counts > 0) & (u_dup < self.duplicate_rate)
            counts[dup] *= 2
        if self.jitter_rate > 0.0 and shape[1] > 1:
            moved = np.zeros_like(counts)
            for fid, t in np.argwhere((counts > 0) & (u_jit < self.jitter_rate)):
                dst = t + 1 if t + 1 < shape[1] else t - 1
                moved[fid, dst] += counts[fid, t]
                counts[fid, t] = 0
            counts += moved
        return Trace(
            counts=counts, functions=trace.functions, name=f"{trace.name}+faults"
        )
