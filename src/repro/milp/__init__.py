"""Mixed-Integer Linear Programming comparator (§V, Figure 9).

The paper contrasts PULSE's greedy Algorithm 2 with an MILP that, at each
peak, "simultaneously evaluates all selected models and their variants,
aiming to identify the combination that maximizes utility value while
adhering to the memory budget constraint". This package provides:

- :mod:`repro.milp.formulation` — builds the MILP (variables, objective,
  constraints) from a peak's state;
- :mod:`repro.milp.policy` — :class:`MilpPolicy`, a drop-in policy that is
  PULSE with Algorithm 2 replaced by the MILP solve (scipy's HiGHS
  backend), so Figure 9's overhead and accuracy comparison is
  apples-to-apples.
"""

from repro.milp.formulation import MilpProblem, build_peak_milp
from repro.milp.policy import MilpPolicy

__all__ = ["MilpPolicy", "MilpProblem", "build_peak_milp"]
