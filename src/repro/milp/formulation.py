"""MILP formulation of the peak keep-alive selection.

At a peak minute, for every kept-alive model *f* (current variant level
``L_f``) the solver chooses one option: keep some level ``l ≤ L_f`` or —
when the function is droppable (no remaining invocation probability, the
same protection PULSE's greedy applies) — drop the keep-alive entirely.

Binary variable ``x_{f,l}`` selects level *l* for function *f*::

    maximize    Σ_{f,l} U_{f,l} · x_{f,l}
    subject to  Σ_l x_{f,l} ≤ 1                      (one choice per fn;
                                                      slack = drop, only
                                                      for droppable fns)
                Σ_{f,l} mem_{f,l} · x_{f,l} ≤ budget (the flatten target)
                Σ_l x_{f,l} = 1 for protected fns    (must keep something)

with ``U_{f,l} = Ai_{f,l} + Pr_f + Ip_f`` — the same components as
Algorithm 2, evaluated per candidate level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.variants import ModelFamily, ModelVariant

__all__ = ["MilpProblem", "build_peak_milp"]


@dataclass(frozen=True)
class MilpProblem:
    """A fully materialized peak-selection MILP.

    ``options[i]`` describes variable *i* as ``(function_id, level)``.
    Solve with :func:`repro.milp.policy.solve_milp` (or scipy directly):
    minimize ``c @ x`` subject to ``A_ub @ x <= b_ub``,
    ``A_eq @ x == b_eq``, ``x`` binary.
    """

    options: tuple[tuple[int, int], ...]
    c: np.ndarray  # negated utilities (scipy minimizes)
    memory: np.ndarray  # per-option memory, MB
    budget: float
    function_rows: dict[int, list[int]]  # fid -> option indices
    protected: frozenset[int]  # fids that must keep >= the lowest variant

    @property
    def n_variables(self) -> int:
        return len(self.options)


def build_peak_milp(
    alive: dict[int, ModelVariant],
    assignment: dict[int, ModelFamily],
    priorities: dict[int, float],
    invocation_probabilities: dict[int, float],
    droppable: dict[int, bool],
    budget: float,
) -> MilpProblem:
    """Build the peak MILP from the current keep-alive state.

    ``alive`` maps each kept-alive function to its currently planned
    variant; candidate levels range from 0 to that variant's level
    (the MILP may only downgrade, like Algorithm 2).
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    options: list[tuple[int, int]] = []
    utilities: list[float] = []
    memory: list[float] = []
    function_rows: dict[int, list[int]] = {}
    protected: set[int] = set()
    for fid in sorted(alive):
        family = assignment[fid]
        current_level = alive[fid].level
        pr = priorities.get(fid, 0.0)
        ip = invocation_probabilities.get(fid, 0.0)
        rows: list[int] = []
        for level in range(current_level + 1):
            variant = family.variant(level)
            ai = family.accuracy_improvement(variant)
            options.append((fid, level))
            utilities.append(ai + pr + min(ip, 1.0))
            memory.append(variant.memory_mb)
            rows.append(len(options) - 1)
        function_rows[fid] = rows
        if not droppable.get(fid, False):
            protected.add(fid)
    return MilpProblem(
        options=tuple(options),
        c=-np.asarray(utilities, dtype=float),
        memory=np.asarray(memory, dtype=float),
        budget=float(budget),
        function_rows=function_rows,
        protected=frozenset(protected),
    )
