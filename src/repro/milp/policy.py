"""The MILP keep-alive policy: PULSE with Algorithm 2 replaced by a solver.

Identical to :class:`~repro.core.pulse.PulsePolicy` in every respect —
same inter-arrival estimator, threshold mapping, peak detector and
priority structure — except that peak flattening solves the global
selection MILP (scipy/HiGHS) instead of running the greedy downgrade
loop. This isolates exactly the comparison Figure 9 makes: per-decision
overhead and end-to-end accuracy of the two optimizers.

The paper's observation that "MILP tends to favor lower-quality models
due to lack of iterative adaptability" falls out of the formulation: a
family's lowest variant carries its full accuracy as utility while higher
variants only carry deltas, so joint maximization under a memory budget
drives every flagged function straight to its cheapest level, whereas the
greedy stops downgrading the moment the peak flattens.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
from scipy.optimize import LinearConstraint, milp
from scipy.sparse import csr_matrix

from repro.core.pulse import PulseConfig, PulsePolicy
from repro.milp.formulation import MilpProblem, build_peak_milp
from repro.runtime.events import EventKind
from repro.runtime.schedule import KeepAliveSchedule

__all__ = ["MilpPolicy", "solve_milp"]


def solve_milp(problem: MilpProblem) -> dict[int, int | None]:
    """Solve a peak MILP; returns {function_id: chosen level or None=drop}.

    Raises ``RuntimeError`` when HiGHS reports failure on a feasible
    problem (protected functions make infeasibility possible only if the
    budget is below their combined lowest-variant memory; in that case
    the budget constraint is relaxed to that floor).
    """
    n = problem.n_variables
    if n == 0:
        return {}
    # Feasibility floor: protected functions must keep >= lowest variant.
    floor = sum(
        min(problem.memory[i] for i in problem.function_rows[fid])
        for fid in problem.protected
    )
    budget = max(problem.budget, floor)

    rows, cols, vals = [], [], []
    b_lo, b_hi = [], []
    row = 0
    for fid, idxs in sorted(problem.function_rows.items()):
        for i in idxs:
            rows.append(row)
            cols.append(i)
            vals.append(1.0)
        if fid in problem.protected:
            b_lo.append(1.0)
        else:
            b_lo.append(0.0)
        b_hi.append(1.0)
        row += 1
    # Memory budget row.
    for i in range(n):
        rows.append(row)
        cols.append(i)
        vals.append(float(problem.memory[i]))
    b_lo.append(0.0)
    b_hi.append(budget)
    row += 1

    a = csr_matrix((vals, (rows, cols)), shape=(row, n))
    constraints = LinearConstraint(a, np.array(b_lo), np.array(b_hi))
    res = milp(
        c=problem.c,
        constraints=constraints,
        integrality=np.ones(n),
        bounds=(0, 1),
    )
    if not res.success:
        raise RuntimeError(f"MILP solve failed: {res.message}")
    chosen: dict[int, int | None] = {}
    for fid, idxs in problem.function_rows.items():
        chosen[fid] = None
        for i in idxs:
            if res.x[i] > 0.5:
                chosen[fid] = problem.options[i][1]
                break
    return chosen


class MilpPolicy(PulsePolicy):
    """PULSE with the global stage solved as an MILP."""

    def __init__(self, config: PulseConfig | None = None):
        super().__init__(config)
        self.name = "MILP"
        self.n_solves = 0

    def review_minute(self, minute: int, schedule: KeepAliveSchedule) -> None:
        assert self._gopt is not None and self._fopt is not None
        gopt = self._gopt
        if not self.config.enable_global:
            gopt.detector.observe(schedule.memory_at(minute))
            return
        obs = self.obs
        if obs.spans_enabled:
            t0 = perf_counter()
            demand = schedule.memory_at(minute)
            prior = gopt.detector.prior_memory()
            is_peak = gopt.detector.is_peak(demand, prior)
            obs.spans.add("peak-detect", perf_counter() - t0)
        else:
            demand = schedule.memory_at(minute)
            prior = gopt.detector.prior_memory()
            is_peak = gopt.detector.is_peak(demand, prior)
        current = demand
        if is_peak:
            gopt.n_peak_minutes += 1
            alive = schedule.alive_at(minute)
            if alive:
                target = gopt.detector.flatten_target(prior)
                if obs.decisions_enabled:
                    obs.record_peak(minute, demand, prior, target)
                t0 = perf_counter() if obs.spans_enabled else 0.0
                normalized = gopt.priority.normalized()
                problem = build_peak_milp(
                    alive=alive,
                    assignment=self.assignment,
                    priorities={fid: float(normalized[fid]) for fid in alive},
                    invocation_probabilities={
                        fid: self._fopt.invocation_probability(fid, minute)
                        for fid in alive
                    },
                    droppable={
                        fid: self._fopt.max_remaining_probability(fid, minute) == 0.0
                        for fid in alive
                    },
                    budget=target,
                )
                chosen = solve_milp(problem)
                self.n_solves += 1
                self._apply(chosen, alive, minute, schedule)
                current = schedule.memory_at(minute)
                if obs.spans_enabled:
                    # MILP build + solve + apply is the analogue of the
                    # greedy's downgrade selection (Figure 9's comparison).
                    obs.spans.add("downgrade-select", perf_counter() - t0)
        gopt.detector.observe(demand, current)

    def _apply(
        self,
        chosen: dict[int, int | None],
        alive: dict,
        minute: int,
        schedule: KeepAliveSchedule,
    ) -> None:
        """Realize the solver's selection as schedule downgrades."""
        assert self._gopt is not None
        obs = self.obs
        record = obs.decisions_enabled or self.event_sink is not None
        for fid, level in chosen.items():
            current_level = alive[fid].level
            family = self.assignment[fid]
            if level is None:
                steps = current_level + 1  # down through lowest, then drop
            else:
                steps = current_level - level
            for _ in range(steps):
                schedule.downgrade(fid, minute, family, allow_drop=(level is None))
                self._gopt.priority.record_downgrade(fid)
                self._gopt.n_downgrades += 1
                if record:
                    frm = schedule.alive_variant(fid, minute)
                    # The entry at ``minute`` now holds the post-step
                    # variant; reconstruct the pre-step name from it
                    # (one level up, or the dropped variant's name).
                    if frm is not None:
                        new_name = frm.name
                        from_name = family.variant(frm.level + 1).name
                    else:
                        new_name = None
                        from_name = family.lowest.name
                    if self.event_sink is not None:
                        self.event_sink.emit(
                            minute, EventKind.DOWNGRADE, fid, new_name
                        )
                    if obs.decisions_enabled:
                        obs.record_downgrade(minute, fid, from_name, new_name)
