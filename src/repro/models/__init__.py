"""Model-variant zoo substrate.

The paper characterizes every ML model variant by four scalars measured on
AWS Lambda (Table I): warm service time, cold service time, keep-alive cost
and accuracy — plus the container memory footprint that drives keep-alive
memory accounting. This subpackage provides:

- :mod:`repro.models.variants` — the :class:`ModelVariant` / :class:`ModelFamily`
  dataclasses and ordering semantics ("downgrade by one variant");
- :mod:`repro.models.zoo` — the registry pre-populated with the paper's
  model families (Tables I & IV);
- :mod:`repro.models.latency` — stochastic service-time samplers;
- :mod:`repro.models.profiler` — the simulated Lambda profiling campaign
  (cold-start forcing via memory-size manipulation, 1000-input warm runs)
  that regenerates Table I from noisy measurements.
"""

from repro.models.variants import ModelFamily, ModelVariant
from repro.models.zoo import ModelZoo, default_zoo
from repro.models.latency import LatencyModel
from repro.models.datasets import DATASETS, SyntheticDataset, dataset_for
from repro.models.profiler import LambdaProfiler, ProfileReport

__all__ = [
    "DATASETS",
    "LambdaProfiler",
    "LatencyModel",
    "ModelFamily",
    "ModelVariant",
    "ModelZoo",
    "ProfileReport",
    "SyntheticDataset",
    "dataset_for",
    "default_zoo",
]
