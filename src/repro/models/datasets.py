"""Synthetic stand-ins for the evaluation datasets (Table IV).

The paper profiles each variant with "1000 distinct inputs drawn from the
datasets" — sst2 sentences for BERT, COCO images for YOLO, wikitext
prompts for GPT, CIFAR-10 images for ResNet/DenseNet. The datasets
themselves are not redistributable here, so this module generates inputs
with the *property that matters to the profiler*: a per-input latency
modulation with the right shape for each task —

- **sst2-like**: sentence lengths are short and right-skewed; latency
  scales mildly with token count;
- **wikitext-like**: generation prompts/continuations have heavy-tailed
  lengths; latency scales strongly with sequence length (autoregressive
  decoding);
- **COCO-like**: images are fixed-size but object counts vary; detection
  latency rises slightly with crowded scenes (NMS and post-processing);
- **CIFAR-10-like**: fixed 32×32 inputs; per-input latency is nearly
  constant (classification is input-independent).

Each dataset yields :class:`SyntheticInput` records whose ``complexity``
has mean 1.0, so a variant's expected warm latency stays its Table I
scalar while individual invocations vary realistically.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive_int

__all__ = [
    "SyntheticInput",
    "SyntheticDataset",
    "Sst2Like",
    "WikitextLike",
    "CocoLike",
    "Cifar10Like",
    "dataset_for",
    "DATASETS",
]


@dataclass(frozen=True)
class SyntheticInput:
    """One drawn input.

    ``size`` is the task-specific magnitude (tokens, objects, pixels);
    ``complexity`` is the latency multiplier relative to the variant's
    mean service time (population mean 1.0).
    """

    input_id: int
    size: float
    complexity: float

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"size must be >= 0, got {self.size}")
        if self.complexity <= 0:
            raise ValueError(f"complexity must be > 0, got {self.complexity}")


class SyntheticDataset(abc.ABC):
    """A deterministic generator of task-shaped inputs."""

    #: Dataset name as Table IV spells it.
    name: str = "dataset"
    #: Task the dataset drives.
    task: str = "task"

    @abc.abstractmethod
    def _raw_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw task-specific size measures."""

    @abc.abstractmethod
    def _complexity(self, sizes: np.ndarray) -> np.ndarray:
        """Map sizes to latency multipliers (before mean-normalization)."""

    def sample(self, n: int, seed: int | np.random.Generator | None = None) -> list[SyntheticInput]:
        """Draw ``n`` distinct inputs (deterministic given the seed)."""
        check_positive_int("n", n)
        rng = rng_from_seed(seed)
        sizes = self._raw_sizes(rng, n).astype(float)
        complexity = self._complexity(sizes)
        complexity = complexity / complexity.mean()  # E[complexity] == 1
        return [
            SyntheticInput(input_id=i, size=float(sizes[i]),
                           complexity=float(complexity[i]))
            for i in range(n)
        ]


class Sst2Like(SyntheticDataset):
    """Short movie-review sentences; mild latency dependence on length."""

    name = "sst2"
    task = "sentiment analysis"

    def _raw_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Token counts: right-skewed, mode ~10, capped at BERT's 128.
        return np.clip(rng.gamma(shape=3.0, scale=4.0, size=n) + 3, 3, 128)

    def _complexity(self, sizes: np.ndarray) -> np.ndarray:
        # Transformer encoders batch to max length; mild linear term.
        return 0.8 + 0.2 * sizes / sizes.mean()


class WikitextLike(SyntheticDataset):
    """Heavy-tailed prompt lengths; strong latency dependence (decoding)."""

    name = "wikitext"
    task = "text generation"

    def _raw_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.clip(rng.lognormal(mean=4.0, sigma=0.6, size=n), 8, 1024)

    def _complexity(self, sizes: np.ndarray) -> np.ndarray:
        # Autoregressive decoding: latency ~ generated length.
        return 0.3 + 0.7 * sizes / sizes.mean()


class CocoLike(SyntheticDataset):
    """Fixed-size images with varying object counts."""

    name = "COCO"
    task = "object detection"

    def _raw_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Objects per image: COCO averages ~7, heavy right tail.
        return np.clip(rng.poisson(7.0, size=n), 0, 60).astype(float)

    def _complexity(self, sizes: np.ndarray) -> np.ndarray:
        # Backbone dominates; NMS/post-processing add a small term.
        return 0.95 + 0.05 * sizes / max(sizes.mean(), 1.0)


class Cifar10Like(SyntheticDataset):
    """Fixed 32x32 inputs; effectively constant latency."""

    name = "CIFAR-10"
    task = "image classification"

    def _raw_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, 32.0 * 32.0)

    def _complexity(self, sizes: np.ndarray) -> np.ndarray:
        return np.ones_like(sizes)


DATASETS: dict[str, SyntheticDataset] = {
    d.name: d for d in (Sst2Like(), WikitextLike(), CocoLike(), Cifar10Like())
}


def dataset_for(name: str) -> SyntheticDataset:
    """Look up the dataset a Table IV family uses, by its dataset name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; known: {sorted(DATASETS)}"
        ) from None
