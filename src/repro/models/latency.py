"""Stochastic service-time samplers.

The paper measures each variant's service time over 1000 distinct inputs;
individual invocations are noisy around the per-variant mean. The
simulator's default accounting uses the deterministic means (so one run's
metrics are exactly reproducible), while the profiler and examples use
:class:`LatencyModel` to sample realistic per-invocation latencies.

The sampler uses a lognormal multiplicative-noise model, the standard
shape for serverless invocation latencies (positive support, right skew):
``sample = mean * LogNormal(-sigma^2 / 2, sigma)`` so that the expectation
is exactly ``mean``.
"""

from __future__ import annotations

import numpy as np

from repro.models.variants import ModelVariant
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_fraction

__all__ = ["LatencyModel"]


class LatencyModel:
    """Samples per-invocation warm and cold service times for variants.

    Parameters
    ----------
    warm_cv:
        Coefficient of variation for warm invocations (execution noise).
    cold_cv:
        Coefficient of variation for cold invocations (container creation
        and model load dominate and are noisier than execution).
    seed:
        Seed or generator for reproducible sampling.
    """

    def __init__(
        self,
        warm_cv: float = 0.05,
        cold_cv: float = 0.15,
        seed: int | np.random.Generator | None = None,
    ):
        check_fraction("warm_cv", warm_cv)
        check_fraction("cold_cv", cold_cv)
        self.warm_cv = warm_cv
        self.cold_cv = cold_cv
        self._rng = rng_from_seed(seed)

    @staticmethod
    def _sigma(cv: float) -> float:
        # For X ~ LogNormal(mu, sigma), CV^2 = exp(sigma^2) - 1.
        return float(np.sqrt(np.log1p(cv * cv)))

    def _sample(self, mean: float, cv: float, n: int | None) -> float | np.ndarray:
        if cv == 0.0:
            return mean if n is None else np.full(n, mean)
        sigma = self._sigma(cv)
        mu = -0.5 * sigma * sigma  # E[LogNormal(mu, sigma)] == 1
        noise = self._rng.lognormal(mean=mu, sigma=sigma, size=n)
        return mean * noise

    def warm(self, variant: ModelVariant, n: int | None = None) -> float | np.ndarray:
        """Sample ``n`` warm service times (or one scalar when ``n`` is None)."""
        return self._sample(variant.warm_service_time_s, self.warm_cv, n)

    def cold(self, variant: ModelVariant, n: int | None = None) -> float | np.ndarray:
        """Sample ``n`` cold service times (or one scalar when ``n`` is None)."""
        return self._sample(variant.cold_service_time_s, self.cold_cv, n)
