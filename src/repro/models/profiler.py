"""Simulated AWS-Lambda profiling campaign (regenerates Table I).

The paper characterizes each variant with a specific measurement protocol
(§IV, *Simulation*):

1. **Cold starts** — run once, then change the Lambda function's memory
   size (which forces a fresh container), do a dummy invocation, revert
   the memory size, and invoke again: that invocation is a measured cold
   start. Repeated to collect a cold-start sample.
2. **Warm starts** — one dummy run followed by 1000 consecutive
   invocations with distinct dataset inputs; the container stays alive so
   every one of the 1000 is a warm start.
3. **Keep-alive cost** — derived from the container memory footprint and
   the provider's per-MB-hour price.

We do not have AWS Lambda here, so :class:`LambdaProfiler` simulates the
same protocol against the zoo's ground-truth scalars plus measurement
noise, and reports sample statistics. Running the campaign and printing
the report reproduces Table I (see ``benchmarks/bench_table1.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.datasets import DATASETS, SyntheticInput, dataset_for
from repro.models.latency import LatencyModel
from repro.models.variants import ModelVariant
from repro.models.zoo import IMPLIED_PRICE_CENTS_PER_MB_HOUR, ModelZoo
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive_int

__all__ = ["LambdaProfiler", "ProfileReport", "VariantProfile"]


@dataclass(frozen=True)
class VariantProfile:
    """Measured characterization of one variant (one Table I row)."""

    variant: ModelVariant
    warm_mean_s: float
    warm_p50_s: float
    warm_p99_s: float
    cold_mean_s: float
    cold_p99_s: float
    keepalive_cost_cents_per_hour: float
    n_warm_samples: int
    n_cold_samples: int

    @property
    def cold_start_penalty_s(self) -> float:
        """Measured mean extra latency a cold start adds."""
        return self.cold_mean_s - self.warm_mean_s


@dataclass(frozen=True)
class ProfileReport:
    """The full campaign output: one profile per variant."""

    profiles: tuple[VariantProfile, ...]

    def __iter__(self):
        return iter(self.profiles)

    def __len__(self) -> int:
        return len(self.profiles)

    def profile_for(self, name: str) -> VariantProfile:
        for p in self.profiles:
            if p.variant.name == name:
                return p
        raise KeyError(f"no profile for variant {name!r}")

    def as_rows(self) -> list[dict[str, float | str]]:
        """Table-I-shaped rows (model, service time, cost, accuracy)."""
        return [
            {
                "model": p.variant.name,
                "service_time_s": p.warm_mean_s,
                "keepalive_cost_cents_per_hour": p.keepalive_cost_cents_per_hour,
                "accuracy_percent": p.variant.accuracy,
            }
            for p in self.profiles
        ]


class _SimulatedLambda:
    """Minimal stand-in for a deployed Lambda function.

    Tracks container identity so the memory-size manipulation trick works
    exactly the way the paper exploits it: changing the memory
    configuration discards the warm container.
    """

    def __init__(self, variant: ModelVariant, latency: LatencyModel):
        self._variant = variant
        self._latency = latency
        self._configured_memory = variant.memory_mb
        self._container_memory: float | None = None  # None -> no warm container

    @property
    def memory_size(self) -> float:
        return self._configured_memory

    def set_memory_size(self, memory_mb: float) -> None:
        """Reconfigure memory; a mismatched warm container is discarded."""
        if memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {memory_mb}")
        self._configured_memory = memory_mb

    def invoke(self, payload: SyntheticInput | None = None) -> tuple[float, bool]:
        """Invoke once with an optional input; return (service_time_s, was_cold).

        The input's ``complexity`` scales execution time (not the
        container-creation part of a cold start, which is input-independent).
        """
        cold = self._container_memory != self._configured_memory
        self._container_memory = self._configured_memory
        factor = payload.complexity if payload is not None else 1.0
        if cold:
            exec_part = float(self._latency.warm(self._variant)) * factor
            startup = float(self._latency.cold(self._variant)) - float(
                self._variant.warm_service_time_s
            )
            return max(startup, 0.0) + exec_part, True
        return float(self._latency.warm(self._variant)) * factor, False


class LambdaProfiler:
    """Runs the paper's measurement protocol against simulated Lambdas."""

    def __init__(
        self,
        zoo: ModelZoo,
        n_warm_samples: int = 1000,
        n_cold_samples: int = 30,
        price_cents_per_mb_hour: float = IMPLIED_PRICE_CENTS_PER_MB_HOUR,
        seed: int | np.random.Generator | None = None,
    ):
        check_positive_int("n_warm_samples", n_warm_samples)
        check_positive_int("n_cold_samples", n_cold_samples)
        self.zoo = zoo
        self.n_warm_samples = n_warm_samples
        self.n_cold_samples = n_cold_samples
        self.price_cents_per_mb_hour = price_cents_per_mb_hour
        self._rng = rng_from_seed(seed)

    def _dataset_inputs(self, variant: ModelVariant, n: int) -> list[SyntheticInput]:
        """Draw ``n`` distinct inputs from the variant family's dataset."""
        dataset_name = None
        for fam in self.zoo:
            if fam.name == variant.family:
                dataset_name = fam.dataset
                break
        if dataset_name in DATASETS:
            return dataset_for(dataset_name).sample(n, seed=self._rng)
        # Unknown dataset (custom zoo): constant-complexity inputs.
        return [SyntheticInput(i, 1.0, 1.0) for i in range(n)]

    def profile_variant(self, variant: ModelVariant) -> VariantProfile:
        """Characterize one variant with the cold/warm campaigns."""
        latency = LatencyModel(seed=self._rng)
        fn = _SimulatedLambda(variant, latency)
        inputs = self._dataset_inputs(variant, self.n_warm_samples)

        # Cold campaign: initial run establishes the container; then the
        # memory-size round-trip forces a fresh container each iteration.
        fn.invoke()
        cold_samples = np.empty(self.n_cold_samples)
        original = fn.memory_size
        for i in range(self.n_cold_samples):
            fn.set_memory_size(original + 64.0)  # arbitrary different value
            fn.invoke()  # dummy invocation on the altered configuration
            fn.set_memory_size(original)
            t, was_cold = fn.invoke()
            if not was_cold:
                raise RuntimeError(
                    "memory-size manipulation failed to force a cold start"
                )
            cold_samples[i] = t

        # Warm campaign: a dummy run, then consecutive invocations over the
        # distinct dataset inputs — all warm because the container never
        # goes idle.
        fn.invoke()
        warm_samples = np.empty(self.n_warm_samples)
        for i in range(self.n_warm_samples):
            t, was_cold = fn.invoke(inputs[i])
            if was_cold:
                raise RuntimeError("warm campaign unexpectedly hit a cold start")
            warm_samples[i] = t

        return VariantProfile(
            variant=variant,
            warm_mean_s=float(warm_samples.mean()),
            warm_p50_s=float(np.percentile(warm_samples, 50)),
            warm_p99_s=float(np.percentile(warm_samples, 99)),
            cold_mean_s=float(cold_samples.mean()),
            cold_p99_s=float(np.percentile(cold_samples, 99)),
            keepalive_cost_cents_per_hour=variant.memory_mb
            * self.price_cents_per_mb_hour,
            n_warm_samples=self.n_warm_samples,
            n_cold_samples=self.n_cold_samples,
        )

    def run(self) -> ProfileReport:
        """Profile every variant in the zoo."""
        return ProfileReport(
            profiles=tuple(
                self.profile_variant(v) for fam in self.zoo for v in fam
            )
        )
