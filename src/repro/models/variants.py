"""Model variants and families.

A *family* is one ML model (BERT, YOLO, GPT, ResNet, DenseNet); its
*variants* are quality/size points of the same model, ordered by accuracy.
PULSE's two optimizers only ever move along this ordering: the
function-centric optimizer picks a variant per future minute, and the
global optimizer "downgrades by one variant" during memory peaks.

All quantities use the paper's units:

- ``warm_service_time_s`` / ``cold_service_time_s`` — seconds per invocation
  (cold includes container creation + model load + execution);
- ``keepalive_cost_cents_per_hour`` — provider cost of keeping one warm
  container of this variant alive for an hour (Table I column 3);
- ``accuracy`` — percent in [0, 100];
- ``memory_mb`` — container footprint counted against keep-alive memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["ModelVariant", "ModelFamily"]


@dataclass(frozen=True, order=False)
class ModelVariant:
    """One quality point of a model family.

    ``level`` is the index within the family's accuracy ordering:
    0 is the lowest-accuracy (cheapest) variant.
    """

    family: str
    name: str
    level: int
    accuracy: float
    warm_service_time_s: float
    cold_service_time_s: float
    keepalive_cost_cents_per_hour: float
    memory_mb: float

    def __post_init__(self) -> None:
        if not self.family:
            raise ValueError("family must be a non-empty string")
        if not self.name:
            raise ValueError("name must be a non-empty string")
        check_non_negative("level", self.level)
        if not (0.0 <= self.accuracy <= 100.0):
            raise ValueError(f"accuracy must be in [0, 100], got {self.accuracy!r}")
        check_positive("warm_service_time_s", self.warm_service_time_s)
        check_positive("cold_service_time_s", self.cold_service_time_s)
        if self.cold_service_time_s < self.warm_service_time_s:
            raise ValueError(
                "cold_service_time_s must be >= warm_service_time_s "
                f"({self.cold_service_time_s} < {self.warm_service_time_s})"
            )
        check_positive(
            "keepalive_cost_cents_per_hour", self.keepalive_cost_cents_per_hour
        )
        check_positive("memory_mb", self.memory_mb)

    @property
    def accuracy_fraction(self) -> float:
        """Accuracy as a value in [0, 1] (used by the utility function)."""
        return self.accuracy / 100.0

    @property
    def cold_start_penalty_s(self) -> float:
        """Extra seconds a cold start adds over a warm invocation."""
        return self.cold_service_time_s - self.warm_service_time_s

    def __repr__(self) -> str:  # compact, for logs and test output
        return (
            f"ModelVariant({self.name!r}, lvl={self.level}, "
            f"acc={self.accuracy:.2f}%, mem={self.memory_mb:.0f}MB)"
        )


@dataclass(frozen=True)
class ModelFamily:
    """An ordered collection of variants of the same model.

    Variants are stored lowest-accuracy first; ``levels`` are assigned by
    the constructor and must match the accuracy ordering.
    """

    name: str
    task: str
    dataset: str
    variants: tuple[ModelVariant, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError(f"family {self.name!r} must have at least one variant")
        accs = [v.accuracy for v in self.variants]
        if accs != sorted(accs):
            raise ValueError(
                f"family {self.name!r}: variants must be ordered by increasing accuracy"
            )
        for i, v in enumerate(self.variants):
            if v.level != i:
                raise ValueError(
                    f"family {self.name!r}: variant {v.name!r} has level {v.level}, "
                    f"expected {i}"
                )
            if v.family != self.name:
                raise ValueError(
                    f"variant {v.name!r} belongs to family {v.family!r}, "
                    f"not {self.name!r}"
                )

    def __len__(self) -> int:
        return len(self.variants)

    def __iter__(self):
        return iter(self.variants)

    @property
    def n_variants(self) -> int:
        """Number of quality points (the paper's *N*)."""
        return len(self.variants)

    @property
    def lowest(self) -> ModelVariant:
        """The cheapest / least accurate variant."""
        return self.variants[0]

    @property
    def highest(self) -> ModelVariant:
        """The most accurate (most expensive) variant."""
        return self.variants[-1]

    def variant(self, level: int) -> ModelVariant:
        """Return the variant at ``level`` (0 = lowest accuracy)."""
        if not 0 <= level < len(self.variants):
            raise IndexError(
                f"family {self.name!r} has levels 0..{len(self.variants) - 1}, "
                f"got {level}"
            )
        return self.variants[level]

    def downgrade(self, variant: ModelVariant) -> ModelVariant | None:
        """Return the next-lower variant, or ``None`` when ``variant`` is
        already the lowest (the paper then drops the keep-alive entirely)."""
        self._check_member(variant)
        if variant.level == 0:
            return None
        return self.variants[variant.level - 1]

    def upgrade(self, variant: ModelVariant) -> ModelVariant | None:
        """Return the next-higher variant, or ``None`` at the top."""
        self._check_member(variant)
        if variant.level == len(self.variants) - 1:
            return None
        return self.variants[variant.level + 1]

    def accuracy_improvement(self, variant: ModelVariant) -> float:
        """The paper's *Ai* term, in [0, 1].

        Accuracy gained by keeping ``variant`` alive rather than the
        next-lower variant; for the lowest variant (no lower option) it is
        that variant's accuracy in decimal form.
        """
        self._check_member(variant)
        lower = self.downgrade(variant)
        if lower is None:
            return variant.accuracy_fraction
        return (variant.accuracy - lower.accuracy) / 100.0

    def _check_member(self, variant: ModelVariant) -> None:
        if variant.family != self.name:
            raise ValueError(
                f"variant {variant.name!r} is not a member of family {self.name!r}"
            )
        if not (
            0 <= variant.level < len(self.variants)
            and self.variants[variant.level] == variant
        ):
            raise ValueError(
                f"variant {variant.name!r} does not match the registered "
                f"variant at level {variant.level} of family {self.name!r}"
            )
