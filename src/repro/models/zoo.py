"""The model zoo: the paper's model families (Tables I & IV).

Table I of the paper publishes warm service time, keep-alive cost and
accuracy for the GPT, BERT and DenseNet variants; Table IV lists the full
set of families and variants (adding YOLO and ResNet, whose per-variant
scalars the paper does not tabulate — we fill those with standard published
model characteristics, marked ``estimated`` below and documented in
DESIGN.md).

Derived quantities
------------------
The paper does not publish per-variant memory or cold-start times, but both
are mechanically implied:

- *memory*: Table I's keep-alive cost is proportional to container memory
  (providers bill keep-alive by MB-hours). We anchor GPT-Large at the
  paper's stated upper bound of 3500 MB, which fixes the implied price
  (:data:`IMPLIED_PRICE_CENTS_PER_MB_HOUR`) and therefore every other
  footprint. All derived footprints fall inside the paper's stated
  300–3500 MB range.
- *cold service time*: cold = warm + container initialization
  (:data:`CONTAINER_INIT_S`) + model load (memory divided by
  :data:`LOAD_BANDWIDTH_MB_S`), the standard serverless cold-start
  decomposition the paper's §I describes ("creation of the container and
  the loading of the initial code").
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.models.variants import ModelFamily, ModelVariant

__all__ = [
    "CONTAINER_INIT_S",
    "IMPLIED_PRICE_CENTS_PER_MB_HOUR",
    "LOAD_BANDWIDTH_MB_S",
    "ModelZoo",
    "default_zoo",
]

# Implied by anchoring GPT-Large (41.71 cents/hour in Table I) at the
# paper's 3500 MB upper bound: 41.71 / 3500.
IMPLIED_PRICE_CENTS_PER_MB_HOUR = 0.011917

# Cold-start decomposition parameters (container runtime init + model
# weight loading from the image registry into memory).
CONTAINER_INIT_S = 2.5
LOAD_BANDWIDTH_MB_S = 150.0


def _memory_from_cost(cents_per_hour: float) -> float:
    return cents_per_hour / IMPLIED_PRICE_CENTS_PER_MB_HOUR


def _cost_from_memory(memory_mb: float) -> float:
    return memory_mb * IMPLIED_PRICE_CENTS_PER_MB_HOUR


def _cold_time(warm_s: float, memory_mb: float) -> float:
    return warm_s + CONTAINER_INIT_S + memory_mb / LOAD_BANDWIDTH_MB_S


def _variant(
    family: str,
    name: str,
    level: int,
    accuracy: float,
    warm_s: float,
    *,
    cost_cents_per_hour: float | None = None,
    memory_mb: float | None = None,
) -> ModelVariant:
    """Build a variant from either a published cost or an estimated memory."""
    if (cost_cents_per_hour is None) == (memory_mb is None):
        raise ValueError("give exactly one of cost_cents_per_hour / memory_mb")
    if memory_mb is None:
        assert cost_cents_per_hour is not None
        memory_mb = _memory_from_cost(cost_cents_per_hour)
    if cost_cents_per_hour is None:
        cost_cents_per_hour = _cost_from_memory(memory_mb)
    return ModelVariant(
        family=family,
        name=name,
        level=level,
        accuracy=accuracy,
        warm_service_time_s=warm_s,
        cold_service_time_s=_cold_time(warm_s, memory_mb),
        keepalive_cost_cents_per_hour=cost_cents_per_hour,
        memory_mb=memory_mb,
    )


def _build_default_families() -> tuple[ModelFamily, ...]:
    # --- Table I families (published scalars) -------------------------------
    gpt = ModelFamily(
        name="GPT",
        task="text generation",
        dataset="wikitext",
        variants=(
            _variant("GPT", "GPT-Small", 0, 87.65, 12.90, cost_cents_per_hour=11.7),
            _variant("GPT", "GPT-Medium", 1, 92.35, 22.50, cost_cents_per_hour=22.57),
            _variant("GPT", "GPT-Large", 2, 93.45, 23.66, cost_cents_per_hour=41.71),
        ),
    )
    bert = ModelFamily(
        name="BERT",
        task="sentiment analysis",
        dataset="sst2",
        variants=(
            _variant("BERT", "BERT-Small", 0, 79.6, 1.09, cost_cents_per_hour=4.392),
            _variant("BERT", "BERT-Large", 1, 82.1, 2.21, cost_cents_per_hour=6.12),
        ),
    )
    densenet = ModelFamily(
        name="DenseNet",
        task="image classification",
        dataset="CIFAR-10",
        variants=(
            _variant(
                "DenseNet", "DenseNet-121", 0, 74.98, 1.09, cost_cents_per_hour=3.46
            ),
            _variant(
                "DenseNet", "DenseNet-169", 1, 76.2, 1.38, cost_cents_per_hour=3.53
            ),
            _variant(
                "DenseNet", "DenseNet-201", 2, 77.42, 1.65, cost_cents_per_hour=4.07
            ),
        ),
    )
    # --- Table IV families without published scalars (estimated) ------------
    # YOLO's lowest-variant accuracy of 56.8 % is stated in §III-B of the
    # paper; the rest follow published YOLO model cards.
    yolo = ModelFamily(
        name="YOLO",
        task="object detection",
        dataset="COCO",
        variants=(
            _variant("YOLO", "YOLO-s", 0, 56.8, 0.82, memory_mb=350.0),
            _variant("YOLO", "YOLO-l", 1, 67.3, 2.20, memory_mb=900.0),
            _variant("YOLO", "YOLO-x", 2, 68.9, 3.50, memory_mb=1400.0),
        ),
    )
    resnet = ModelFamily(
        name="ResNet",
        task="image classification",
        dataset="CIFAR-10",
        variants=(
            _variant("ResNet", "ResNet-50", 0, 76.13, 0.92, memory_mb=250.0),
            _variant("ResNet", "ResNet-101", 1, 77.37, 1.40, memory_mb=440.0),
            _variant("ResNet", "ResNet-152", 2, 78.31, 1.92, memory_mb=600.0),
        ),
    )
    return (bert, yolo, gpt, resnet, densenet)


class ModelZoo:
    """A registry of model families keyed by family name."""

    def __init__(self, families: tuple[ModelFamily, ...] | list[ModelFamily]):
        if not families:
            raise ValueError("a ModelZoo needs at least one family")
        self._families: dict[str, ModelFamily] = {}
        for fam in families:
            if fam.name in self._families:
                raise ValueError(f"duplicate family {fam.name!r}")
            self._families[fam.name] = fam

    def __len__(self) -> int:
        return len(self._families)

    def __iter__(self) -> Iterator[ModelFamily]:
        return iter(self._families.values())

    def __contains__(self, name: str) -> bool:
        return name in self._families

    @property
    def family_names(self) -> tuple[str, ...]:
        return tuple(self._families)

    def family(self, name: str) -> ModelFamily:
        """Look up a family by name."""
        try:
            return self._families[name]
        except KeyError:
            raise KeyError(
                f"unknown family {name!r}; known: {sorted(self._families)}"
            ) from None

    def family_of(self, variant: ModelVariant) -> ModelFamily:
        """Return the family a variant belongs to."""
        return self.family(variant.family)

    def all_variants(self) -> tuple[ModelVariant, ...]:
        """Every variant of every family, in registry order."""
        return tuple(v for fam in self for v in fam)

    def table1_rows(self) -> list[dict[str, float | str]]:
        """Rows in Table I's column order, for the characterization bench."""
        rows: list[dict[str, float | str]] = []
        for fam in self:
            for v in fam:
                rows.append(
                    {
                        "model": v.name,
                        "service_time_s": v.warm_service_time_s,
                        "keepalive_cost_cents_per_hour": v.keepalive_cost_cents_per_hour,
                        "accuracy_percent": v.accuracy,
                        "memory_mb": v.memory_mb,
                        "cold_service_time_s": v.cold_service_time_s,
                    }
                )
        return rows


def default_zoo() -> ModelZoo:
    """The zoo with the paper's five families (Tables I & IV)."""
    return ModelZoo(_build_default_families())
