"""Observability: decision traces, metrics and span timings for runs.

The simulation engine can answer *what* happened (``RunResult``'s headline
numbers, the event log) but not *why* — which probability band mapped an
offset to which variant, which function Algorithm 2 downgraded during a
peak and what its ``Uv = Ai + Pr + Ip`` terms were, why a particular
invocation found nothing warm. This subpackage is that explanatory layer:

- :mod:`repro.obs.metrics` — a registry of counters, gauges and
  histograms with labeled series;
- :mod:`repro.obs.spans`   — named wall-clock phase accumulators
  (estimate, band-mapping, peak-detect, downgrade-select,
  pool-reconcile, engine-total);
- :mod:`repro.obs.session` — :class:`ObsSession`, the per-run container
  the engine threads through the policy layer, and :data:`NULL_OBS`,
  the zero-cost disabled stand-in;
- :mod:`repro.obs.fleet`   — :class:`FleetObsSession`, the columnar
  variant the fleet engine uses: per-shard numpy partials plus seeded
  sampled decision traces instead of per-decision hook calls;
- :mod:`repro.obs.export`  — JSONL decision-trace dump/load and
  cross-run session merging (used by the sweep runner);
- :mod:`repro.obs.report`  — a self-contained SVG/HTML run report;
- :mod:`repro.obs.inspect` — :class:`TraceIndex`, which loads a JSONL
  trace and explains cold starts, band→variant assignments and
  downgrades (the ``python -m repro inspect`` backend).

Two hard guarantees, pinned by tests:

- **zero-cost when disabled** — with ``SimulationConfig.observe`` unset
  the engine allocates no recorder, no series and no per-minute
  bookkeeping; policies see only :data:`NULL_OBS` boolean flags;
- **metric-preserving when enabled** — instrumentation only *reads*
  simulation state (no RNG draws, no reordered float accumulation), so
  every headline ``RunResult`` field is bit-identical with observability
  on or off, on the reference, fast and fleet engines
  (``tests/test_obs_equivalence.py``, ``tests/test_fleet_obs.py``).
"""

from repro.obs.fleet import FleetObsSession
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.session import NULL_OBS, ObservabilityConfig, ObsSession
from repro.obs.spans import SpanTimer

__all__ = [
    "Counter",
    "FleetObsSession",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "ObservabilityConfig",
    "ObsSession",
    "SpanTimer",
]
