"""Exporters: JSONL decision traces and cross-run session merging.

The JSONL trace is the durable form of a run's telemetry — one JSON
object per line, streamable and greppable:

- line 1: a ``header`` record (schema version, policy name, headline
  ``RunResult`` numbers) so a trace is self-describing;
- then every decision record, in simulation order (``plan`` / ``cold`` /
  ``peak`` / ``downgrade`` — see :mod:`repro.obs.session`);
- then one ``metrics`` record (the registry as a flat dict) and one
  ``spans`` record (phase timings), when those layers were enabled.

Fleet-scale runs stream: :class:`StreamingTraceWriter` appends body
records to a ``<path>.part`` sidecar with a bounded flush interval while
the run is still going, then ``finalize`` assembles the canonical
artifact atomically (a crash mid-run leaves the sidecar behind as the
partial trace instead of a torn final file). :func:`render_prometheus`
snapshots a session's metrics registry in the Prometheus text
exposition format for scrape-style consumers.

This module deliberately imports nothing from ``repro.runtime`` —
``runtime.metrics`` imports :mod:`repro.obs`, so the dependency edge
must stay one-directional. ``RunResult`` is consumed duck-typed.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Mapping

from repro.obs.metrics import Histogram, HistogramSummary
from repro.obs.session import ObsSession
from repro.utils.atomicio import atomic_writer

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "StreamingTraceWriter",
    "merge_sessions",
    "read_trace_jsonl",
    "render_prometheus",
    "trace_records",
    "write_prometheus",
    "write_trace_jsonl",
]

#: Bumped whenever a record shape changes incompatibly.
TRACE_SCHEMA_VERSION = 1


def _header(result) -> dict:
    """The self-describing first line of a trace (duck-typed RunResult)."""
    return {
        "kind": "header",
        "schema_version": TRACE_SCHEMA_VERSION,
        "policy": result.policy_name,
        "n_invocations": result.n_invocations,
        "n_warm": result.n_warm,
        "n_cold": result.n_cold,
        "n_forced_downgrades": result.n_forced_downgrades,
        "n_spawn_failures": getattr(result, "n_spawn_failures", 0),
        "n_retries": getattr(result, "n_retries", 0),
        "n_policy_faults": getattr(result, "n_policy_faults", 0),
        "n_degraded_minutes": getattr(result, "n_degraded_minutes", 0),
        "keepalive_cost_usd": result.keepalive_cost_usd,
        "total_service_time_s": result.total_service_time_s,
        "mean_accuracy": result.mean_accuracy,
        "wall_clock_s": result.wall_clock_s,
    }


def _require_session(result) -> ObsSession:
    obs = result.obs
    if obs is None or not obs.enabled:
        raise ValueError(
            "run has no observability session; re-run with "
            "SimulationConfig(observe=True) (CLI: --trace-out implies it)"
        )
    return obs


def _tail_records(obs: ObsSession) -> Iterable[dict]:
    """The metrics/spans records that close out a trace."""
    if obs.metrics_enabled:
        yield {"kind": "metrics", "values": obs.metrics.as_flat_dict()}
    if obs.spans_enabled:
        yield {"kind": "spans", "phases": obs.spans.as_dict()}


def trace_records(result) -> Iterable[dict]:
    """Yield every JSONL record for ``result`` (header, decisions,
    metrics, spans) without touching the filesystem."""
    obs = _require_session(result)
    yield _header(result)
    yield from obs.records
    yield from _tail_records(obs)


def write_trace_jsonl(result, path) -> int:
    """Dump ``result``'s decision trace to ``path``; returns the number
    of records written."""
    n = 0
    with atomic_writer(path, encoding="utf-8") as fh:
        for rec in trace_records(result):
            fh.write(json.dumps(rec, separators=(",", ":")))
            fh.write("\n")
            n += 1
    return n


class StreamingTraceWriter:
    """Incremental JSONL trace sink for long fleet runs.

    Body records (decision records, or any dict) are appended to a
    ``<path>.part`` sidecar and flushed to the OS every ``flush_every``
    records, so a crash mid-run loses at most one flush interval and
    leaves the sidecar behind as the partial trace. ``finalize(result)``
    assembles the canonical artifact — header line, streamed body,
    metrics/spans tail — through :func:`~repro.utils.atomicio.atomic_writer`
    (same-directory temp file, fsync, rename), removes the sidecar, and
    returns the total record count. The final path never holds a torn
    trace: it either doesn't exist yet or is complete.

    Usable as a context manager; exiting on an exception keeps the
    sidecar (it is the crash artifact), exiting cleanly without
    ``finalize`` just closes it.
    """

    def __init__(self, path, flush_every: int = 256):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = os.fspath(path)
        self.part_path = self.path + ".part"
        self.flush_every = int(flush_every)
        self.n_body = 0
        self._fh = open(self.part_path, "w", encoding="utf-8")

    def write(self, record: dict) -> None:
        """Append one body record; flushes every ``flush_every`` writes."""
        self._fh.write(json.dumps(record, separators=(",", ":")))
        self._fh.write("\n")
        self.n_body += 1
        if self.n_body % self.flush_every == 0:
            self._fh.flush()

    def write_many(self, records: Iterable[dict]) -> None:
        for rec in records:
            self.write(rec)

    def finalize(self, result) -> int:
        """Assemble the final trace at ``path`` atomically; returns the
        number of records written (header + body + tail)."""
        obs = _require_session(result)
        self.close()
        n = 1 + self.n_body
        with atomic_writer(self.path, encoding="utf-8") as out:
            out.write(json.dumps(_header(result), separators=(",", ":")))
            out.write("\n")
            with open(self.part_path, encoding="utf-8") as body:
                for chunk in iter(lambda: body.read(1 << 20), ""):
                    out.write(chunk)
            for rec in _tail_records(obs):
                out.write(json.dumps(rec, separators=(",", ":")))
                out.write("\n")
                n += 1
        os.remove(self.part_path)
        return n

    def close(self) -> None:
        """Close the sidecar handle (idempotent); the sidecar file stays
        on disk until ``finalize`` consumes it."""
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "StreamingTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace_jsonl(path) -> list[dict]:
    """Load a JSONL trace back into a list of record dicts (blank lines
    are skipped, so hand-edited traces still load)."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _prom_escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _prom_series(name: str, key, value: float) -> str:
    if key:
        inner = ",".join(f'{k}="{_prom_escape(v)}"' for k, v in key)
        return f"{name}{{{inner}}} {float(value):g}"
    return f"{name} {float(value):g}"


def render_prometheus(session: ObsSession) -> str:
    """A session's metrics registry in the Prometheus text exposition
    format (one scrape-shaped snapshot, not a live endpoint).

    Counters and gauges render one series per label set. Histograms
    render as ``summary`` pairs (``<name>_count`` / ``<name>_sum``) plus
    ``<name>_min`` / ``<name>_max`` series — the min/max suffixes are
    not part of the standard exposition format but mirror the summary
    kept by :class:`~repro.obs.metrics.Histogram`, which stores no
    buckets or quantiles.
    """
    if session is None or not session.metrics_enabled:
        raise ValueError(
            "session has no metrics registry; re-run with observability "
            "(and metrics) enabled"
        )
    lines: list[str] = []
    for metric in sorted(session.metrics, key=lambda m: m.name):
        if not metric.series:
            continue
        if metric.help:
            lines.append(f"# HELP {metric.name} {_prom_escape(metric.help)}")
        if isinstance(metric, Histogram):
            lines.append(f"# TYPE {metric.name} summary")
            for key, summary in sorted(metric.series.items()):
                assert isinstance(summary, HistogramSummary)
                for suffix, v in summary.as_dict().items():
                    lines.append(
                        _prom_series(f"{metric.name}_{suffix}", key, v)
                    )
        else:
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for key, value in sorted(metric.series.items()):
                lines.append(_prom_series(metric.name, key, value))
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(session: ObsSession, path) -> int:
    """Write :func:`render_prometheus` output atomically; returns the
    number of exposition lines written."""
    text = render_prometheus(session)
    with atomic_writer(path, encoding="utf-8") as fh:
        fh.write(text)
    return text.count("\n")


def merge_sessions(sessions: Iterable[ObsSession]) -> ObsSession | None:
    """Fold many runs' sessions into one aggregate (sweep telemetry).

    Counters and histograms accumulate, gauges keep the last run's
    value, spans sum. Per-run decision records are dropped — they only
    make sense against their own run's timeline. Returns ``None`` when
    no input session is enabled (e.g. the sweep ran unobserved).
    """
    merged: ObsSession | None = None
    for s in sessions:
        if s is None or not s.enabled:
            continue
        if merged is None:
            merged = ObsSession(s.config)
            merged.n_runs = 0
        merged.merge(s)
    if merged is not None:
        merged.records = []
    return merged


def merged_flat_metrics(sessions_by_policy: Mapping[str, ObsSession | None]) -> dict[str, dict[str, float]]:
    """Convenience for sweep reports: ``{policy: flat metrics dict}`` for
    every policy whose merged session carried a metrics registry."""
    out: dict[str, dict[str, float]] = {}
    for name, session in sessions_by_policy.items():
        if session is not None and session.metrics_enabled:
            out[name] = session.metrics.as_flat_dict()
    return out
