"""Exporters: JSONL decision traces and cross-run session merging.

The JSONL trace is the durable form of a run's telemetry — one JSON
object per line, streamable and greppable:

- line 1: a ``header`` record (schema version, policy name, headline
  ``RunResult`` numbers) so a trace is self-describing;
- then every decision record, in simulation order (``plan`` / ``cold`` /
  ``peak`` / ``downgrade`` — see :mod:`repro.obs.session`);
- then one ``metrics`` record (the registry as a flat dict) and one
  ``spans`` record (phase timings), when those layers were enabled.

This module deliberately imports nothing from ``repro.runtime`` —
``runtime.metrics`` imports :mod:`repro.obs`, so the dependency edge
must stay one-directional. ``RunResult`` is consumed duck-typed.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping

from repro.obs.session import ObsSession
from repro.utils.atomicio import atomic_writer

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "merge_sessions",
    "read_trace_jsonl",
    "trace_records",
    "write_trace_jsonl",
]

#: Bumped whenever a record shape changes incompatibly.
TRACE_SCHEMA_VERSION = 1


def _header(result) -> dict:
    """The self-describing first line of a trace (duck-typed RunResult)."""
    return {
        "kind": "header",
        "schema_version": TRACE_SCHEMA_VERSION,
        "policy": result.policy_name,
        "n_invocations": result.n_invocations,
        "n_warm": result.n_warm,
        "n_cold": result.n_cold,
        "n_forced_downgrades": result.n_forced_downgrades,
        "n_spawn_failures": getattr(result, "n_spawn_failures", 0),
        "n_retries": getattr(result, "n_retries", 0),
        "n_policy_faults": getattr(result, "n_policy_faults", 0),
        "n_degraded_minutes": getattr(result, "n_degraded_minutes", 0),
        "keepalive_cost_usd": result.keepalive_cost_usd,
        "total_service_time_s": result.total_service_time_s,
        "mean_accuracy": result.mean_accuracy,
        "wall_clock_s": result.wall_clock_s,
    }


def trace_records(result) -> Iterable[dict]:
    """Yield every JSONL record for ``result`` (header, decisions,
    metrics, spans) without touching the filesystem."""
    obs = result.obs
    if obs is None or not obs.enabled:
        raise ValueError(
            "run has no observability session; re-run with "
            "SimulationConfig(observe=True) (CLI: --trace-out implies it)"
        )
    yield _header(result)
    yield from obs.records
    if obs.metrics_enabled:
        yield {"kind": "metrics", "values": obs.metrics.as_flat_dict()}
    if obs.spans_enabled:
        yield {"kind": "spans", "phases": obs.spans.as_dict()}


def write_trace_jsonl(result, path) -> int:
    """Dump ``result``'s decision trace to ``path``; returns the number
    of records written."""
    n = 0
    with atomic_writer(path, encoding="utf-8") as fh:
        for rec in trace_records(result):
            fh.write(json.dumps(rec, separators=(",", ":")))
            fh.write("\n")
            n += 1
    return n


def read_trace_jsonl(path) -> list[dict]:
    """Load a JSONL trace back into a list of record dicts (blank lines
    are skipped, so hand-edited traces still load)."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def merge_sessions(sessions: Iterable[ObsSession]) -> ObsSession | None:
    """Fold many runs' sessions into one aggregate (sweep telemetry).

    Counters and histograms accumulate, gauges keep the last run's
    value, spans sum. Per-run decision records are dropped — they only
    make sense against their own run's timeline. Returns ``None`` when
    no input session is enabled (e.g. the sweep ran unobserved).
    """
    merged: ObsSession | None = None
    for s in sessions:
        if s is None or not s.enabled:
            continue
        if merged is None:
            merged = ObsSession(s.config)
            merged.n_runs = 0
        merged.merge(s)
    if merged is not None:
        merged.records = []
    return merged


def merged_flat_metrics(sessions_by_policy: Mapping[str, ObsSession | None]) -> dict[str, dict[str, float]]:
    """Convenience for sweep reports: ``{policy: flat metrics dict}`` for
    every policy whose merged session carried a metrics registry."""
    out: dict[str, dict[str, float]] = {}
    for name, session in sessions_by_policy.items():
        if session is not None and session.metrics_enabled:
            out[name] = session.metrics.as_flat_dict()
    return out
