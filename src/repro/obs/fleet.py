"""Columnar observability for the fleet engine.

The loop engines instrument by calling a ``record_*`` hook per decision;
at fleet scale (10k–100k functions) that is one Python call per
function-minute and would swamp the vectorized kernel. The fleet session
keeps the same external contract — it *is* an :class:`ObsSession`, rides
``RunResult.obs``, merges, pickles, exports — but accumulates telemetry
in per-minute, per-shard numpy partials instead:

- ``shard_invocations`` / ``shard_cold``  — int64 totals per shard;
- ``plan_level_counts``                   — a histogram of planned
  keep-alive variant levels across every plan written;
- ``mem_series`` / ``valve_series`` / ``downgrade_series`` — per-minute
  committed memory, forced-valve victims and Algorithm-2 downgrades.

The ``tally_*`` batch hooks that feed these take whole arrays or already
reduced integers, cost O(1) Python calls per shard-minute, and only
*read* engine state — no RNG draws, no float-accumulation reorder — so
obs-on fleet runs stay bit-identical to obs-off, and the integer
partials make metric totals shard-invariant (shards=1 ≡ shards=k).

**Sampled decision traces.** Full per-decision records (plans with
probability vectors, cold starts, downgrade ``Uv = Ai + Pr + Ip``
candidate tables) are kept for a deterministic sample of at most
``ObservabilityConfig.trace_sample`` function ids, drawn once from
``trace_sample_seed``. Sampled records reuse the parent ``record_*``
methods verbatim, so JSONL export and ``repro inspect`` why-queries work
unchanged; everything outside the sample contributes only to the
aggregate partials. Candidate tables are capped at
:data:`CANDIDATE_CAP` lowest-``Uv`` rows (victim always included) so one
peak minute at 100k functions cannot materialize a 100k-row record.
"""

from __future__ import annotations

import numpy as np

from repro.obs.session import ObservabilityConfig, ObsSession
from repro.utils.rng import rng_from_seed

__all__ = ["CANDIDATE_CAP", "FleetObsSession"]

#: Max rows kept in a sampled downgrade's candidate table (lowest ``Uv``
#: first, the victim always retained). Records note the truncation.
CANDIDATE_CAP = 32


class FleetObsSession(ObsSession):
    """One fleet run's telemetry: columnar partials + sampled records."""

    __slots__ = (
        "n_functions", "n_shards", "horizon",
        "shard_invocations", "shard_cold",
        "plan_level_counts", "mem_series", "valve_series",
        "downgrade_series", "n_peaks",
        "sample_fids", "sample_mask", "has_sample", "_last_seen",
    )

    def __init__(
        self,
        config: ObservabilityConfig | None = None,
        *,
        n_functions: int,
        n_shards: int,
        horizon: int,
    ):
        super().__init__(config)
        self.n_functions = int(n_functions)
        self.n_shards = int(n_shards)
        self.horizon = int(horizon)
        self.shard_invocations = np.zeros(self.n_shards, dtype=np.int64)
        self.shard_cold = np.zeros(self.n_shards, dtype=np.int64)
        self.plan_level_counts = np.zeros(8, dtype=np.int64)
        self.mem_series = np.zeros(self.horizon, dtype=np.float64)
        self.valve_series = np.zeros(self.horizon, dtype=np.int64)
        self.downgrade_series = np.zeros(self.horizon, dtype=np.int64)
        self.n_peaks = 0
        k = min(self.config.trace_sample, self.n_functions)
        if not self.decisions_enabled:
            k = 0
        if k > 0:
            rng = rng_from_seed(self.config.trace_sample_seed)
            fids = np.sort(
                rng.choice(self.n_functions, size=k, replace=False)
            ).astype(np.int64)
        else:
            fids = np.empty(0, dtype=np.int64)
        self.sample_fids = fids
        mask = np.zeros(self.n_functions, dtype=bool)
        mask[fids] = True
        self.sample_mask = mask
        self.has_sample = bool(k)
        # Sampled fids' previous arrival minute (None before the first),
        # mirroring the loop engines' last_arrival bookkeeping so sampled
        # ``cold`` records carry the same field.
        self._last_seen: dict[int, int | None] = {int(f): None for f in fids}

    # -- columnar batch hooks ------------------------------------------------
    def tally_serve(self, shard: int, n_invocations: int, n_cold: int) -> None:
        """Fold one shard-minute's serving totals in."""
        self.shard_invocations[shard] += n_invocations
        self.shard_cold[shard] += n_cold

    def tally_plans(self, levels: np.ndarray) -> None:
        """Fold a batch of planned keep-alive variant levels in — any
        shape; ``-1`` entries (keep-nothing offsets) are ignored. One
        shifted bincount, no scan/filter passes: this runs once per
        shard-minute on the whole plan matrix."""
        flat = np.ravel(levels)
        if flat.size == 0:
            return
        counts = np.bincount(
            flat + 1, minlength=self.plan_level_counts.size + 1
        )[1:]
        if counts.size > self.plan_level_counts.size:
            grown = np.zeros(counts.size, dtype=np.int64)
            grown[: self.plan_level_counts.size] = self.plan_level_counts
            self.plan_level_counts = grown
        self.plan_level_counts[: counts.size] += counts

    def tally_memory(self, minute: int, mem_mb: float) -> None:
        self.mem_series[minute] = mem_mb

    def tally_peak(self) -> None:
        self.n_peaks += 1

    def tally_downgrade(self, minute: int, n: int = 1) -> None:
        self.downgrade_series[minute] += n

    def tally_valve(self, minute: int, n: int = 1) -> None:
        self.valve_series[minute] += n

    # -- sampled decision traces ---------------------------------------------
    def is_sampled(self, function_id: int) -> bool:
        return self.has_sample and bool(self.sample_mask[function_id])

    def last_seen(self, function_id: int) -> int | None:
        """A sampled fid's previous arrival minute (``None`` before the
        first) — the columnar kernel does not thread per-fid history
        through the serve path, so sampled ``cold`` records read it from
        the session's own bookkeeping."""
        return self._last_seen.get(function_id)

    def note_arrival(self, function_id: int, minute: int) -> None:
        """Mark a sampled fid as served this minute (call after its
        cold/plan records for the minute are written)."""
        self._last_seen[function_id] = minute

    # -- finalization --------------------------------------------------------
    def finalize_fleet_metrics(self) -> None:
        """Register the fleet-only aggregate series from the columnar
        partials. The shared cross-engine metric names (RPR002 parity
        surface) are registered by ``run_fleet`` itself; these are the
        extras that only make sense for a sharded columnar run."""
        if not self.metrics_enabled:
            return
        met = self.metrics
        plan_counter = met.counter(
            "fleet_plan_level_total", "planned keep-alive slots per variant level"
        )
        for level, n in enumerate(self.plan_level_counts):
            if n:
                plan_counter.inc(int(n), level=str(level))
        met.counter(
            "fleet_peaks_total", "memory peaks flagged by the shard reducer"
        ).inc(self.n_peaks)
        met.gauge("fleet_shards", "shard count for this run").set(
            float(self.n_shards)
        )
        met.gauge(
            "fleet_trace_sample", "sampled function ids with full decision traces"
        ).set(float(self.sample_fids.size))

    def __repr__(self) -> str:
        return (
            f"FleetObsSession(functions={self.n_functions}, "
            f"shards={self.n_shards}, records={len(self.records)}, "
            f"sample={self.sample_fids.size})"
        )

    # -- pickling ------------------------------------------------------------
    def __getstate__(self):
        state = super().__getstate__()
        state.update({
            "n_functions": self.n_functions,
            "n_shards": self.n_shards,
            "horizon": self.horizon,
            "shard_invocations": self.shard_invocations,
            "shard_cold": self.shard_cold,
            "plan_level_counts": self.plan_level_counts,
            "mem_series": self.mem_series,
            "valve_series": self.valve_series,
            "downgrade_series": self.downgrade_series,
            "n_peaks": self.n_peaks,
            "sample_fids": self.sample_fids,
            "last_seen": self._last_seen,
        })
        return state

    def __setstate__(self, state):
        super().__setstate__(state)
        self.n_functions = state["n_functions"]
        self.n_shards = state["n_shards"]
        self.horizon = state["horizon"]
        self.shard_invocations = state["shard_invocations"]
        self.shard_cold = state["shard_cold"]
        self.plan_level_counts = state["plan_level_counts"]
        self.mem_series = state["mem_series"]
        self.valve_series = state["valve_series"]
        self.downgrade_series = state["downgrade_series"]
        self.n_peaks = state["n_peaks"]
        self.sample_fids = state["sample_fids"]
        mask = np.zeros(self.n_functions, dtype=bool)
        mask[self.sample_fids] = True
        self.sample_mask = mask
        self.has_sample = bool(self.sample_fids.size)
        self._last_seen = state["last_seen"]
