"""Trace inspection: answer "why?" questions against a JSONL decision trace.

:class:`TraceIndex` loads the records dumped by
:func:`repro.obs.export.write_trace_jsonl` and reconstructs enough of the
policy's timeline to explain, without re-running the simulation:

- **why an invocation was cold** (``explain_cold``) — first arrival ever,
  a planned gap (the policy's band mapping chose no variant for that
  offset), an expired keep-alive window, or a keep-alive dropped by an
  Algorithm-2 / capacity-valve downgrade;
- **how a plan was chosen** (``explain_plan``) — the per-offset
  probability → level → variant table of the closest plan record;
- **why a function was downgraded** (``explain_downgrades``) — each
  downgrade with its ``Uv = Ai + Pr + Ip`` candidate scores;
- **why a function fell back / what faults hit it** (``explain_faults``)
  — every injected spawn-failure burst and every policy exception the
  crash-isolation wrapper caught, with the hook, the error and the
  minute the function degraded to the fixed fallback.

All explain methods return plain multi-line strings: the CLI prints them
verbatim, and tests assert on substrings.
"""

from __future__ import annotations

import bisect

from repro.obs.export import read_trace_jsonl

__all__ = ["TraceIndex"]


def _fmt_num(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


class TraceIndex:
    """An in-memory index over one run's decision records."""

    def __init__(self, records: list[dict]):
        self.header: dict = {}
        self.metrics: dict[str, float] = {}
        self.spans: dict[str, dict[str, float]] = {}
        self.peaks: list[dict] = []
        self.downgrades: list[dict] = []
        self.spawn_faults: list[dict] = []
        self.policy_faults: list[dict] = []
        # per function: time-sorted record lists (records arrive in
        # simulation order, so appends preserve sortedness).
        self._plans: dict[int, list[dict]] = {}
        self._colds: dict[int, list[dict]] = {}
        self._downgrades_by_fid: dict[int, list[dict]] = {}
        for rec in records:
            kind = rec.get("kind")
            if kind == "plan":
                self._plans.setdefault(rec["fid"], []).append(rec)
            elif kind == "cold":
                self._colds.setdefault(rec["fid"], []).append(rec)
            elif kind == "downgrade":
                self.downgrades.append(rec)
                self._downgrades_by_fid.setdefault(rec["fid"], []).append(rec)
            elif kind == "spawn_fault":
                self.spawn_faults.append(rec)
            elif kind == "policy_fault":
                self.policy_faults.append(rec)
            elif kind == "peak":
                self.peaks.append(rec)
            elif kind == "header":
                self.header = rec
            elif kind == "metrics":
                self.metrics = rec.get("values", {})
            elif kind == "spans":
                self.spans = rec.get("phases", {})

    @classmethod
    def from_jsonl(cls, path) -> "TraceIndex":
        return cls(read_trace_jsonl(path))

    # -- overview ------------------------------------------------------------
    def summary(self) -> str:
        h = self.header
        lines = []
        if h:
            lines.append(
                f"policy={h.get('policy')}  invocations={h.get('n_invocations')}  "
                f"warm={h.get('n_warm')}  cold={h.get('n_cold')}  "
                f"forced_downgrades={h.get('n_forced_downgrades')}"
            )
            lines.append(
                f"keepalive_cost_usd={_fmt_num(h.get('keepalive_cost_usd'))}  "
                f"mean_accuracy={_fmt_num(h.get('mean_accuracy'))}  "
                f"wall_clock_s={_fmt_num(h.get('wall_clock_s'))}"
            )
        n_plans = sum(len(v) for v in self._plans.values())
        n_colds = sum(len(v) for v in self._colds.values())
        lines.append(
            f"records: {n_plans} plans, {n_colds} cold starts, "
            f"{len(self.peaks)} peaks, {len(self.downgrades)} downgrades "
            f"({sum(1 for d in self.downgrades if d.get('forced'))} forced)"
        )
        if self.spawn_faults or self.policy_faults:
            lines.append(
                f"faults: {len(self.spawn_faults)} spawn-failure bursts, "
                f"{len(self.policy_faults)} policy faults "
                "(see --faults [FID])"
            )
        if self.spans:
            lines.append(
                "phases: "
                + "  ".join(
                    f"{name}={p['seconds'] * 1e3:.2f}ms/{int(p['count'])}"
                    for name, p in self.spans.items()
                )
            )
        if self.metrics:
            lines.append(f"metrics: {len(self.metrics)} series")
        lines.append(
            "queries: --cold FID:MINUTE  --plan FID:MINUTE  "
            "--downgrades [FID[:MINUTE]]  --faults [FID]"
        )
        return "\n".join(lines)

    # -- lookups -------------------------------------------------------------
    def _latest_before(self, recs: list[dict], minute: int) -> dict | None:
        """The last record with ``t`` strictly before ``minute``."""
        i = bisect.bisect_left([r["t"] for r in recs], minute)
        return recs[i - 1] if i else None

    def _cold_at(self, function_id: int, minute: int) -> dict | None:
        for rec in self._colds.get(function_id, ()):
            if rec["t"] == minute:
                return rec
        return None

    # -- explanations --------------------------------------------------------
    def explain_cold(self, function_id: int, minute: int) -> str:
        """Why was function ``function_id``'s invocation at ``minute`` cold?"""
        cold = self._cold_at(function_id, minute)
        if cold is None:
            return (
                f"no cold start recorded for function {function_id} at "
                f"minute {minute} (it was warm, or did not invoke; see "
                f"--plan {function_id}:{minute})"
            )
        head = (
            f"function {function_id} cold-started at minute {minute} "
            f"on variant {cold['variant']!r} ({cold['count']} invocation(s) "
            "that minute)"
        )
        prev_plan = self._latest_before(self._plans.get(function_id, []), minute)
        if prev_plan is None:
            return (
                f"{head}\ncause: first recorded arrival — no prior plan "
                "existed, so nothing could be warm"
            )
        t0 = prev_plan["t"]
        window = len(prev_plan["levels"])
        offset = minute - t0
        lines = [head, f"previous plan: installed at minute {t0} "
                       f"(covers minutes {t0 + 1}..{t0 + window})"]
        # A downgrade between the plan install and this minute may have
        # dropped the keep-alive the plan promised.
        drops = [
            d for d in self._downgrades_by_fid.get(function_id, ())
            if t0 < d["t"] <= minute and d["to"] is None
        ]
        if offset > window:
            lines.append(
                f"cause: keep-alive window expired — the last invocation "
                f"was {offset} minutes earlier, beyond the {window}-minute "
                "plan horizon"
            )
        elif drops:
            d = drops[-1]
            via = "capacity pressure valve" if d.get("forced") else "Algorithm 2"
            lines.append(
                f"cause: keep-alive dropped at minute {d['t']} by {via} "
                f"(was {d['from']!r}; see --downgrades "
                f"{function_id}:{d['t']})"
            )
        else:
            level = prev_plan["levels"][offset - 1]
            if level is None:
                prob = None
                probs = prev_plan.get("probs")
                if probs is not None and offset - 1 < len(probs):
                    prob = probs[offset - 1]
                why = (
                    f"P(arrival)={_fmt_num(prob)} at that offset mapped "
                    "below every keep-alive band"
                    if prob is not None
                    else "the policy assigned no variant to that offset"
                )
                lines.append(
                    f"cause: planned gap — the plan left offset {offset} "
                    f"empty ({why})"
                )
            else:
                lines.append(
                    f"cause: unclear from the trace — the plan held "
                    f"{prev_plan['variants'][offset - 1]!r} at offset "
                    f"{offset}, but nothing was warm; a later write "
                    "(e.g. a partial downgrade) may have rewritten it"
                )
        return "\n".join(lines)

    def explain_plan(self, function_id: int, minute: int) -> str:
        """How did the policy plan for ``function_id`` at/just before
        ``minute``? Prints the offset → probability → level → variant
        band-mapping table."""
        recs = self._plans.get(function_id, [])
        # The plan *at* minute counts too — search strictly-after boundary.
        plan = self._latest_before(recs, minute + 1)
        if plan is None:
            return (
                f"no plan recorded for function {function_id} at or before "
                f"minute {minute}"
            )
        t0 = plan["t"]
        probs = plan.get("probs")
        lines = [
            f"function {function_id}: plan installed at minute {t0} "
            f"(after the invocation served there)"
        ]
        if probs is None:
            lines.append(
                "no probability snapshot (fixed/baseline policy, or a "
                "no-history fallback plan)"
            )
        header = f"{'offset':>6} {'minute':>6} {'P(arrival)':>11} {'level':>5}  variant"
        lines.append(header)
        for i, (level, variant) in enumerate(zip(plan["levels"], plan["variants"])):
            p = probs[i] if probs is not None and i < len(probs) else None
            lines.append(
                f"{i + 1:>6} {t0 + 1 + i:>6} {_fmt_num(p):>11} "
                f"{_fmt_num(level):>5}  {variant if variant is not None else '-'}"
            )
        return "\n".join(lines)

    def explain_downgrades(
        self, function_id: int | None = None, minute: int | None = None
    ) -> str:
        """Every downgrade (optionally filtered to one function and/or
        minute), with the greedy's ``Uv = Ai + Pr + Ip`` candidate table
        when it was recorded."""
        hits = [
            d for d in self.downgrades
            if (function_id is None or d["fid"] == function_id)
            and (minute is None or d["t"] == minute)
        ]
        if not hits:
            scope = ""
            if function_id is not None:
                scope += f" for function {function_id}"
            if minute is not None:
                scope += f" at minute {minute}"
            return f"no downgrades recorded{scope}"
        lines = []
        for d in hits:
            via = "capacity valve (forced)" if d.get("forced") else "Algorithm 2"
            to = d["to"] if d["to"] is not None else "dropped (no keep-alive)"
            lines.append(
                f"minute {d['t']}: function {d['fid']} downgraded "
                f"{d['from']!r} -> {to} via {via}"
            )
            peak = next((p for p in self.peaks if p["t"] == d["t"]), None)
            if peak is not None:
                lines.append(
                    f"  peak context: demand={_fmt_num(peak['demand_mb'])} MB, "
                    f"prior={_fmt_num(peak['prior_mb'])} MB, "
                    f"flatten target={_fmt_num(peak['target_mb'])} MB"
                )
            cands = d.get("candidates")
            if cands:
                lines.append(
                    f"  {'fid':>5} {'variant':<14} {'Ai':>9} {'Pr':>9} "
                    f"{'Ip':>9} {'Uv':>9}"
                )
                for c in cands:
                    if "omitted" in c:
                        # Fleet traces cap the table at the lowest-Uv rows.
                        lines.append(
                            f"  ... {c['omitted']} higher-Uv candidates "
                            "omitted (fleet candidate cap)"
                        )
                    elif c.get("protected"):
                        lines.append(
                            f"  {c['fid']:>5} {c['variant']:<14} "
                            "protected (lowest variant, P(arrival) > 0)"
                        )
                    else:
                        marker = " <- min Uv" if c["fid"] == d["fid"] else ""
                        lines.append(
                            f"  {c['fid']:>5} {c['variant']:<14} "
                            f"{c['Ai']:>9.4f} {c['Pr']:>9.4f} "
                            f"{c['Ip']:>9.4f} {c['Uv']:>9.4f}{marker}"
                        )
        return "\n".join(lines)

    def explain_faults(self, function_id: int | None = None) -> str:
        """Every fault that hit the run (optionally one function): injected
        spawn-failure bursts, and policy exceptions the crash-isolation
        wrapper caught — i.e. *why did this function fall back* to the
        fixed keep-alive."""
        spawn = [
            r for r in self.spawn_faults
            if function_id is None or r["fid"] == function_id
        ]
        policy = [
            r for r in self.policy_faults
            if function_id is None or r["fid"] == function_id
        ]
        if not spawn and not policy:
            scope = (
                f" for function {function_id}" if function_id is not None else ""
            )
            return (
                f"no faults recorded{scope} (run had no fault plan, no "
                "crash-isolated policy, or nothing went wrong)"
            )
        lines = []
        for r in sorted(spawn + policy, key=lambda r: r["t"]):
            if r["kind"] == "spawn_fault":
                lines.append(
                    f"minute {r['t']}: function {r['fid']} spawn of "
                    f"{r['variant']!r} failed {r['failures']} time(s) — "
                    f"+{_fmt_num(r['penalty_s'])}s retry/backoff latency"
                )
            else:
                who = (
                    f"function {r['fid']}"
                    if r["fid"] >= 0
                    else "the run (cross-function stage)"
                )
                fallback = (
                    " — degraded to the fixed 10-minute fallback from here on"
                    if r["hook"] in ("plan", "cold_variant", "observe_invocation", "bind")
                    else " — review stage disabled from here on"
                )
                lines.append(
                    f"minute {r['t']}: policy crashed in {r['hook']!r} for "
                    f"{who}: {r['error']}{fallback}"
                )
        return "\n".join(lines)
