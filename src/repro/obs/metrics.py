"""A small metrics registry: counters, gauges and histograms with labels.

Prometheus-shaped but dependency-free and picklable (plain dicts all the
way down), because sweep workers ship their registries back to the parent
process inside ``RunResult`` and the parent merges them
(:func:`repro.obs.export.merge_sessions`).

Hot-path discipline: the engine resolves a metric once before its loop
(``registry.counter("cold_starts_total")``) and, where a label is fixed
per iteration slot, pre-binds it (``counter.labels(function=3)``) so the
per-event cost is one dict store — no string formatting, no kwargs
plumbing, no allocation beyond the first touch of a series.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["Counter", "Gauge", "Histogram", "HistogramSummary", "MetricsRegistry"]

#: A label set, canonicalized to a sorted tuple of (key, value) pairs.
LabelKey = tuple[tuple[str, str], ...]

_NO_LABELS: LabelKey = ()


def _label_key(labels: dict[str, object]) -> LabelKey:
    if not labels:
        return _NO_LABELS
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def flat_name(name: str, key: LabelKey) -> str:
    """``name`` or ``name{k=v,k2=v2}`` — the flat-dict series identifier."""
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class _Metric:
    """Shared shell: a name, a help string, and labeled series."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.help = help
        self.series: dict[LabelKey, object] = {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, series={len(self.series)})"


class _BoundCounter:
    """A counter pre-resolved to one label set (hot-path handle)."""

    __slots__ = ("_series", "_key")

    def __init__(self, series: dict, key: LabelKey):
        self._series = series
        self._key = key

    def inc(self, value: float = 1.0) -> None:
        self._series[self._key] = self._series.get(self._key, 0.0) + value


class Counter(_Metric):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({value})")
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0.0) + value

    def labels(self, **labels: object) -> _BoundCounter:
        return _BoundCounter(self.series, _label_key(labels))

    def value(self, **labels: object) -> float:
        return float(self.series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum over every label set."""
        return float(sum(self.series.values()))


class Gauge(_Metric):
    """A last-write-wins value per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self.series[_label_key(labels)] = float(value)

    def value(self, **labels: object) -> float:
        return float(self.series.get(_label_key(labels), 0.0))


class HistogramSummary:
    """Streaming summary of one histogram series: count/sum/min/max.

    Bucketless on purpose — the consumers (run report, sweep merge) want
    the moments, and a fixed bucket layout would have to guess scales for
    quantities as different as MB-minutes and span seconds.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "HistogramSummary") -> None:
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def as_dict(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0.0, "sum": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistogramSummary):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return (
            f"HistogramSummary(count={self.count}, sum={self.total:.6g}, "
            f"min={self.min:.6g}, max={self.max:.6g})"
        )

    # __slots__ classes need explicit pickle support.
    def __getstate__(self):
        return (self.count, self.total, self.min, self.max)

    def __setstate__(self, state):
        self.count, self.total, self.min, self.max = state


class Histogram(_Metric):
    """A :class:`HistogramSummary` per label set."""

    kind = "histogram"

    def _summary(self, labels: dict[str, object]) -> HistogramSummary:
        key = _label_key(labels)
        s = self.series.get(key)
        if s is None:
            s = self.series[key] = HistogramSummary()
        return s

    def observe(self, value: float, **labels: object) -> None:
        self._summary(labels).observe(value)

    def observe_many(self, values: Iterable[float], **labels: object) -> None:
        """Bulk observation (the fast engine's idle-span accounting)."""
        s = self._summary(labels)
        for v in values:
            s.observe(v)

    def summary(self, **labels: object) -> HistogramSummary:
        return self._summary(labels)


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create home for every metric of one run (or merged sweep)."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get(self, cls: type, name: str, help: str) -> _Metric:
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = cls(name, help)
        elif type(m) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {m.kind}, "
                f"not {cls.kind}"
            )
        return m

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)  # type: ignore[return-value]

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        """Total number of live series across all metrics."""
        return sum(len(m.series) for m in self._metrics.values())

    def __iter__(self):
        return iter(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def as_flat_dict(self) -> dict[str, float]:
        """Every series as ``name{labels}`` → value.

        Histogram series expand to ``_count`` / ``_sum`` / ``_min`` /
        ``_max`` suffixed entries — the JSONL metrics record and the run
        report's metrics table both use this representation.
        """
        out: dict[str, float] = {}
        for m in self._metrics.values():
            for key, value in sorted(m.series.items()):
                if isinstance(value, HistogramSummary):
                    for suffix, v in value.as_dict().items():
                        out[flat_name(f"{m.name}_{suffix}", key)] = v
                else:
                    out[flat_name(m.name, key)] = float(value)  # type: ignore[arg-type]
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters and histograms accumulate,
        gauges take the other registry's value (last write wins)."""
        for om in other:
            mine = self._get(type(om), om.name, om.help)
            for key, value in om.series.items():
                if isinstance(value, HistogramSummary):
                    s = mine.series.get(key)
                    if s is None:
                        s = mine.series[key] = HistogramSummary()
                    s.merge(value)
                elif om.kind == "gauge":
                    mine.series[key] = float(value)  # type: ignore[arg-type]
                else:
                    mine.series[key] = mine.series.get(key, 0.0) + float(value)  # type: ignore[arg-type]
