"""Self-contained HTML run report with inline SVG charts.

One run, one file, no dependencies: the report embeds
:mod:`repro.utils.svgplot` SVGs directly, so it renders anywhere a
browser opens a local file (including as a CI artifact). Sections are
included only when the run carried the data for them:

- headline summary table (always);
- memory-over-time line chart (when ``record_series`` was on);
- warm/cold/forced-downgrade bar chart;
- span-phase timing bar chart (when spans were enabled);
- a fleet telemetry section (when the run carried a
  :class:`~repro.obs.fleet.FleetObsSession`): per-shard serving and
  phase-timing breakdown, run throughput, and the memory / valve /
  downgrade timeline from the columnar partials;
- decision-record tally and flat metrics table (when the respective
  observability layers were enabled).

``RunResult`` is consumed duck-typed — this module must not import
``repro.runtime`` (see :mod:`repro.obs.export` for why).
"""

from __future__ import annotations

from html import escape
from pathlib import Path

from repro.obs.fleet import FleetObsSession
from repro.utils import svgplot
from repro.utils.atomicio import atomic_write_text

__all__ = ["render_run_report", "save_run_report"]

_STYLE = """
body { font-family: sans-serif; margin: 2em auto; max-width: 72em;
       color: #222; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 1.8em; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #ccc; padding: 0.3em 0.7em; text-align: left;
         font-size: 0.9em; }
th { background: #f2f2f2; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
figure { margin: 0.8em 0; }
.note { color: #666; font-size: 0.85em; }
"""


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _table(rows: list[tuple[str, object]], headers: tuple[str, str]) -> str:
    cells = "".join(
        f"<tr><td>{escape(str(k))}</td>"
        f'<td class="num">{escape(_fmt(v))}</td></tr>'
        for k, v in rows
    )
    return (
        f"<table><tr><th>{escape(headers[0])}</th>"
        f"<th>{escape(headers[1])}</th></tr>{cells}</table>"
    )


def _fleet_section(result, obs: FleetObsSession) -> list[str]:
    """The fleet-only report section: per-shard breakdown, throughput,
    and the memory / valve / downgrade timeline from the columnar
    partials."""
    parts: list[str] = ["<h2>Fleet telemetry</h2>"]

    wall = float(result.wall_clock_s)
    throughput = result.n_invocations / wall if wall > 0 else 0.0
    minutes_per_s = obs.horizon / wall if wall > 0 else 0.0
    parts.append(
        _table(
            [
                ("shards", obs.n_shards),
                ("functions", obs.n_functions),
                ("sampled decision traces", int(obs.sample_fids.size)),
                ("memory peaks", obs.n_peaks),
                ("throughput (invocations/s)", throughput),
                ("simulated minutes/s", minutes_per_s),
            ],
            ("fleet", "value"),
        )
    )

    # Per-shard serving totals, with per-shard phase seconds when spans
    # were on (the shard timers live under ``shard-{i}/...`` in the tree).
    tree = obs.spans.tree() if obs.spans_enabled and obs.spans else {}
    header = "<tr><th>shard</th><th>invocations</th><th>cold</th>"
    timed = bool(tree)
    if timed:
        header += "<th>serve ms</th><th>observe ms</th><th>plan ms</th>"
    rows = [header + "</tr>"]
    for i in range(obs.n_shards):
        row = (
            f'<tr><td>{i}</td><td class="num">{int(obs.shard_invocations[i])}'
            f'</td><td class="num">{int(obs.shard_cold[i])}</td>'
        )
        if timed:
            phases = tree.get(f"shard-{i}", {}).get("children", {})
            for phase in ("serve", "observe", "plan"):
                ms = phases.get(phase, {}).get("seconds", 0.0) * 1e3
                row += f'<td class="num">{ms:.3f}</td>'
        rows.append(row + "</tr>")
    parts.append(f"<table>{''.join(rows)}</table>")

    reduce_phases = tree.get("reduce", {}).get("children", {})
    if reduce_phases:
        parts.append("<figure>")
        parts.append(
            svgplot.bar_chart(
                {
                    name: node["seconds"] * 1e3
                    for name, node in sorted(reduce_phases.items())
                },
                title="Reducer wall-clock per phase", ylabel="ms",
            )
        )
        parts.append("</figure>")

    parts.append("<h2>Fleet memory and valve timeline</h2><figure>")
    parts.append(
        svgplot.line_chart(
            {"committed MB": obs.mem_series},
            title="Committed keep-alive memory", xlabel="minute",
            ylabel="MB",
        )
    )
    parts.append("</figure>")
    if obs.valve_series.any() or obs.downgrade_series.any():
        parts.append("<figure>")
        parts.append(
            svgplot.line_chart(
                {
                    "valve victims": obs.valve_series,
                    "downgrades": obs.downgrade_series,
                },
                title="Capacity-valve victims and downgrades per minute",
                xlabel="minute", ylabel="count",
            )
        )
        parts.append("</figure>")
    else:
        parts.append(
            '<p class="note">No capacity-valve victims or Algorithm-2 '
            "downgrades this run.</p>"
        )
    return parts


def render_run_report(result, title: str | None = None) -> str:
    """Render ``result`` (a duck-typed ``RunResult``) as an HTML page."""
    obs = result.obs
    has_obs = obs is not None and obs.enabled
    name = title or f"Run report — {result.policy_name}"
    parts: list[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{escape(name)}</title><style>{_STYLE}</style></head><body>",
        f"<h1>{escape(name)}</h1>",
    ]

    # -- headline summary ----------------------------------------------------
    parts.append("<h2>Summary</h2>")
    parts.append(_table(sorted(result.summary().items()), ("field", "value")))

    # -- memory over time ----------------------------------------------------
    if result.memory_series_mb is not None and len(result.memory_series_mb):
        series = {"committed": result.memory_series_mb}
        if (
            result.ideal_memory_series_mb is not None
            and len(result.ideal_memory_series_mb)
        ):
            series["ideal"] = result.ideal_memory_series_mb
        parts.append("<h2>Keep-alive memory over time</h2><figure>")
        parts.append(
            svgplot.line_chart(
                series, title="Keep-alive memory", xlabel="minute",
                ylabel="MB",
            )
        )
        parts.append("</figure>")

    # -- start/downgrade counts ----------------------------------------------
    parts.append("<h2>Starts and downgrades</h2><figure>")
    parts.append(
        svgplot.bar_chart(
            {
                "warm": float(result.n_warm),
                "cold": float(result.n_cold),
                "forced dg": float(result.n_forced_downgrades),
            },
            title="Invocation outcomes", ylabel="count",
        )
    )
    parts.append("</figure>")

    # -- span phases ---------------------------------------------------------
    if has_obs and obs.spans_enabled and obs.spans:
        phase_ms = {
            phase: obs.spans.seconds(phase) * 1e3 for phase in obs.spans.phases
        }
        parts.append("<h2>Phase timings</h2><figure>")
        parts.append(
            svgplot.bar_chart(
                phase_ms, title="Wall-clock per phase", ylabel="ms",
            )
        )
        parts.append("</figure>")
        parts.append(
            _table(
                [
                    (phase, f"{obs.spans.seconds(phase) * 1e3:.3f} ms / "
                            f"{obs.spans.count(phase)} samples")
                    for phase in obs.spans.phases
                ],
                ("phase", "total / samples"),
            )
        )

    # -- fleet telemetry -----------------------------------------------------
    if has_obs and isinstance(obs, FleetObsSession):
        parts.extend(_fleet_section(result, obs))

    # -- decision records ----------------------------------------------------
    if has_obs and obs.decisions_enabled:
        tally: dict[str, int] = {}
        for rec in obs.records:
            tally[rec["kind"]] = tally.get(rec["kind"], 0) + 1
        parts.append("<h2>Decision trace</h2>")
        if tally:
            parts.append(_table(sorted(tally.items()), ("record kind", "count")))
        else:
            parts.append('<p class="note">No decision records.</p>')
        parts.append(
            '<p class="note">Dump with <code>--trace-out run.jsonl</code> '
            "and query with <code>python -m repro inspect run.jsonl</code>."
            "</p>"
        )

    # -- flat metrics --------------------------------------------------------
    if has_obs and obs.metrics_enabled:
        flat = obs.metrics.as_flat_dict()
        if flat:
            parts.append("<h2>Metrics</h2>")
            parts.append(_table(sorted(flat.items()), ("series", "value")))

    if not has_obs:
        parts.append(
            '<p class="note">Observability was disabled for this run; '
            "phase timings, decision traces and metrics are unavailable. "
            "Re-run with <code>--observe</code>.</p>"
        )
    parts.append("</body></html>")
    return "\n".join(parts)


def save_run_report(result, path, title: str | None = None) -> Path:
    """Render and write the report; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(path, render_run_report(result, title=title))
    return path
