"""The per-run observability session and its zero-cost disabled stand-in.

One :class:`ObsSession` lives for exactly one simulated run. The engine
creates it when ``SimulationConfig.observe`` is set, hands it to the
policy via :meth:`~repro.runtime.policy.KeepAlivePolicy.attach_observability`
*before* ``bind()`` (so policy sub-components can be wired during
``on_bind``), and attaches it to the returned ``RunResult``.

Design rules:

- **Disabled is free.** Everything that records first checks one of the
  ``*_enabled`` booleans, which on :data:`NULL_OBS` are class-level
  ``False`` constants. No session, registry, list or per-minute object is
  allocated for an unobserved run; the only residual cost in the engine
  hot loops is an ``is not None`` test on a local.
- **Recording never perturbs the run.** Record methods only *read* their
  arguments (copying arrays to plain lists); they draw no randomness and
  change no accumulation order, which is what makes the on/off golden
  equivalence (``tests/test_obs_equivalence.py``) hold bit-exactly.
- **Picklable.** Sessions ride ``RunResult`` across the sweep runner's
  process pool; every attribute is a plain container.

Decision records are dicts with a ``kind`` discriminator — the JSONL
schema (documented in ``docs/architecture.md``) is exactly one record per
line:

``plan``       — a band→variant assignment: the plan installed after an
                 invocation, with per-offset variant levels/names and,
                 for probability-driven policies, the probability vector
                 snapshot that produced it;
``cold``       — a cold start, with the serving variant, the minute's
                 invocation count and the function's previous arrival;
``peak``       — a peak-detector transition: demand, prior, flatten
                 target at a flagged minute;
``downgrade``  — one Algorithm-2 / MILP / capacity-valve downgrade, with
                 the victim's from/to variants, a ``forced`` flag, and
                 (greedy only) the full candidate table of
                 ``Uv = Ai + Pr + Ip`` terms;
``spawn_fault``— an injected container-spawn failure burst: the variant
                 whose spawn failed, how many attempts failed, and the
                 retry latency charged (see ``repro.faults``);
``policy_fault``— the crash-isolation wrapper caught a policy exception:
                 the failing hook, the error, and the fallback engaged.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTimer

__all__ = ["NULL_OBS", "ObservabilityConfig", "ObsSession"]


def _finite(value: float) -> float | None:
    """JSON has no ``inf`` — the peak detector's cold-start prior maps to
    ``None`` (meaning "no prior yet; nothing can be flagged")."""
    return None if math.isinf(value) else float(value)


@dataclass(frozen=True)
class ObservabilityConfig:
    """Which telemetry layers to enable (all on by default).

    - ``metrics``   — the counter/gauge/histogram registry;
    - ``spans``     — named wall-clock phase timers;
    - ``decisions`` — the decision-trace recorder (JSONL source).

    ``trace_sample`` only affects the fleet engine: per-decision records
    (plans, cold starts, downgrade candidate tables) are kept for a
    deterministic sample of at most that many function ids, drawn with
    ``trace_sample_seed``, while aggregate metrics still cover the whole
    fleet. The loop engines record every function and ignore both fields.
    ``trace_sample=0`` (the default) keeps the fleet fully aggregate.
    """

    metrics: bool = True
    spans: bool = True
    decisions: bool = True
    trace_sample: int = 0
    trace_sample_seed: int = 2024

    def __post_init__(self) -> None:
        if not (self.metrics or self.spans or self.decisions):
            raise ValueError(
                "observability config enables nothing; use "
                "SimulationConfig(observe=None) to disable observability"
            )
        if self.trace_sample < 0:
            raise ValueError("trace_sample must be >= 0")


class ObsSession:
    """Live telemetry for one run: registry + spans + decision records."""

    __slots__ = ("config", "metrics_enabled", "spans_enabled",
                 "decisions_enabled", "metrics", "spans", "records",
                 "_staged_probs", "n_runs")

    #: Distinguishes a real session from :data:`NULL_OBS` without isinstance.
    enabled = True

    def __init__(self, config: ObservabilityConfig | None = None):
        cfg = config if config is not None else ObservabilityConfig()
        self.config = cfg
        self.metrics_enabled = cfg.metrics
        self.spans_enabled = cfg.spans
        self.decisions_enabled = cfg.decisions
        self.metrics = MetricsRegistry()
        self.spans = SpanTimer()
        self.records: list[dict] = []
        # (fid, minute, probs) left by the function-centric optimizer for
        # the engine's plan record to claim (see stage_probs).
        self._staged_probs: tuple[int, int, list[float]] | None = None
        #: Number of runs folded into this session (1; grows on merge).
        self.n_runs = 1

    # -- decision recording --------------------------------------------------
    def stage_probs(self, function_id: int, minute: int, probs) -> None:
        """Stage a probability vector snapshot for the next plan record.

        The probability vector lives inside the policy (the estimator),
        but the plan record is written by the engine after ``set_plan``.
        Staging lets both contribute to **one** record without widening
        the ``KeepAlivePolicy.plan`` interface: the policy stages, the
        engine's :meth:`record_plan` claims the snapshot when the
        (function, minute) keys match.
        """
        self._staged_probs = (function_id, minute, [float(p) for p in probs])

    def record_plan(self, minute: int, function_id: int, plan: Sequence) -> None:
        """One installed keep-alive plan (the band→variant assignment)."""
        rec = {
            "kind": "plan",
            "t": minute,
            "fid": function_id,
            "levels": [None if v is None else v.level for v in plan],
            "variants": [None if v is None else v.name for v in plan],
        }
        staged = self._staged_probs
        if staged is not None and staged[0] == function_id and staged[1] == minute:
            rec["probs"] = staged[2]
            self._staged_probs = None
        self.records.append(rec)

    def record_cold(
        self,
        minute: int,
        function_id: int,
        variant_name: str,
        count: int,
        last_arrival: int | None,
    ) -> None:
        self.records.append({
            "kind": "cold",
            "t": minute,
            "fid": function_id,
            "variant": variant_name,
            "count": count,
            "last_arrival": last_arrival,
        })

    def record_peak(
        self, minute: int, demand_mb: float, prior_mb: float, target_mb: float
    ) -> None:
        self.records.append({
            "kind": "peak",
            "t": minute,
            "demand_mb": float(demand_mb),
            "prior_mb": _finite(prior_mb),
            "target_mb": _finite(target_mb),
        })

    def record_downgrade(
        self,
        minute: int,
        function_id: int,
        from_variant: str,
        to_variant: str | None,
        candidates: list[dict] | None = None,
        forced: bool = False,
    ) -> None:
        """One downgrade: Algorithm 2 / MILP (``forced=False``) or the
        capacity pressure valve (``forced=True``). ``to_variant=None``
        means the keep-alive was dropped entirely. ``candidates`` is the
        greedy's full scored table (one dict per kept-alive model with
        ``Ai``/``Pr``/``Ip``/``Uv``, or ``protected: True``)."""
        rec = {
            "kind": "downgrade",
            "t": minute,
            "fid": function_id,
            "from": from_variant,
            "to": to_variant,
            "forced": forced,
        }
        if candidates is not None:
            rec["candidates"] = candidates
        self.records.append(rec)

    def record_spawn_fault(
        self,
        minute: int,
        function_id: int,
        variant_name: str,
        n_failures: int,
        penalty_s: float,
    ) -> None:
        """One injected spawn-failure burst at a cold start: ``n_failures``
        attempts failed before a spawn succeeded, adding ``penalty_s``
        seconds of retry/backoff latency."""
        self.records.append({
            "kind": "spawn_fault",
            "t": minute,
            "fid": function_id,
            "variant": variant_name,
            "failures": int(n_failures),
            "penalty_s": float(penalty_s),
        })

    def record_policy_fault(
        self, minute: int, function_id: int, hook: str, error: str
    ) -> None:
        """The crash-isolation wrapper caught a policy exception in
        ``hook`` and degraded the function to the fixed fallback.
        ``function_id`` is -1 for faults not tied to one function
        (``review_minute``)."""
        self.records.append({
            "kind": "policy_fault",
            "t": minute,
            "fid": function_id,
            "hook": hook,
            "error": error,
        })

    # -- lifecycle -----------------------------------------------------------
    def merge(self, other: "ObsSession") -> None:
        """Fold another run's telemetry in (metrics/spans accumulate;
        decision records are per-run artifacts and are not concatenated —
        dump each run's trace separately if you need them)."""
        self.metrics.merge(other.metrics)
        self.spans.merge(other.spans)
        self.n_runs += other.n_runs

    def __repr__(self) -> str:
        return (
            f"ObsSession(metrics_series={len(self.metrics)}, "
            f"spans={len(self.spans)}, records={len(self.records)}, "
            f"runs={self.n_runs})"
        )

    def __getstate__(self):
        return {
            "config": self.config,
            "metrics": self.metrics,
            "spans": self.spans,
            "records": self.records,
            "n_runs": self.n_runs,
        }

    def __setstate__(self, state):
        self.config = state["config"]
        self.metrics_enabled = self.config.metrics
        self.spans_enabled = self.config.spans
        self.decisions_enabled = self.config.decisions
        self.metrics = state["metrics"]
        self.spans = state["spans"]
        self.records = state["records"]
        self._staged_probs = None
        self.n_runs = state["n_runs"]


class _NullSession:
    """The disabled session: every flag is ``False``, every method a no-op.

    Policies hold this by default (``KeepAlivePolicy.obs``), so their
    instrumentation guards — ``if self.obs.spans_enabled:`` — cost one
    attribute load and a branch, and nothing is ever allocated. The
    no-op record methods exist so a policy that skips the guard is still
    safe, just not free.
    """

    __slots__ = ()

    enabled = False
    metrics_enabled = False
    spans_enabled = False
    decisions_enabled = False
    #: Immutable empties: any accidental recording attempt fails loudly
    #: rather than silently accumulating on a shared singleton.
    records: tuple = ()
    metrics = None
    spans = None

    def stage_probs(self, function_id, minute, probs) -> None:
        pass

    def record_plan(self, minute, function_id, plan) -> None:
        pass

    def record_cold(self, minute, function_id, variant_name, count, last_arrival) -> None:
        pass

    def record_peak(self, minute, demand_mb, prior_mb, target_mb) -> None:
        pass

    def record_downgrade(
        self, minute, function_id, from_variant, to_variant,
        candidates=None, forced=False,
    ) -> None:
        pass

    def record_spawn_fault(
        self, minute, function_id, variant_name, n_failures, penalty_s
    ) -> None:
        pass

    def record_policy_fault(self, minute, function_id, hook, error) -> None:
        pass

    def __repr__(self) -> str:
        return "NULL_OBS"


#: The process-wide disabled session. Stateless and shared by every
#: unobserved policy instance.
NULL_OBS = _NullSession()
