"""Named wall-clock phase accumulators.

Figure 9 reports one opaque number, ``policy_overhead_s``; the span timer
breaks it (and the engine's own wall-clock) into the named phases the
paper's pipeline actually consists of:

- ``estimate``         — inter-arrival probability computation;
- ``band-mapping``     — threshold-scheme level selection over the window;
- ``peak-detect``      — Algorithm 1 prior/IsPeak evaluation;
- ``downgrade-select`` — Algorithm 2 utility scoring + schedule rewrite
  (or the MILP build+solve);
- ``pool-reconcile``   — container pool reconciliation in the engine;
- ``engine-total``     — the whole run (added by ``Simulation.run``).

A span is just an accumulated ``(seconds, count)`` pair — there is no
per-span object allocation, so instrumented hot paths pay two
``perf_counter()`` calls and one dict update per sample.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["SpanTimer"]


class SpanTimer:
    """Accumulates wall-clock seconds and sample counts per phase name."""

    __slots__ = ("_phases",)

    def __init__(self) -> None:
        # phase -> [seconds, count]; a list so add() mutates in place.
        self._phases: dict[str, list[float]] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Fold one sample into ``phase`` (the hot-path entry point)."""
        acc = self._phases.get(phase)
        if acc is None:
            self._phases[phase] = [seconds, 1.0]
        else:
            acc[0] += seconds
            acc[1] += 1.0

    @contextmanager
    def span(self, phase: str):
        """``with spans.span("estimate"): ...`` convenience wrapper."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.add(phase, time.perf_counter() - t0)

    # -- queries -------------------------------------------------------------
    def seconds(self, phase: str) -> float:
        acc = self._phases.get(phase)
        return acc[0] if acc else 0.0

    def count(self, phase: str) -> int:
        acc = self._phases.get(phase)
        return int(acc[1]) if acc else 0

    @property
    def phases(self) -> list[str]:
        return list(self._phases)

    @property
    def total_seconds(self) -> float:
        """Sum over every phase except ``engine-total`` (which contains
        the others and would double-count)."""
        return sum(
            acc[0] for name, acc in self._phases.items() if name != "engine-total"
        )

    def __len__(self) -> int:
        return len(self._phases)

    def __bool__(self) -> bool:
        return bool(self._phases)

    def as_dict(self) -> dict[str, dict[str, float]]:
        """``{phase: {"seconds": ..., "count": ...}}`` (JSONL / report form)."""
        return {
            name: {"seconds": acc[0], "count": acc[1]}
            for name, acc in self._phases.items()
        }

    def tree(self) -> dict:
        """The phases as one nested span tree, split on ``/``.

        The fleet engine names its phases hierarchically —
        ``shard-0/serve``, ``reduce/peak-flatten`` — so per-shard timers
        and reducer timers merge into a single tree per run. A node is
        ``{"seconds", "count", "children"}``; an interior node with no
        samples of its own has ``seconds == 0`` and its children carry
        the time. Flat phase names ("estimate") come out as root leaves.
        """
        root: dict = {"seconds": 0.0, "count": 0, "children": {}}
        for name, acc in sorted(self._phases.items()):
            node = root
            for part in name.split("/"):
                node = node["children"].setdefault(
                    part, {"seconds": 0.0, "count": 0, "children": {}}
                )
            node["seconds"] += acc[0]
            node["count"] += int(acc[1])
        return root["children"]

    def merge(self, other: "SpanTimer") -> None:
        for name, acc in other._phases.items():
            mine = self._phases.get(name)
            if mine is None:
                self._phases[name] = [acc[0], acc[1]]
            else:
                mine[0] += acc[0]
                mine[1] += acc[1]

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={acc[0] * 1e3:.2f}ms/{int(acc[1])}"
            for name, acc in self._phases.items()
        )
        return f"SpanTimer({inner})"

    def __getstate__(self):
        return self._phases

    def __setstate__(self, state):
        self._phases = state
