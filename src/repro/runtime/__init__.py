"""Discrete-time serverless platform simulator.

The paper's evaluation is itself a simulation at minute resolution: a
policy decides, after every invocation, which model variant (if any) to
keep alive for each of the next 10 minutes; the platform then accounts
warm/cold starts, keep-alive memory and provider cost. This subpackage is
that platform:

- :mod:`repro.runtime.costmodel`  — MB-minute pricing;
- :mod:`repro.runtime.container`  — container lifecycle & pool statistics;
- :mod:`repro.runtime.schedule`   — the keep-alive ledger policies write into;
- :mod:`repro.runtime.policy`     — the :class:`KeepAlivePolicy` interface;
- :mod:`repro.runtime.metrics`    — :class:`RunResult` and aggregation;
- :mod:`repro.runtime.simulator`  — the engine that drives a policy over a trace.
"""

from repro.runtime.costmodel import CostModel
from repro.runtime.container import Container, ContainerPool, ContainerState
from repro.runtime.schedule import KeepAliveSchedule
from repro.runtime.policy import KeepAlivePolicy
from repro.runtime.metrics import RunResult, aggregate_results, percent_improvement
from repro.runtime.simulator import Simulation, SimulationConfig

__all__ = [
    "Container",
    "ContainerPool",
    "ContainerState",
    "CostModel",
    "KeepAlivePolicy",
    "KeepAliveSchedule",
    "RunResult",
    "Simulation",
    "SimulationConfig",
    "aggregate_results",
    "percent_improvement",
]
