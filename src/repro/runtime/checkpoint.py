"""Engine checkpoints: durable mid-run state for crash-safe resume.

Both engine loops (:meth:`repro.runtime.simulator.Simulation._run_reference`
and :func:`repro.runtime.fastpath.run_fast`) can periodically capture a
:class:`SimulationState` — a complete, self-contained snapshot of every
piece of mutable run state at a minute boundary — and a later process can
hand that state back to :meth:`Simulation.run` to continue the run as if
it had never been interrupted.

The bit-identity contract
-------------------------
A resumed run must produce **byte-identical** results to an uninterrupted
one (pinned by ``tests/test_runtime_checkpoint.py``). Two design rules
make that hold:

- *One pickle payload.* Everything mutable — the policy (with its
  estimators and cached plan objects), the schedule (whose uniform-plan
  fast path compares plan objects by identity), the container pool, the
  event log, the observability session, the capacity RNG, the fault
  injector and the scalar accumulators — is pickled as **one** object
  graph, so shared references (the policy's cached plan inside
  ``schedule._last_plan``, the event log inside the pool) survive the
  round trip with their identities intact.
- *Boundary capture only.* Snapshots are taken between minutes (reference
  loop) or between event groups (fast loop), where the engine's local
  float accumulations are fully settled; immutable derived structures
  (event arrays, metric handles) are re-derived from the trace and the
  restored session on resume.

Wall-clock fields (``wall_clock_s``, ``policy_overhead_s`` under
``measure_overhead``) measure the machine, not the simulated system, and
are exempt — exactly as in the engine-equivalence golden tests.

Cadence
-------
``CheckpointConfig.every_minutes`` buckets the horizon; a snapshot fires
at the first processing point of each new bucket. The reference loop
visits every minute, so that is exactly minute ``k * every_minutes``; the
event-driven loop only touches event minutes, so its snapshot lands on
the first *event* of each bucket. Either way the cadence is a pure
function of the trace, so an interrupted run and a clean run write
checkpoints at the same minutes — which is what keeps checkpoint
counters identical between them.
"""

from __future__ import annotations

import base64
import binascii
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.utils.atomicio import atomic_write_bytes, canonical_json, sha256_bytes
from repro.utils.validation import check_positive_int

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "SNAPSHOT_FIELDS",
    "STATE_FIELDS",
    "WIRE_FIELDS",
    "WIRE_FORMAT",
    "CheckpointConfig",
    "SimulationState",
]

#: Bumped whenever the snapshot layout changes incompatibly; load()
#: refuses mismatched versions instead of resuming garbage.
#: v2: the fast loop's payload gained an incremental ``n_invocations``
#: accumulator (the stepper refactor serves minutes one at a time, so
#: the total can no longer be recomputed as a whole-trace sum at the
#: end), and ``repro.serve`` session snapshots (``engine="session:*"``)
#: joined the format. v2 also defines the JSON wire envelope
#: (``to_wire_json``/``from_wire_json``): the same payload bytes in a
#: versioned, integrity-checked JSON carrier — the pickle layout is
#: unchanged, so no bump; envelopes embed this version and refuse
#: mismatches exactly like ``load()``.
CHECKPOINT_SCHEMA_VERSION = 2

#: The schema manifest: the exact field set each engine's
#: ``live_state()`` pickles into the payload, per engine key. This is
#: the reviewed record of what ``CHECKPOINT_SCHEMA_VERSION`` names —
#: ``repro lint`` (RPR010) cross-checks each engine's ``live_state``
#: dict literal against its entry here, so adding/removing a
#: snapshot-carried field without editing this manifest (and bumping
#: the version with a migration note) fails the lint.
SNAPSHOT_FIELDS: dict[str, frozenset[str]] = {
    "reference": frozenset(
        {
            "policy",
            "events",
            "obs",
            "schedule",
            "pool",
            "service_time",
            "accuracy_sum",
            "n_invocations",
            "n_warm",
            "n_cold",
            "overhead",
            "n_decisions",
            "total_mb_minutes",
            "mem_series",
            "ideal_series",
            "capacity_rng",
            "n_forced",
            "injector",
            "n_checkpoints",
            "last_arrival",
        }
    ),
    "fast": frozenset(
        {
            "policy",
            "events",
            "obs",
            "schedule",
            "pool",
            "service_time",
            "accuracy_sum",
            "n_invocations",
            "n_warm",
            "n_cold",
            "total_mb_minutes",
            "mem_series",
            "ideal_series",
            "capacity_rng",
            "n_forced",
            "injector",
            "n_checkpoints",
            "last_arrival",
        }
    ),
    "fleet": frozenset(
        {
            "policy",
            "events",
            "obs",
            "model",
            "tables",
            "fleet",
            "pool",
            "injector",
            "service_time",
            "accuracy_sum",
            "n_invocations",
            "n_cold",
            "total_mb_minutes",
            "mem_series",
            "ideal_series",
            "next_minute",
        }
    ),
}

#: The :class:`SimulationState` field layout, pinned as (name,
#: annotation) pairs in declaration order. RPR010 compares this against
#: the dataclass body so a rename or retype of a snapshot field is as
#: loud as an added/removed one.
STATE_FIELDS: tuple[tuple[str, str], ...] = (
    ("engine", "str"),
    ("next_minute", "int"),
    ("cursor", "tuple"),
    ("payload", "bytes"),
    ("schema_version", "int"),
)

#: Format tag of the JSON wire envelope (:meth:`SimulationState.to_wire_json`).
WIRE_FORMAT = "repro-snapshot"

#: The wire-envelope schema: the exact key set ``to_wire_json`` emits,
#: pinned like ``SNAPSHOT_FIELDS``/``STATE_FIELDS`` — RPR010 cross-checks
#: the codec's dict literal against this manifest, so adding or removing
#: an envelope key without the reviewed manifest edit (and a version
#: note) fails the lint. The envelope embeds
#: ``CHECKPOINT_SCHEMA_VERSION`` — the wire format versions with the
#: snapshot schema, not separately.
WIRE_FIELDS: tuple[str, ...] = (
    "format",
    "schema_version",
    "engine",
    "next_minute",
    "cursor",
    "payload_sha256",
    "payload_b64",
)


@dataclass(frozen=True)
class SimulationState:
    """One engine checkpoint: where the run is, plus everything mutable.

    ``engine`` records which loop produced it (``"reference"`` or
    ``"fast"``) — a state can only resume on the loop that captured it.
    ``next_minute`` is the first minute not yet executed. ``cursor`` is
    engine-private resume bookkeeping (the fast loop's event-group and
    event indices, plus each loop's checkpoint-cadence bucket).
    ``payload`` is a single pickle of the live object graph.
    """

    engine: str
    next_minute: int
    cursor: tuple
    payload: bytes
    schema_version: int = CHECKPOINT_SCHEMA_VERSION

    @classmethod
    def snapshot(
        cls, engine: str, next_minute: int, cursor: tuple, live: dict[str, Any]
    ) -> "SimulationState":
        """Capture the live state dict into a self-contained snapshot.

        Pickling immediately (rather than holding references) decouples
        the snapshot from the still-running engine: later minutes cannot
        mutate what was captured.
        """
        return cls(
            engine=engine,
            next_minute=next_minute,
            cursor=tuple(cursor),
            payload=pickle.dumps(live, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def restore(self) -> dict[str, Any]:
        """Rehydrate the captured object graph (a fresh copy per call)."""
        if self.schema_version != CHECKPOINT_SCHEMA_VERSION:
            raise ValueError(
                f"checkpoint schema v{self.schema_version} is not "
                f"readable by this build (expects v{CHECKPOINT_SCHEMA_VERSION})"
            )
        return pickle.loads(self.payload)

    # -- wire form -----------------------------------------------------------
    def to_wire_json(self) -> str:
        """The snapshot as a canonical-JSON wire envelope.

        This is the format snapshots travel in over HTTP (and the
        on-disk form the serve-layer journal compacts to): a versioned,
        inspectable JSON object instead of a raw pickle stream. The
        pickle payload rides inside as base64 with a SHA-256 beside it,
        so the envelope round-trips **bit-identically** — ``payload``
        bytes are preserved exactly — while transport corruption and
        schema drift are detected before anything is unpickled.
        Deserializing the payload still executes pickle bytecode, so
        the serving layer only accepts envelopes from authenticated
        callers (see the bearer-token gate in :mod:`repro.serve.app`).
        """
        return canonical_json(
            {
                "format": WIRE_FORMAT,
                "schema_version": self.schema_version,
                "engine": self.engine,
                "next_minute": self.next_minute,
                "cursor": list(self.cursor),
                "payload_sha256": sha256_bytes(self.payload),
                "payload_b64": base64.b64encode(self.payload).decode("ascii"),
            }
        )

    @classmethod
    def from_wire_json(cls, text: str | bytes) -> "SimulationState":
        """Rebuild a snapshot from :meth:`to_wire_json` output.

        Raises ``ValueError`` on anything that is not a well-formed,
        current-version, integrity-intact envelope — undecodable JSON,
        a foreign ``format`` tag, a schema-version mismatch, missing
        keys, or a payload whose SHA-256 does not match.
        """
        if isinstance(text, bytes):
            text = text.decode("utf-8", errors="replace")
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"undecodable snapshot envelope: {exc}") from exc
        if not isinstance(obj, dict) or obj.get("format") != WIRE_FORMAT:
            raise ValueError(
                "not a snapshot envelope: expected a JSON object with "
                f"format={WIRE_FORMAT!r}"
            )
        missing = [key for key in WIRE_FIELDS if key not in obj]
        if missing:
            raise ValueError(
                f"snapshot envelope is missing keys: {', '.join(missing)}"
            )
        version = obj["schema_version"]
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise ValueError(
                f"snapshot schema v{version} is not readable by this "
                f"build (expects v{CHECKPOINT_SCHEMA_VERSION})"
            )
        try:
            payload = base64.b64decode(obj["payload_b64"], validate=True)
        except (binascii.Error, TypeError) as exc:
            raise ValueError(f"undecodable snapshot payload: {exc}") from exc
        digest = sha256_bytes(payload)
        if digest != obj["payload_sha256"]:
            raise ValueError(
                "snapshot payload corrupt: sha256 mismatch "
                f"(expected {obj['payload_sha256']}, got {digest})"
            )
        cursor = obj["cursor"]
        if not isinstance(cursor, list):
            raise ValueError(f"snapshot cursor must be a list, got {cursor!r}")
        return cls(
            engine=str(obj["engine"]),
            next_minute=int(obj["next_minute"]),
            cursor=tuple(cursor),
            payload=payload,
            schema_version=int(version),
        )

    # -- durable form --------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the snapshot to ``path`` atomically (crash-safe: a kill
        mid-write leaves the previous checkpoint intact)."""
        return atomic_write_bytes(
            Path(path), pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        )

    @classmethod
    def load(cls, path: str | Path) -> "SimulationState":
        """Read a snapshot written by :meth:`save`."""
        with open(path, "rb") as fh:
            state = pickle.load(fh)
        if not isinstance(state, cls):
            raise TypeError(f"{path} does not contain a SimulationState")
        if state.schema_version != CHECKPOINT_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: checkpoint schema v{state.schema_version} is not "
                f"readable by this build (expects v{CHECKPOINT_SCHEMA_VERSION})"
            )
        return state


@dataclass(frozen=True)
class CheckpointConfig:
    """Periodic checkpointing for one run.

    ``path`` — where each snapshot is written (atomically, replacing the
    previous one); ``None`` keeps snapshots in memory only, for callers
    that consume them through ``on_snapshot``.
    ``every_minutes`` — cadence bucket width (see module docstring).
    ``on_snapshot`` — optional callback receiving each
    :class:`SimulationState` after it is (optionally) persisted; the test
    harness and the chaos hooks ride on this.
    """

    path: str | Path | None = None
    every_minutes: int = 240
    on_snapshot: Callable[[SimulationState], None] | None = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        check_positive_int("every_minutes", self.every_minutes)
        if self.path is None and self.on_snapshot is None:
            raise ValueError(
                "CheckpointConfig needs a path and/or an on_snapshot "
                "callback; otherwise snapshots would be discarded"
            )

    def emit(self, state: SimulationState) -> None:
        """Persist and/or hand off one snapshot (engine-side hook)."""
        if self.path is not None:
            state.save(self.path)
        if self.on_snapshot is not None:
            self.on_snapshot(state)
