"""Columnar (struct-of-arrays) state for the fleet engine.

The fleet engine (:mod:`repro.runtime.fleet`) simulates 10⁴–10⁵ functions
by replacing the per-function Python objects of the reference loop with
dense numpy arrays keyed by function id. This module holds those arrays
and the vectorized kernels over them; the engine loop orchestrates.

Bit-identity with the reference engine is the design constraint, not a
best-effort goal. Three properties make it achievable:

- **Canonical memory evaluation.** :class:`KeepAliveSchedule` evaluates a
  minute's keep-alive memory as counts × footprints in ascending-footprint
  order. :class:`RingSchedule` maintains the same integer counts (as a
  ``(ring column, footprint slot)`` matrix) and folds them in the same
  slot order, so both reach the same float bit-for-bit.
- **Elementwise-identical float expressions.** Every float the reference
  computes per function (probabilities, utility values, service-time
  contributions) is a short expression over scalars; evaluating the same
  expression elementwise over float64 arrays produces the same values,
  because IEEE arithmetic is deterministic per element. Sequential
  *accumulations* (service time, row-wise ``cumsum`` of probabilities)
  are reproduced with sequential folds — see :func:`seq_fold`.
- **Order-free integer state.** Invocation histograms, entry counts and
  downgrade counters are integers; batch scatter-adds (``np.add.at``)
  commute, so shards can update partials independently and a reducer can
  merge them by exact integer addition.

Nothing here imports the engine or the policies: the kernels are pure
state + math, testable in isolation.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.models.variants import ModelFamily, ModelVariant

__all__ = [
    "ColumnarEstimator",
    "RingSchedule",
    "VariantTables",
    "seq_fold",
]


def seq_fold(acc: float, values: np.ndarray) -> float:
    """Fold ``values`` into ``acc`` by strictly sequential float addition.

    Equivalent to ``for v in values: acc += v`` — numpy's ``cumsum`` adds
    elements one at a time in order (unlike ``sum``, which may use
    pairwise summation), so the last partial sum is exactly the scalar
    loop's result. The engine uses this to accumulate per-invocation
    service-time and accuracy contributions in the reference loop's
    order without a Python-level loop. Pinned against the scalar loop by
    a unit test in ``tests/test_engine_fleet.py``.
    """
    if values.size == 0:
        return acc
    return float(np.cumsum(np.concatenate(((acc,), values)))[-1])


class VariantTables:
    """Per-(family, level) lookup tables for a fleet's assignment.

    A fleet has at most a handful of distinct model families (the zoo has
    five) shared by all functions, so every per-variant quantity the
    engine needs — service times, accuracy, footprint, the utility *Ai*
    term — is a small dense ``(family, level)`` table indexed by
    ``fam_idx[fid]`` and a variant level. Container footprints are
    additionally mapped to *slots*: the ascending sequence of distinct
    footprint values across all families, which is exactly the canonical
    evaluation order of :meth:`KeepAliveSchedule.memory_at`.
    """

    def __init__(self, assignment: dict[int, ModelFamily], n_functions: int):
        families: list[ModelFamily] = []
        index_of: dict[ModelFamily, int] = {}
        fam_idx = np.empty(n_functions, dtype=np.int64)
        for fid in range(n_functions):
            fam = assignment[fid]
            i = index_of.get(fam)
            if i is None:
                i = index_of[fam] = len(families)
                families.append(fam)
            fam_idx[fid] = i
        n_fam = len(families)
        width = max(f.n_variants for f in families)

        self.families = families
        self.fam_idx = fam_idx
        #: number of variants of each function's family (the paper's N)
        self.n_variants = np.array(
            [f.n_variants for f in families], dtype=np.int64
        )[fam_idx]

        self.warm_s = np.zeros((n_fam, width))
        self.cold_s = np.zeros((n_fam, width))
        self.accuracy = np.zeros((n_fam, width))
        self.memory_mb = np.zeros((n_fam, width))
        self.ai = np.zeros((n_fam, width))  # family.accuracy_improvement
        #: the zoo's singleton variant objects, for event/pool interop
        self.variant_objs: list[list[ModelVariant]] = []
        for i, fam in enumerate(families):
            row = []
            for level, v in enumerate(fam.variants):
                self.warm_s[i, level] = v.warm_service_time_s
                self.cold_s[i, level] = v.cold_service_time_s
                self.accuracy[i, level] = v.accuracy
                self.memory_mb[i, level] = v.memory_mb
                self.ai[i, level] = fam.accuracy_improvement(v)
                row.append(v)
            self.variant_objs.append(row)

        #: distinct footprints ascending — the canonical fold order
        self.slot_fps: list[float] = sorted(
            {v.memory_mb for f in families for v in f.variants}
        )
        self.n_slots = len(self.slot_fps)
        self.slot_of = np.zeros((n_fam, width), dtype=np.int64)
        for i, fam in enumerate(families):
            for level, v in enumerate(fam.variants):
                self.slot_of[i, level] = self.slot_fps.index(v.memory_mb)

        #: per-fid footprint of the family's highest variant (ideal series)
        self.highest_mb = self.memory_mb[fam_idx, self.n_variants - 1]

    def variant(self, fam: int, level: int) -> ModelVariant:
        """The singleton variant object at ``(family index, level)``."""
        return self.variant_objs[fam][level]


class ColumnarEstimator:
    """Vectorized :class:`~repro.core.interarrival.InterArrivalEstimator`.

    Holds one shard's inter-arrival state as dense arrays over local
    function indices. The reference keeps a per-function deque of
    ``(arrival minute, gap)`` pairs and evicts lazily at query time; here
    the recent queue is a deque of *per-minute batches* and eviction runs
    eagerly once per minute. The two are equivalent: a query at minute
    ``now`` sees exactly the gaps whose arrival minute is ``>= now -
    local_window``, however the eviction work was scheduled.

    Query results are the same float64 values the reference computes —
    the normalizing divisions, the averaging of the two periods and the
    mode transforms are the same elementwise expressions, and the
    ``cumsum``-based mode transforms add in the same order.
    """

    def __init__(
        self,
        n_functions: int,
        window: int,
        local_window: int,
        normalization: str,
        mode: str,
    ):
        self.n_functions = n_functions
        self.window = window
        self.local_window = local_window
        self.normalization = normalization
        self.mode = mode
        self.last_arrival = np.full(n_functions, -1, dtype=np.int64)
        # index d-1 = count of inter-arrivals of exactly d minutes, d<=W
        self.lifetime_counts = np.zeros((n_functions, window), dtype=np.int64)
        self.lifetime_total = np.zeros(n_functions, dtype=np.int64)
        self.recent_counts = np.zeros((n_functions, window), dtype=np.int64)
        self.recent_total = np.zeros(n_functions, dtype=np.int64)
        # (minute, fids, gaps) batches; fids unique within a batch
        self._batches: deque[tuple[int, np.ndarray, np.ndarray]] = deque()

    def evict(self, now: int) -> None:
        """Drop recent-period gaps older than the local window.

        Call once at the start of each minute, before any query at that
        minute — the reference evicts lazily per query with the same
        ``arrival < now - local_window`` cutoff.
        """
        cutoff = now - self.local_window
        batches = self._batches
        while batches and batches[0][0] < cutoff:
            _, fids, gaps = batches.popleft()
            self.recent_total[fids] -= 1
            inside = gaps <= self.window
            if inside.any():
                self.recent_counts[fids[inside], gaps[inside] - 1] -= 1

    def observe(self, fids: np.ndarray, minute: int) -> None:
        """Record one arrival at ``minute`` for each function in ``fids``.

        ``fids`` must be unique (the engine passes each minute's invoking
        functions once — multiple invocations within a minute are one
        arrival at the paper's minute resolution).
        """
        prev = self.last_arrival[fids]
        seen = prev >= 0
        if seen.any():
            gapped = fids[seen]
            gaps = minute - prev[seen]
            self.lifetime_total[gapped] += 1
            self.recent_total[gapped] += 1
            inside = gaps <= self.window
            if inside.any():
                self.lifetime_counts[gapped[inside], gaps[inside] - 1] += 1
                self.recent_counts[gapped[inside], gaps[inside] - 1] += 1
            self._batches.append((minute, gapped, gaps))
        self.last_arrival[fids] = minute

    def no_history(self, fids: np.ndarray) -> np.ndarray:
        """Mask of functions with no inter-arrival data in either period."""
        return (self.lifetime_total[fids] == 0) & (self.recent_total[fids] == 0)

    def exact_rows(self, fids: np.ndarray) -> np.ndarray:
        """P(gap = d) rows for ``fids``, d = 1..window.

        Mirrors ``InterArrivalEstimator._exact``: each period's histogram
        over its denominator, averaged when both periods have data, the
        informative one alone otherwise, zeros when neither does.
        """
        lc = self.lifetime_counts[fids]
        rc = self.recent_counts[fids]
        if self.normalization == "window":
            ld = lc.sum(axis=1)
            rd = rc.sum(axis=1)
        else:
            ld = self.lifetime_total[fids]
            rd = self.recent_total[fids]
        lifetime = np.zeros(lc.shape)
        np.divide(lc, ld[:, None], out=lifetime, where=ld[:, None] > 0)
        recent = np.zeros(rc.shape)
        np.divide(rc, rd[:, None], out=recent, where=rd[:, None] > 0)
        return np.where(
            ((ld > 0) & (rd > 0))[:, None],
            (lifetime + recent) / 2.0,
            np.where((ld > 0)[:, None], lifetime, recent),
        )

    def mode_rows(self, exact: np.ndarray) -> np.ndarray:
        """Apply the configured probability mode row-wise.

        Row-wise ``cumsum`` adds sequentially along the axis, matching
        the reference's 1-D ``cumsum`` per function.
        """
        if self.mode == "exact":
            return exact
        if self.mode == "cumulative":
            return np.minimum(np.cumsum(exact, axis=1), 1.0)
        survival = np.minimum(np.cumsum(exact[:, ::-1], axis=1)[:, ::-1], 1.0)
        if self.mode == "survival":
            return survival
        with np.errstate(divide="ignore", invalid="ignore"):
            hazard = np.where(survival > 0, exact / survival, 0.0)
        return np.minimum(hazard, 1.0)

    def ip_and_max_remaining(
        self, fids: np.ndarray, now: int, exact: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """The utility *Ip* and the drop-protection max-remaining
        probability for each function in ``fids``, at minute ``now``.

        Both follow the reference's offset ladder: never-seen → 0,
        offset ≤ 0 (arrival this minute) → 1, offset beyond the window →
        0, else the exact probability at the offset (*Ip*) / the maximum
        exact probability from the offset to the end of the window.
        """
        if exact is None:
            exact = self.exact_rows(fids)
        last = self.last_arrival[fids]
        offset = now - last
        window = self.window
        in_window = (last >= 0) & (offset >= 1) & (offset <= window)
        col = np.where(in_window, offset - 1, 0)
        rows = np.arange(len(fids))
        # max over the suffix is order-independent, so the accumulate
        # matches the reference's probs[offset-1:].max() value-for-value
        suffix_max = np.maximum.accumulate(exact[:, ::-1], axis=1)[:, ::-1]

        def ladder(hit: np.ndarray) -> np.ndarray:
            return np.where(
                last < 0,
                0.0,
                np.where(offset <= 0, 1.0, np.where(offset > window, 0.0, hit)),
            )

        return ladder(exact[rows, col]), ladder(suffix_max[rows, col])


class RingSchedule:
    """One shard's keep-alive entries over a rolling window of minutes.

    Entries only ever exist for minutes ``t .. t+K`` (the engine is at
    minute ``t``; plans reach at most K ahead), so the schedule is a ring
    of ``K+1`` columns: column ``m % (K+1)`` holds minute ``m``'s planned
    variant *level* per function (−1 = nothing planned). Alongside, a
    ``(column, footprint slot)`` count matrix mirrors
    :class:`KeepAliveSchedule`'s per-minute count ledger for this shard's
    fid range — the reducer sums these across shards and folds them in
    slot order to reproduce the canonical memory value exactly.
    """

    def __init__(self, n_functions: int, keep_alive_window: int, tables: VariantTables, fam: np.ndarray):
        self.n_functions = n_functions
        self.keep_alive_window = keep_alive_window
        self.n_cols = keep_alive_window + 1
        self.levels = np.full((n_functions, self.n_cols), -1, dtype=np.int8)
        self.cnt = np.zeros((self.n_cols, tables.n_slots), dtype=np.int64)
        self.slot_of = tables.slot_of
        self.fam = fam  # family index per local fid

    def begin_minute(self, minute: int) -> None:
        """Recycle the column that held minute ``minute - 1``: it now
        represents minute ``minute + K`` (the reference's ``advance``)."""
        if minute > 0:
            col = (minute - 1) % self.n_cols
            self.levels[:, col] = -1
            self.cnt[col, :] = 0

    def alive_levels(self, lfids: np.ndarray, minute: int) -> np.ndarray:
        """Planned level at ``minute`` for each local fid (−1 = absent)."""
        return self.levels[lfids, minute % self.n_cols].astype(np.int64)

    def alive_lfids(self, minute: int) -> np.ndarray:
        """Local fids with an entry at ``minute``, ascending."""
        return np.flatnonzero(self.levels[:, minute % self.n_cols] >= 0)

    def mark_alive(self, lfids: np.ndarray, minute: int, levels: np.ndarray) -> None:
        """Add entries at ``minute`` for fids known to have none (the
        engine's cold-start bookkeeping)."""
        if lfids.size == 0:
            return
        col = minute % self.n_cols
        self.levels[lfids, col] = levels
        np.add.at(self.cnt, (col, self.slot_of[self.fam[lfids], levels]), 1)

    def mark_alive_one(self, lfid: int, minute: int, level: int) -> None:
        """Scalar :meth:`mark_alive` for the engine's compatibility loop."""
        col = minute % self.n_cols
        self.levels[lfid, col] = level
        self.cnt[col, self.slot_of[self.fam[lfid], level]] += 1

    def write_plans(
        self, lfids: np.ndarray, minute: int, plan_levels: np.ndarray
    ) -> None:
        """Install plans for minutes ``minute+1 .. minute+W`` (one row per
        fid in ``lfids``; level −1 clears the minute's entry).

        Equivalent to the reference's per-minute ``set_plan`` writes:
        unchanged entries are untouched, changes move one integer count
        from the old footprint slot to the new one.
        """
        if lfids.size == 0:
            return
        width = plan_levels.shape[1]
        cols = (minute + 1 + np.arange(width)) % self.n_cols
        old = self.levels[lfids[:, None], cols[None, :]].astype(np.int64)
        changed = old != plan_levels
        fam = self.fam[lfids]
        rows, offs = np.nonzero(changed & (old >= 0))
        if rows.size:
            np.add.at(
                self.cnt,
                (cols[offs], self.slot_of[fam[rows], old[rows, offs]]),
                -1,
            )
        rows, offs = np.nonzero(changed & (plan_levels >= 0))
        if rows.size:
            np.add.at(
                self.cnt,
                (cols[offs], self.slot_of[fam[rows], plan_levels[rows, offs]]),
                1,
            )
        self.levels[lfids[:, None], cols[None, :]] = plan_levels.astype(np.int8)

    def downgrade(self, lfid: int, minute: int, allow_drop: bool) -> None:
        """Downgrade every entry of one function from ``minute`` on by one
        level; entries already at level 0 are dropped when ``allow_drop``
        (the schedule-layer semantics of ``KeepAliveSchedule.downgrade``).
        """
        fam = int(self.fam[lfid])
        slot_row = self.slot_of[fam]
        for m in range(minute, minute + self.keep_alive_window + 1):
            col = m % self.n_cols
            level = int(self.levels[lfid, col])
            if level < 0:
                continue
            if level > 0:
                self.cnt[col, slot_row[level]] -= 1
                self.cnt[col, slot_row[level - 1]] += 1
                self.levels[lfid, col] = level - 1
            elif allow_drop:
                self.cnt[col, slot_row[0]] -= 1
                self.levels[lfid, col] = -1
