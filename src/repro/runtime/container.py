"""Container lifecycle tracking.

The schedule (:mod:`repro.runtime.schedule`) decides *what should be warm*
each minute; this module tracks the containers that realize those
decisions. A container hosts exactly one model variant of one function.
When the planned variant for a function changes between minutes, the old
container is evicted and the new variant's container is pre-warmed in the
background — that pre-warm is a provider-side action (its cost shows up as
that minute's keep-alive memory), not a user-visible cold start. A
user-visible cold start only happens when an invocation arrives while *no*
container for the function is warm.

The pool exists for observability: warm-minute totals per variant level,
eviction/pre-warm counts and per-function container churn feed the memory
figures and the container-churn ablation, and the invariants it enforces
(one live container per function, monotone time) guard the engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.models.variants import ModelVariant
from repro.runtime.events import EventKind, EventLog

__all__ = ["Container", "ContainerPool", "ContainerState", "PoolStats"]


class ContainerState(enum.Enum):
    """Lifecycle states of a container."""

    WARM = "warm"  # loaded and able to serve warm starts
    EVICTED = "evicted"  # terminal


@dataclass
class Container:
    """One provisioned container instance."""

    container_id: int
    function_id: int
    variant: ModelVariant
    created_minute: int
    state: ContainerState = ContainerState.WARM
    warm_minutes: int = 0
    served_invocations: int = 0
    evicted_minute: int | None = None

    def evict(self, minute: int) -> None:
        if self.state is ContainerState.EVICTED:
            raise RuntimeError(f"container {self.container_id} already evicted")
        self.state = ContainerState.EVICTED
        self.evicted_minute = minute

    @property
    def lifetime_minutes(self) -> int:
        """Minutes the container stayed provisioned (so far, if still warm)."""
        end = self.evicted_minute
        if end is None:
            return self.warm_minutes
        return end - self.created_minute


@dataclass
class PoolStats:
    """Aggregate pool statistics for one run."""

    containers_created: int = 0
    evictions: int = 0
    prewarms: int = 0  # variant switches (background replacement)
    cold_creates: int = 0  # containers created on a user-visible cold start
    warm_mb_minutes: float = 0.0
    warm_minutes_by_level: dict[int, int] = field(default_factory=dict)


class ContainerPool:
    """Tracks at most one live container per function."""

    def __init__(self, events: EventLog | None = None) -> None:
        self._live: dict[int, Container] = {}
        self._next_id = 0
        self._last_minute = -1
        self.stats = PoolStats()
        self._history: list[Container] = []
        self._events = events

    # -- queries -----------------------------------------------------------
    def live_container(self, function_id: int) -> Container | None:
        return self._live.get(function_id)

    @property
    def n_live(self) -> int:
        return len(self._live)

    def history(self) -> list[Container]:
        """All containers ever created (evicted ones included)."""
        return list(self._history)

    # -- transitions --------------------------------------------------------
    def _create(
        self, function_id: int, variant: ModelVariant, minute: int, *, cold: bool
    ) -> Container:
        c = Container(
            container_id=self._next_id,
            function_id=function_id,
            variant=variant,
            created_minute=minute,
        )
        self._next_id += 1
        self._live[function_id] = c
        self._history.append(c)
        self.stats.containers_created += 1
        if cold:
            self.stats.cold_creates += 1
        elif self._events is not None:
            self._events.emit(
                minute, EventKind.PREWARM, function_id, variant.name
            )
        return c

    def reconcile(
        self, function_id: int, desired: ModelVariant | None, minute: int
    ) -> Container | None:
        """Make the live container match the schedule's decision at ``minute``.

        Returns the (possibly new) live container, or ``None`` when the
        function should have nothing warm. Called once per function per
        minute by the engine; ``minute`` must not go backwards.
        """
        if minute < self._last_minute:
            raise ValueError(
                f"time went backwards: reconcile({minute}) after {self._last_minute}"
            )
        self._last_minute = minute
        current = self._live.get(function_id)
        if desired is None:
            if current is not None:
                self._evict(current, function_id, minute)
            return None
        if current is not None and current.variant == desired:
            return current
        if current is not None:  # variant switch: background pre-warm
            self._evict(current, function_id, minute)
        new = self._create(function_id, desired, minute, cold=False)
        self.stats.prewarms += 1
        if current is not None and self._events is not None:
            # First-class switch event alongside the evict/prewarm pair,
            # so Algorithm-2 realizations are directly queryable.
            self._events.emit(
                minute,
                EventKind.VARIANT_SWITCH,
                function_id,
                desired.name,
                float(current.variant.level),
            )
        return new

    def _evict(self, container: Container, function_id: int, minute: int) -> None:
        container.evict(minute)
        del self._live[function_id]
        self.stats.evictions += 1
        if self._events is not None:
            self._events.emit(
                minute, EventKind.EVICTION, function_id, container.variant.name
            )

    def cold_start(
        self, function_id: int, variant: ModelVariant, minute: int
    ) -> Container:
        """Create a container because an invocation found nothing warm."""
        current = self._live.get(function_id)
        if current is not None:
            raise RuntimeError(
                f"cold start requested for function {function_id} at minute "
                f"{minute} but container {current.container_id} is live"
            )
        return self._create(function_id, variant, minute, cold=True)

    def record_served(self, function_id: int, count: int) -> None:
        """Attribute ``count`` served invocations to the live container."""
        c = self._live.get(function_id)
        if c is None:
            raise RuntimeError(
                f"no live container for function {function_id} to serve with"
            )
        c.served_invocations += count

    def tick_all(self) -> None:
        """Charge one warm minute to every live container.

        Called once per simulated minute, at commit time (after the
        cross-function review has settled the minute's final variants).
        """
        for c in self._live.values():
            c.warm_minutes += 1
            self.stats.warm_mb_minutes += c.variant.memory_mb
            lvl = c.variant.level
            self.stats.warm_minutes_by_level[lvl] = (
                self.stats.warm_minutes_by_level.get(lvl, 0) + 1
            )
