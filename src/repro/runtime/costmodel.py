"""Keep-alive cost accounting.

Providers bill keep-alive by memory-time (AWS Lambda prices GB-seconds).
The simulator tracks keep-alive memory in MB at minute resolution, so the
natural unit here is **USD per MB-minute**.

The default price is calibrated so that a full two-week, 12-function run
under the fixed 10-minute keep-alive policy lands in the paper's Figure 5
cost range (roughly $400 for all-lowest to $1000 for all-highest). The
paper's quoted "$16.67 for every KB-second" is not dimensionally usable
(it would make a single container cost millions per hour), so the price is
an explicit parameter rather than a hard-coded constant; all comparisons
in the paper and in this reproduction are *relative*, which a global price
scale does not affect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["CostModel", "DEFAULT_USD_PER_MB_MINUTE"]

#: Calibrated so OpenWhisk-policy full runs land in Fig. 5's dollar range.
DEFAULT_USD_PER_MB_MINUTE = 1.5e-6


@dataclass(frozen=True)
class CostModel:
    """Converts keep-alive memory usage into provider cost."""

    usd_per_mb_minute: float = DEFAULT_USD_PER_MB_MINUTE

    def __post_init__(self) -> None:
        check_positive("usd_per_mb_minute", self.usd_per_mb_minute)

    def minute_cost(self, memory_mb: float) -> float:
        """Cost of holding ``memory_mb`` alive for one minute."""
        if memory_mb < 0:
            raise ValueError(f"memory_mb must be >= 0, got {memory_mb}")
        return memory_mb * self.usd_per_mb_minute

    def series_cost(self, memory_series_mb: np.ndarray) -> float:
        """Total cost of a per-minute keep-alive memory series."""
        series = np.asarray(memory_series_mb, dtype=float)
        if series.size and series.min() < 0:
            raise ValueError("memory series must be non-negative")
        return float(series.sum() * self.usd_per_mb_minute)

    def cost_series(self, memory_series_mb: np.ndarray) -> np.ndarray:
        """Per-minute cost series for a memory series."""
        series = np.asarray(memory_series_mb, dtype=float)
        return series * self.usd_per_mb_minute

    def cents_per_hour(self, memory_mb: float) -> float:
        """Table-I-style keep-alive cost of one container, in cents/hour."""
        return self.minute_cost(memory_mb) * 60.0 * 100.0
