"""Structured event log for simulation runs.

The engine can record a typed event stream — invocations and how they
were served, container pre-warms/evictions, per-minute memory commits —
which gives the observability a provider would need to debug a
keep-alive policy in production: *why* was this invocation cold, what
was warm at that minute, when did the variant switch?

Enable with ``SimulationConfig(record_events=True)``; the log is
returned on ``RunResult.events``. Events are lightweight frozen
dataclasses; the log supports filtering by kind and function.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Iterator

__all__ = ["Event", "EventKind", "EventLog"]


class EventKind(enum.Enum):
    """What happened."""

    COLD_START = "cold_start"  # invocation found nothing warm
    WARM_START = "warm_start"  # invocation served by a warm container
    PREWARM = "prewarm"  # platform brought a container up in the background
    EVICTION = "eviction"  # container released
    MEMORY_COMMIT = "memory_commit"  # minute's keep-alive memory settled
    DOWNGRADE = "downgrade"  # a keep-alive moved to a lower variant / dropped
    VARIANT_SWITCH = "variant_switch"  # pool replaced a container's variant
    SPAWN_FAILURE = "spawn_failure"  # injected container-spawn failure(s)
    POLICY_FAULT = "policy_fault"  # policy crashed; crash-isolation engaged


@dataclass(frozen=True)
class Event:
    """One event.

    ``function_id`` is -1 for platform-wide events (memory commits);
    ``variant_name`` / ``value`` carry kind-specific detail:

    - COLD_START / WARM_START: the serving variant; ``value`` is the
      number of invocations served in that minute by that path;
    - PREWARM / EVICTION: the variant brought up / released;
    - MEMORY_COMMIT: ``value`` is the committed keep-alive memory in MB;
    - DOWNGRADE: the variant downgraded *to* (``None`` when the
      keep-alive was dropped entirely); ``value`` is 1.0 when the
      capacity pressure valve forced it, 0.0 for a policy decision
      (Algorithm 2 / MILP);
    - VARIANT_SWITCH: the new variant the pool brought up; ``value`` is
      the level of the variant it replaced;
    - SPAWN_FAILURE: the variant whose spawn failed; ``value`` is the
      number of failed attempts before a spawn succeeded;
    - POLICY_FAULT: recorded when the crash-isolation wrapper catches a
      policy exception; ``variant_name`` is the failing hook
      (``"plan"``, ``"cold_variant"``, ...).
    """

    minute: int
    kind: EventKind
    function_id: int = -1
    variant_name: str | None = None
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.minute < 0:
            raise ValueError(f"minute must be >= 0, got {self.minute}")


class EventLog:
    """An append-only, queryable event stream."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    # -- recording ----------------------------------------------------------
    def record(self, event: Event) -> None:
        if self._events and event.minute < self._events[-1].minute:
            raise ValueError(
                f"events must be recorded in time order "
                f"({event.minute} < {self._events[-1].minute})"
            )
        self._events.append(event)

    def emit(
        self,
        minute: int,
        kind: EventKind,
        function_id: int = -1,
        variant_name: str | None = None,
        value: float = 0.0,
    ) -> None:
        """Convenience constructor + record."""
        self.record(Event(minute, kind, function_id, variant_name, value))

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, i: int) -> Event:
        return self._events[i]

    def of_kind(self, kind: EventKind) -> list[Event]:
        return [e for e in self._events if e.kind is kind]

    def of_kinds(self, *kinds: EventKind) -> list[Event]:
        """Events matching any of ``kinds``, in time order."""
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def for_function(self, function_id: int) -> list[Event]:
        return [e for e in self._events if e.function_id == function_id]

    def between(self, start: int, stop: int) -> list[Event]:
        """Events with ``start <= minute < stop``."""
        return [e for e in self._events if start <= e.minute < stop]

    def count(self, kind: EventKind) -> int:
        return sum(1 for e in self._events if e.kind is kind)

    def cold_start_minutes(self, function_id: int) -> list[int]:
        """Minutes at which a function cold-started (debugging aid)."""
        return [
            e.minute
            for e in self._events
            if e.kind is EventKind.COLD_START and e.function_id == function_id
        ]
