"""Event-driven fast path through the simulation engine.

The reference loop (:meth:`repro.runtime.simulator.Simulation._run_reference`)
walks every minute of the horizon and, per minute, reconciles the
container pool, runs the policy review and queries the schedule — even on
minutes where nothing invokes. On realistic traces most of that work is
idle overhead: the schedule can only change at minutes with invocations
(plans), during a policy review that actually flattens a peak, or under
the capacity pressure valve.

This module exploits that. ``run_fast``:

- extracts the *event minutes* (minutes with >= 1 invocation) from the
  trace once, as flat numpy arrays, instead of scanning every minute;
- serves/plans only at event minutes, reading the schedule's entry maps
  directly;
- accounts the idle spans between events analytically from the schedule's
  incremental per-minute memory ledger (``KeepAliveSchedule.memory_slice``)
  — the ledger between two events is already fully determined by the
  plans installed at or before the earlier event;
- keeps per-minute work only where semantics demand it: the container
  pool charges warm minutes each minute, policies with a review stage
  (PULSE, MILP) feed their peak detector each minute via the O(1)
  :meth:`~repro.runtime.policy.KeepAlivePolicy.idle_review` hook (falling
  back to the full review exactly on peak minutes), and the capacity
  valve checks the ledger each minute (O(1) per check);
- never prunes the schedule mid-run: the reference loop pays an
  ``advance()`` per minute to forget past entries, but the fast loop's
  reads are all keyed by exact minute, so stale entries are simply left
  in place (memory stays bounded by the total number of planned entries,
  ~invocations x window).

Metric equivalence with the reference loop is bit-exact — the floating
point accumulations happen in the same order over the same values — and
pinned by the golden test in ``tests/test_engine_fastpath.py`` across all
bundled policies with events/capacity on and off. The only excluded
fields are ``policy_overhead_s`` / ``n_policy_decisions`` (wall-clock
measurements; ``measure_overhead=True`` runs never dispatch here) and
``wall_clock_s``.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.faults.injector import FaultInjector
from repro.obs.session import ObsSession
from repro.runtime.checkpoint import CheckpointConfig, SimulationState
from repro.runtime.container import ContainerPool
from repro.runtime.events import EventKind, EventLog
from repro.runtime.metrics import RunResult
from repro.runtime.policy import KeepAlivePolicy
from repro.runtime.schedule import KeepAliveSchedule
from repro.runtime.simulator import apply_capacity_valve, collect_resilience
from repro.utils.rng import rng_from_seed

__all__ = ["run_fast"]


def _policy_has_review(policy: KeepAlivePolicy) -> bool:
    """True when the policy overrides review_minute (needs the per-minute
    review cadence); the no-op base implementation can be skipped wholesale."""
    return type(policy).review_minute is not KeepAlivePolicy.review_minute


def run_fast(
    sim,
    checkpoint: CheckpointConfig | None = None,
    resume_from: SimulationState | None = None,
) -> RunResult:
    """Execute ``sim`` (a :class:`~repro.runtime.simulator.Simulation`)
    through the event-driven loop. Same contract as the reference loop,
    including checkpoint/resume (snapshots land at the first event group
    of each cadence bucket — the fast loop never visits idle minutes)."""
    trace, cfg = sim.trace, sim.config
    horizon = trace.horizon
    n_fn = trace.n_functions
    counts = trace.counts

    if resume_from is None:
        policy = sim.policy
        events = EventLog() if cfg.record_events else None
        obs = ObsSession(cfg.observe) if cfg.observe is not None else None
        if obs is not None or events is not None:
            # Before bind, so on_bind can wire policy sub-components.
            policy.attach_observability(obs, events)
        policy.bind(trace, sim.assignment, cfg.keep_alive_window)
        schedule = KeepAliveSchedule(
            n_fn, cfg.keep_alive_window, horizon_hint=horizon
        )
        pool = (
            ContainerPool(events)
            if (cfg.track_containers or cfg.record_events)
            else None
        )
        service_time = 0.0
        accuracy_sum = 0.0
        n_warm = 0
        n_cold = 0
        total_mb_minutes = 0.0
        mem_series = np.zeros(horizon) if cfg.record_series else None
        ideal_series = np.zeros(horizon) if cfg.record_series else None
        capacity_rng = rng_from_seed(cfg.capacity_seed)
        n_forced = 0
        injector = (
            FaultInjector(cfg.faults, horizon)
            if cfg.faults is not None and cfg.faults.injects_runtime
            else None
        )
        n_checkpoints = 0
    else:
        if resume_from.engine != "fast":
            raise ValueError(
                f"fast loop cannot resume a {resume_from.engine!r} checkpoint"
            )
        # Single-payload restore (see runtime.checkpoint): shared object
        # identities survive, and attach_observability/bind are NOT
        # re-run — the restored policy already carries its bound state.
        live = resume_from.restore()
        policy = live["policy"]
        events = live["events"]
        obs = live["obs"]
        schedule = live["schedule"]
        pool = live["pool"]
        service_time = live["service_time"]
        accuracy_sum = live["accuracy_sum"]
        n_warm = live["n_warm"]
        n_cold = live["n_cold"]
        total_mb_minutes = live["total_mb_minutes"]
        mem_series = live["mem_series"]
        ideal_series = live["ideal_series"]
        capacity_rng = live["capacity_rng"]
        n_forced = live["n_forced"]
        injector = live["injector"]
        n_checkpoints = live["n_checkpoints"]

    # Hot-loop telemetry handles (each None when its layer is off); the
    # instrumentation mirrors the reference loop exactly — same counters,
    # same record points — so traces are engine-independent. On resume the
    # registry hands back the restored counters by name, so accumulation
    # continues where the snapshot left off.
    rec = obs if obs is not None and obs.decisions_enabled else None
    met = obs.metrics if obs is not None and obs.metrics_enabled else None
    spans = obs.spans if obs is not None and obs.spans_enabled else None
    if met is not None:
        _inv = met.counter("invocations_total", "invocations served")
        _cold = met.counter("cold_starts_total", "user-visible cold starts")
        inv_counters = [_inv.labels(function=f) for f in range(n_fn)]
        cold_counters = [_cold.labels(function=f) for f in range(n_fn)]
        warm_counter = met.counter(
            "warm_starts_total", "invocations served warm"
        ).labels()
        mem_metric = met.histogram(
            "keepalive_mb", "per-minute committed keep-alive memory"
        )
        mem_hist = mem_metric.summary()
    ckpt_counter = (
        # repro: lint-ok[RPR002] fleet.py rejects checkpoint/resume at
        # entry, so this instrument is structurally absent there
        met.counter("checkpoints_total", "engine checkpoints captured")
        if met is not None and checkpoint is not None
        else None
    )
    if resume_from is None:
        last_arrival: list[int | None] = [None] * n_fn if rec is not None else []
    else:
        last_arrival = live["last_arrival"]

    highest_mb = np.array(
        [sim.assignment[fid].highest.memory_mb for fid in range(n_fn)]
    )

    capacity = cfg.memory_capacity_mb
    has_review = _policy_has_review(policy)
    has_pressure = injector is not None and injector.pressure_minutes is not None
    # The valve must check the ledger every minute when a standing cap or
    # a fault plan's transient pressure spikes are configured.
    valve_on = capacity is not None or has_pressure

    # Sparse event extraction: (minute, fid, count) triples in minute-major,
    # fid-ascending order — the exact order the reference loop serves in.
    # Groups (one per event minute) are delimited up front so the serving
    # loop never re-tests the minute column.
    ev_t_arr, ev_fid_arr = np.nonzero(counts.T)
    ev_fid = ev_fid_arr.tolist()
    ev_count = counts.T[ev_t_arr, ev_fid_arr].tolist()
    n_events = len(ev_fid)
    group_ends = np.append(np.flatnonzero(np.diff(ev_t_arr)) + 1, n_events).tolist()
    group_minutes = (
        ev_t_arr[np.append(0, group_ends[:-1])].tolist() if n_events else []
    )

    entries = schedule._entries  # direct read access on the hot path
    assignment = sim.assignment
    observe_invocation = policy.observe_invocation
    has_observe = (
        type(policy).observe_invocation is not KeepAlivePolicy.observe_invocation
    )
    plan_fn = policy.plan
    set_plan = schedule.set_plan
    memory_at = schedule.memory_at
    # The bulk idle-span accounting below is valid only when nothing can
    # touch the schedule or need per-minute callbacks between events.
    per_minute_idle = (
        pool is not None or has_review or valve_on or events is not None
    )
    # In the same configuration, the event-minute commit collapses to a
    # single ledger read.
    simple_commit = not per_minute_idle

    def commit_minute(t: int) -> None:
        """Review/valve/commit for one minute (t already served, plans in)."""
        nonlocal n_forced, total_mb_minutes
        if has_review:
            policy.review_minute(t, schedule)
        if valve_on:
            cap_t = (
                capacity
                if injector is None
                else injector.effective_capacity(t, capacity)
            )
            if cap_t is not None:
                n_forced += apply_capacity_valve(
                    schedule, t, cap_t, capacity_rng, assignment, events, rec
                )
        if pool is not None:
            if spans is None:
                for fid in range(n_fn):
                    pool.reconcile(fid, entries[fid].get(t), t)
            else:
                s0 = perf_counter()
                for fid in range(n_fn):
                    pool.reconcile(fid, entries[fid].get(t), t)
                spans.add("pool-reconcile", perf_counter() - s0)
            pool.tick_all()
        mem_t = memory_at(t)
        total_mb_minutes += mem_t
        if events is not None:
            events.emit(t, EventKind.MEMORY_COMMIT, value=mem_t)
        if met is not None:
            mem_hist.observe(mem_t)
        if mem_series is not None:
            mem_series[t] = mem_t

    def idle_span(start: int, stop: int) -> None:
        """Account minutes ``start .. stop-1`` (no invocations there)."""
        nonlocal n_forced, total_mb_minutes
        if start >= stop:
            return
        if not per_minute_idle:
            # Pure accounting: the ledger for the span is already final.
            values = schedule.memory_slice(start, stop)
            acc = total_mb_minutes
            for v in values:
                acc += v
            total_mb_minutes = acc
            if met is not None:
                # Same per-minute observations the reference loop makes,
                # in the same order — summaries merge identically.
                mem_metric.observe_many(values)
            if mem_series is not None:
                mem_series[start:stop] = values
            return
        for t in range(start, stop):
            if pool is not None:
                for fid in range(n_fn):
                    pool.reconcile(fid, entries[fid].get(t), t)
            if has_review and policy.idle_review(t, schedule):
                policy.review_minute(t, schedule)
            if valve_on:
                cap_t = (
                    capacity
                    if injector is None
                    else injector.effective_capacity(t, capacity)
                )
                if cap_t is not None:
                    n_forced += apply_capacity_valve(
                        schedule, t, cap_t, capacity_rng, assignment,
                        events, rec,
                    )
            if pool is not None:
                if has_review or valve_on:
                    # review/valve may have rewritten this minute's entries
                    for fid in range(n_fn):
                        pool.reconcile(fid, entries[fid].get(t), t)
                pool.tick_all()
            mem_t = memory_at(t)
            total_mb_minutes += mem_t
            if events is not None:
                events.emit(t, EventKind.MEMORY_COMMIT, value=mem_t)
            if met is not None:
                mem_hist.observe(mem_t)
            if mem_series is not None:
                mem_series[t] = mem_t

    if resume_from is None:
        g_start = 0
        i = 0
        prev_t = -1
        cur_bucket = 0
    else:
        g_start, i, prev_t, cur_bucket = resume_from.cursor
    every = checkpoint.every_minutes if checkpoint is not None else 0

    for g in range(g_start, len(group_minutes)):
        t = group_minutes[g]
        # Checkpoint hook: fires before the first event group of each
        # cadence bucket, with the preceding idle span still unaccounted
        # (next_minute == prev_t + 1). Counters are bumped before capture
        # so clean and resumed runs agree on every count, bit for bit.
        if checkpoint is not None and t // every > cur_bucket:
            cur_bucket = t // every
            n_checkpoints += 1
            if ckpt_counter is not None:
                ckpt_counter.inc()
            checkpoint.emit(
                SimulationState.snapshot(
                    "fast",
                    prev_t + 1,
                    (g, i, prev_t, cur_bucket),
                    {
                        "policy": policy,
                        "events": events,
                        "obs": obs,
                        "schedule": schedule,
                        "pool": pool,
                        "service_time": service_time,
                        "accuracy_sum": accuracy_sum,
                        "n_warm": n_warm,
                        "n_cold": n_cold,
                        "total_mb_minutes": total_mb_minutes,
                        "mem_series": mem_series,
                        "ideal_series": ideal_series,
                        "capacity_rng": capacity_rng,
                        "n_forced": n_forced,
                        "injector": injector,
                        "n_checkpoints": n_checkpoints,
                        "last_arrival": last_arrival,
                    },
                )
            )

        if prev_t + 1 < t:
            idle_span(prev_t + 1, t)

        if pool is not None:  # pre-warm pass before invocations arrive
            if spans is None:
                for fid in range(n_fn):
                    pool.reconcile(fid, entries[fid].get(t), t)
            else:
                s0 = perf_counter()
                for fid in range(n_fn):
                    pool.reconcile(fid, entries[fid].get(t), t)
                spans.add("pool-reconcile", perf_counter() - s0)

        group_start = i
        group_end = group_ends[g]
        while i < group_end:
            fid = ev_fid[i]
            count = ev_count[i]
            alive = entries[fid].get(t)
            if alive is None:
                variant = policy.cold_variant(fid, t)
                if injector is None:
                    service_time += (
                        variant.cold_service_time_s
                        + (count - 1) * variant.warm_service_time_s
                    )
                else:
                    service_time += (
                        variant.cold_service_time_s
                        + injector.cold_start_penalty(t, fid, variant, rec, events)
                        + (count - 1) * variant.warm_service_time_s
                    )
                n_cold += 1
                n_warm += count - 1
                accuracy_sum += count * variant.accuracy
                schedule.mark_alive(fid, t, variant)
                if pool is not None:
                    pool.cold_start(fid, variant, t)
                    pool.record_served(fid, count)
                if events is not None:
                    events.emit(t, EventKind.COLD_START, fid, variant.name, 1)
                    if count > 1:
                        events.emit(
                            t, EventKind.WARM_START, fid, variant.name, count - 1
                        )
                if rec is not None:
                    rec.record_cold(t, fid, variant.name, count, last_arrival[fid])
                if met is not None:
                    cold_counters[fid].inc()
                    if count > 1:
                        warm_counter.inc(count - 1)
            else:
                service_time += count * alive.warm_service_time_s
                n_warm += count
                accuracy_sum += count * alive.accuracy
                if pool is not None:
                    pool.record_served(fid, count)
                if events is not None:
                    events.emit(t, EventKind.WARM_START, fid, alive.name, count)
                if met is not None:
                    warm_counter.inc(count)
            if met is not None:
                inv_counters[fid].inc(count)

            if has_observe:
                observe_invocation(fid, t, count)
            if rec is None:
                set_plan(fid, t, plan_fn(fid, t))
            else:
                plan = plan_fn(fid, t)
                set_plan(fid, t, plan)
                rec.record_plan(t, fid, plan)
                last_arrival[fid] = t
            i += 1

        if simple_commit:
            mem_t = memory_at(t)
            total_mb_minutes += mem_t
            if met is not None:
                mem_hist.observe(mem_t)
            if mem_series is not None:
                mem_series[t] = mem_t
        else:
            commit_minute(t)
        if ideal_series is not None:
            ideal_series[t] = highest_mb[ev_fid_arr[group_start:i]].sum()
        prev_t = t

    idle_span(prev_t + 1, horizon)

    # Integer total, so summing once is exact (the reference accumulates
    # per event; float metrics above keep the reference's exact order).
    n_invocations = sum(ev_count)
    mean_accuracy = accuracy_sum / n_invocations if n_invocations else 0.0
    if met is not None:
        met.counter(
            "forced_downgrades_total", "capacity-valve downgrades"
        ).inc(n_forced)
        met.gauge("horizon_minutes").set(horizon)
        met.gauge("n_functions").set(n_fn)
        met.gauge("keepalive_mb_minutes").set(total_mb_minutes)
    resilience = collect_resilience(policy, injector, horizon)
    return RunResult(
        policy_name=policy.name,
        n_invocations=n_invocations,
        n_warm=n_warm,
        n_cold=n_cold,
        total_service_time_s=service_time,
        keepalive_cost_usd=cfg.cost_model.minute_cost(total_mb_minutes),
        mean_accuracy=mean_accuracy,
        policy_overhead_s=0.0,
        n_policy_decisions=0,
        memory_series_mb=mem_series,
        ideal_memory_series_mb=ideal_series,
        pool_stats=pool.stats if pool is not None else None,
        events=events,
        n_forced_downgrades=n_forced,
        n_checkpoints=n_checkpoints,
        obs=obs,
        **resilience,
    )
