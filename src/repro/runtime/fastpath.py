"""Event-driven fast path through the simulation engine.

The reference loop (:meth:`repro.runtime.simulator.Simulation._run_reference`)
walks every minute of the horizon and, per minute, reconciles the
container pool, runs the policy review and queries the schedule — even on
minutes where nothing invokes. On realistic traces most of that work is
idle overhead: the schedule can only change at minutes with invocations
(plans), during a policy review that actually flattens a peak, or under
the capacity pressure valve.

This module exploits that. The engine is split in two:

- :class:`FastStepper` owns the run state and the per-minute semantics:
  :meth:`~FastStepper.serve_minute` serves/plans one event minute reading
  the schedule's entry maps directly, :meth:`~FastStepper.idle_span`
  accounts a run of idle minutes analytically from the schedule's
  incremental per-minute memory ledger
  (``KeepAliveSchedule.memory_slice``) — the ledger between two events is
  already fully determined by the plans installed at or before the
  earlier event;
- :func:`run_fast` is the batch driver: it extracts the *event minutes*
  (minutes with >= 1 invocation) from the trace once, as flat numpy
  arrays, and feeds the stepper group by group, deferring each idle span
  until the next event (or end of trace) so spans are accounted in bulk.

Incremental sessions (:mod:`repro.serve.session`) drive the same stepper
one minute at a time via :meth:`~FastStepper.advance_minute`. Eager
per-minute idle accounting and the driver's bulk accounting perform the
same float operations in the same order (the bulk path is itself an
in-order per-minute walk of the ledger slice), so a stepped replay stays
bit-identical to the batch run.

Per-minute work survives only where semantics demand it: the container
pool charges warm minutes each minute, policies with a review stage
(PULSE, MILP) feed their peak detector each minute via the O(1)
:meth:`~repro.runtime.policy.KeepAlivePolicy.idle_review` hook (falling
back to the full review exactly on peak minutes), and the capacity
valve checks the ledger each minute (O(1) per check). The schedule is
never pruned mid-run: the reference loop pays an ``advance()`` per
minute to forget past entries, but the fast loop's reads are all keyed
by exact minute, so stale entries are simply left in place (memory stays
bounded by the total number of planned entries, ~invocations x window).

Metric equivalence with the reference loop is bit-exact — the floating
point accumulations happen in the same order over the same values — and
pinned by the golden test in ``tests/test_engine_fastpath.py`` across all
bundled policies with events/capacity on and off. The only excluded
fields are ``policy_overhead_s`` / ``n_policy_decisions`` (wall-clock
measurements; ``measure_overhead=True`` runs never dispatch here) and
``wall_clock_s``.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.faults.injector import FaultInjector
from repro.obs.session import ObsSession
from repro.runtime.checkpoint import CheckpointConfig, SimulationState
from repro.runtime.container import ContainerPool
from repro.runtime.events import EventKind, EventLog
from repro.runtime.metrics import RunResult
from repro.runtime.policy import KeepAlivePolicy
from repro.runtime.schedule import KeepAliveSchedule
from repro.runtime.simulator import apply_capacity_valve, collect_resilience
from repro.utils.rng import rng_from_seed

__all__ = ["FastStepper", "run_fast"]


def _policy_has_review(policy: KeepAlivePolicy) -> bool:
    """True when the policy overrides review_minute (needs the per-minute
    review cadence); the no-op base implementation can be skipped wholesale."""
    return type(policy).review_minute is not KeepAlivePolicy.review_minute


class FastStepper:
    """The fast engine's run state, steppable one minute at a time.

    Constructed fresh (``live=None``: binds the policy, allocates run
    state) or from a restored checkpoint payload (``live=`` the dict from
    :meth:`SimulationState.restore` plus the checkpoint cursor's
    ``prev_t``). Telemetry handles are re-derived from the (possibly
    restored) obs session — the metrics registry hands back the same
    counter for the same name, so a resumed run keeps accumulating where
    the snapshot left off.

    ``prev_t`` is the last minute fully accounted (idle or served);
    :attr:`next_minute` == ``prev_t + 1``. The batch driver
    (:func:`run_fast`) jumps event minute to event minute and back-fills
    idle spans in bulk; sessions call :meth:`advance_minute` for every
    minute in order. Both produce the same accumulations in the same
    order.
    """

    engine = "fast"

    def __init__(self, sim, *, live: dict | None = None, prev_t: int = -1):
        trace, cfg = sim.trace, sim.config
        self.sim = sim
        self.cfg = cfg
        self.horizon = trace.horizon
        self.n_fn = n_fn = trace.n_functions

        if live is None:
            policy = sim.policy
            self.events = EventLog() if cfg.record_events else None
            self.obs = (
                ObsSession(cfg.observe) if cfg.observe is not None else None
            )
            if self.obs is not None or self.events is not None:
                # Before bind, so on_bind can wire policy sub-components.
                policy.attach_observability(self.obs, self.events)
            policy.bind(trace, sim.assignment, cfg.keep_alive_window)
            self.policy = policy
            self.schedule = KeepAliveSchedule(
                n_fn, cfg.keep_alive_window, horizon_hint=self.horizon
            )
            self.pool = (
                ContainerPool(self.events)
                if (cfg.track_containers or cfg.record_events)
                else None
            )
            self.service_time = 0.0
            self.accuracy_sum = 0.0
            self.n_invocations = 0
            self.n_warm = 0
            self.n_cold = 0
            self.total_mb_minutes = 0.0
            self.mem_series = (
                np.zeros(self.horizon) if cfg.record_series else None
            )
            self.ideal_series = (
                np.zeros(self.horizon) if cfg.record_series else None
            )
            self.capacity_rng = rng_from_seed(cfg.capacity_seed)
            self.n_forced = 0
            self.injector = (
                FaultInjector(cfg.faults, self.horizon)
                if cfg.faults is not None and cfg.faults.injects_runtime
                else None
            )
            self.n_checkpoints = 0
        else:
            # Single-payload restore (see runtime.checkpoint): shared
            # object identities survive, and attach_observability/bind
            # are NOT re-run — the restored policy already carries its
            # bound state.
            self.policy = live["policy"]
            self.events = live["events"]
            self.obs = live["obs"]
            self.schedule = live["schedule"]
            self.pool = live["pool"]
            self.service_time = live["service_time"]
            self.accuracy_sum = live["accuracy_sum"]
            self.n_invocations = live["n_invocations"]
            self.n_warm = live["n_warm"]
            self.n_cold = live["n_cold"]
            self.total_mb_minutes = live["total_mb_minutes"]
            self.mem_series = live["mem_series"]
            self.ideal_series = live["ideal_series"]
            self.capacity_rng = live["capacity_rng"]
            self.n_forced = live["n_forced"]
            self.injector = live["injector"]
            self.n_checkpoints = live["n_checkpoints"]

        # Hot-loop telemetry handles (each None when its layer is off);
        # the instrumentation mirrors the reference loop exactly — same
        # counters, same record points — so traces are engine-independent.
        obs = self.obs
        self.rec = rec = (
            obs if obs is not None and obs.decisions_enabled else None
        )
        self.met = met = (
            obs.metrics if obs is not None and obs.metrics_enabled else None
        )
        self.spans = (
            obs.spans if obs is not None and obs.spans_enabled else None
        )
        if met is not None:
            _inv = met.counter("invocations_total", "invocations served")
            _cold = met.counter("cold_starts_total", "user-visible cold starts")
            self.inv_counters = [_inv.labels(function=f) for f in range(n_fn)]
            self.cold_counters = [_cold.labels(function=f) for f in range(n_fn)]
            self.warm_counter = met.counter(
                "warm_starts_total", "invocations served warm"
            ).labels()
            self.mem_metric = met.histogram(
                "keepalive_mb", "per-minute committed keep-alive memory"
            )
            self.mem_hist = self.mem_metric.summary()
        else:
            self.inv_counters = self.cold_counters = None
            self.warm_counter = self.mem_metric = self.mem_hist = None
        if live is None:
            self.last_arrival: list[int | None] = (
                [None] * n_fn if rec is not None else []
            )
        else:
            self.last_arrival = live["last_arrival"]

        self.highest_mb = np.array(
            [sim.assignment[fid].highest.memory_mb for fid in range(n_fn)]
        )
        self.assignment = sim.assignment
        self.capacity = cfg.memory_capacity_mb
        self.has_review = _policy_has_review(self.policy)
        has_pressure = (
            self.injector is not None
            and self.injector.pressure_minutes is not None
        )
        # The valve must check the ledger every minute when a standing
        # cap or a fault plan's transient pressure spikes are configured.
        self.valve_on = self.capacity is not None or has_pressure
        self.entries = self.schedule._entries  # direct read on the hot path
        self.has_observe = (
            type(self.policy).observe_invocation
            is not KeepAlivePolicy.observe_invocation
        )
        # The bulk idle-span accounting is valid only when nothing can
        # touch the schedule or need per-minute callbacks between events.
        self.per_minute_idle = (
            self.pool is not None
            or self.has_review
            or self.valve_on
            or self.events is not None
        )
        # In the same configuration, the event-minute commit collapses to
        # a single ledger read.
        self.simple_commit = not self.per_minute_idle
        self.prev_t = prev_t
        self._result: RunResult | None = None

    @property
    def next_minute(self) -> int:
        """The first minute not yet accounted."""
        return self.prev_t + 1

    def live_state(self) -> dict:
        """The loop's live objects, in the checkpoint-payload shape.

        One dict → one pickle: shared identities (policy plan cache <->
        schedule, events <-> pool) survive the round trip intact.
        """
        return {
            "policy": self.policy,
            "events": self.events,
            "obs": self.obs,
            "schedule": self.schedule,
            "pool": self.pool,
            "service_time": self.service_time,
            "accuracy_sum": self.accuracy_sum,
            "n_invocations": self.n_invocations,
            "n_warm": self.n_warm,
            "n_cold": self.n_cold,
            "total_mb_minutes": self.total_mb_minutes,
            "mem_series": self.mem_series,
            "ideal_series": self.ideal_series,
            "capacity_rng": self.capacity_rng,
            "n_forced": self.n_forced,
            "injector": self.injector,
            "n_checkpoints": self.n_checkpoints,
            "last_arrival": self.last_arrival,
        }

    def _commit_minute(self, t: int) -> None:
        """Review/valve/commit for one minute (t already served, plans in)."""
        policy = self.policy
        schedule = self.schedule
        pool = self.pool
        events = self.events
        entries = self.entries
        n_fn = self.n_fn
        if self.has_review:
            policy.review_minute(t, schedule)
        if self.valve_on:
            cap_t = (
                self.capacity
                if self.injector is None
                else self.injector.effective_capacity(t, self.capacity)
            )
            if cap_t is not None:
                self.n_forced += apply_capacity_valve(
                    schedule, t, cap_t, self.capacity_rng, self.assignment,
                    events, self.rec,
                )
        if pool is not None:
            if self.spans is None:
                for fid in range(n_fn):
                    pool.reconcile(fid, entries[fid].get(t), t)
            else:
                s0 = perf_counter()
                for fid in range(n_fn):
                    pool.reconcile(fid, entries[fid].get(t), t)
                self.spans.add("pool-reconcile", perf_counter() - s0)
            pool.tick_all()
        mem_t = schedule.memory_at(t)
        self.total_mb_minutes += mem_t
        if events is not None:
            events.emit(t, EventKind.MEMORY_COMMIT, value=mem_t)
        if self.met is not None:
            self.mem_hist.observe(mem_t)
        if self.mem_series is not None:
            self.mem_series[t] = mem_t

    def idle_span(self, start: int, stop: int) -> None:
        """Account minutes ``start .. stop-1`` (no invocations there).

        Advances ``prev_t`` to ``stop - 1``: after a span the stepper's
        position is past every minute it accounted (the session layer
        reads ``next_minute`` off that)."""
        if start >= stop:
            return
        self.prev_t = stop - 1
        schedule = self.schedule
        if not self.per_minute_idle:
            # Pure accounting: the ledger for the span is already final.
            values = schedule.memory_slice(start, stop)
            acc = self.total_mb_minutes
            for v in values:
                acc += v
            self.total_mb_minutes = acc
            if self.met is not None:
                # Same per-minute observations the reference loop makes,
                # in the same order — summaries merge identically.
                self.mem_metric.observe_many(values)
            if self.mem_series is not None:
                self.mem_series[start:stop] = values
            return
        policy = self.policy
        pool = self.pool
        events = self.events
        entries = self.entries
        n_fn = self.n_fn
        has_review = self.has_review
        valve_on = self.valve_on
        injector = self.injector
        capacity = self.capacity
        memory_at = schedule.memory_at
        for t in range(start, stop):
            if pool is not None:
                for fid in range(n_fn):
                    pool.reconcile(fid, entries[fid].get(t), t)
            if has_review and policy.idle_review(t, schedule):
                policy.review_minute(t, schedule)
            if valve_on:
                cap_t = (
                    capacity
                    if injector is None
                    else injector.effective_capacity(t, capacity)
                )
                if cap_t is not None:
                    self.n_forced += apply_capacity_valve(
                        schedule, t, cap_t, self.capacity_rng,
                        self.assignment, events, self.rec,
                    )
            if pool is not None:
                if has_review or valve_on:
                    # review/valve may have rewritten this minute's entries
                    for fid in range(n_fn):
                        pool.reconcile(fid, entries[fid].get(t), t)
                pool.tick_all()
            mem_t = memory_at(t)
            self.total_mb_minutes += mem_t
            if events is not None:
                events.emit(t, EventKind.MEMORY_COMMIT, value=mem_t)
            if self.met is not None:
                self.mem_hist.observe(mem_t)
            if self.mem_series is not None:
                self.mem_series[t] = mem_t

    def serve_minute(
        self, t: int, fids: np.ndarray, fid_counts: np.ndarray
    ) -> None:
        """Serve event minute ``t`` (>= 1 invocation): pre-warm, serve and
        plan each invoking fid in ascending order, then review/valve/commit
        the minute. All minutes before ``t`` must already be accounted
        (the driver back-fills idle spans; sessions step every minute)."""
        policy = self.policy
        schedule = self.schedule
        pool = self.pool
        events = self.events
        entries = self.entries
        rec, met = self.rec, self.met
        injector = self.injector
        last_arrival = self.last_arrival
        n_fn = self.n_fn
        service_time = self.service_time
        accuracy_sum = self.accuracy_sum
        n_invocations = self.n_invocations
        n_warm = self.n_warm
        n_cold = self.n_cold
        has_observe = self.has_observe
        observe_invocation = policy.observe_invocation
        plan_fn = policy.plan
        set_plan = schedule.set_plan

        if pool is not None:  # pre-warm pass before invocations arrive
            if self.spans is None:
                for fid in range(n_fn):
                    pool.reconcile(fid, entries[fid].get(t), t)
            else:
                s0 = perf_counter()
                for fid in range(n_fn):
                    pool.reconcile(fid, entries[fid].get(t), t)
                self.spans.add("pool-reconcile", perf_counter() - s0)

        for fid, count in zip(fids.tolist(), fid_counts.tolist()):
            alive = entries[fid].get(t)
            if alive is None:
                variant = policy.cold_variant(fid, t)
                if injector is None:
                    service_time += (
                        variant.cold_service_time_s
                        + (count - 1) * variant.warm_service_time_s
                    )
                else:
                    service_time += (
                        variant.cold_service_time_s
                        + injector.cold_start_penalty(t, fid, variant, rec, events)
                        + (count - 1) * variant.warm_service_time_s
                    )
                n_cold += 1
                n_warm += count - 1
                accuracy_sum += count * variant.accuracy
                schedule.mark_alive(fid, t, variant)
                if pool is not None:
                    pool.cold_start(fid, variant, t)
                    pool.record_served(fid, count)
                if events is not None:
                    events.emit(t, EventKind.COLD_START, fid, variant.name, 1)
                    if count > 1:
                        events.emit(
                            t, EventKind.WARM_START, fid, variant.name, count - 1
                        )
                if rec is not None:
                    rec.record_cold(t, fid, variant.name, count, last_arrival[fid])
                if met is not None:
                    self.cold_counters[fid].inc()
                    if count > 1:
                        self.warm_counter.inc(count - 1)
            else:
                service_time += count * alive.warm_service_time_s
                n_warm += count
                accuracy_sum += count * alive.accuracy
                if pool is not None:
                    pool.record_served(fid, count)
                if events is not None:
                    events.emit(t, EventKind.WARM_START, fid, alive.name, count)
                if met is not None:
                    self.warm_counter.inc(count)
            n_invocations += count
            if met is not None:
                self.inv_counters[fid].inc(count)

            if has_observe:
                observe_invocation(fid, t, count)
            if rec is None:
                set_plan(fid, t, plan_fn(fid, t))
            else:
                plan = plan_fn(fid, t)
                set_plan(fid, t, plan)
                rec.record_plan(t, fid, plan)
                last_arrival[fid] = t

        self.service_time = service_time
        self.accuracy_sum = accuracy_sum
        self.n_invocations = n_invocations
        self.n_warm = n_warm
        self.n_cold = n_cold

        if self.simple_commit:
            mem_t = schedule.memory_at(t)
            self.total_mb_minutes += mem_t
            if met is not None:
                self.mem_hist.observe(mem_t)
            if self.mem_series is not None:
                self.mem_series[t] = mem_t
        else:
            self._commit_minute(t)
        if self.ideal_series is not None:
            self.ideal_series[t] = self.highest_mb[fids].sum()
        self.prev_t = t

    def advance_minute(
        self, t: int, fids: np.ndarray, fid_counts: np.ndarray
    ) -> None:
        """Session entry point: account exactly minute ``t`` (eagerly —
        idle minutes are settled one at a time instead of in deferred
        bulk spans; the float operation sequence is identical because the
        bulk path is itself an in-order per-minute walk)."""
        if fids.size == 0:
            self.idle_span(t, t + 1)
        else:
            self.serve_minute(t, fids, fid_counts)

    def finalize(self) -> RunResult:
        """Close the run (every minute accounted) and build its
        :class:`RunResult` (idempotent — the metric gauges below mutate,
        so the result is cached)."""
        if self._result is not None:
            return self._result
        cfg = self.cfg
        n_invocations = self.n_invocations
        mean_accuracy = (
            self.accuracy_sum / n_invocations if n_invocations else 0.0
        )
        met = self.met
        if met is not None:
            met.counter(
                "forced_downgrades_total", "capacity-valve downgrades"
            ).inc(self.n_forced)
            met.gauge("horizon_minutes").set(self.horizon)
            met.gauge("n_functions").set(self.n_fn)
            met.gauge("keepalive_mb_minutes").set(self.total_mb_minutes)
        resilience = collect_resilience(
            self.policy, self.injector, self.horizon
        )
        self._result = RunResult(
            policy_name=self.policy.name,
            n_invocations=n_invocations,
            n_warm=self.n_warm,
            n_cold=self.n_cold,
            total_service_time_s=self.service_time,
            keepalive_cost_usd=cfg.cost_model.minute_cost(
                self.total_mb_minutes
            ),
            mean_accuracy=mean_accuracy,
            policy_overhead_s=0.0,
            n_policy_decisions=0,
            memory_series_mb=self.mem_series,
            ideal_memory_series_mb=self.ideal_series,
            pool_stats=self.pool.stats if self.pool is not None else None,
            events=self.events,
            n_forced_downgrades=self.n_forced,
            n_checkpoints=self.n_checkpoints,
            obs=self.obs,
            **resilience,
        )
        return self._result


def run_fast(
    sim,
    checkpoint: CheckpointConfig | None = None,
    resume_from: SimulationState | None = None,
) -> RunResult:
    """Execute ``sim`` (a :class:`~repro.runtime.simulator.Simulation`)
    through the event-driven loop. Same contract as the reference loop,
    including checkpoint/resume (snapshots land at the first event group
    of each cadence bucket — the fast loop never visits idle minutes)."""
    trace = sim.trace
    horizon = trace.horizon
    counts = trace.counts

    if resume_from is None:
        stepper = FastStepper(sim)
        g_start = 0
        i = 0
        cur_bucket = 0
    else:
        if resume_from.engine != "fast":
            raise ValueError(
                f"fast loop cannot resume a {resume_from.engine!r} checkpoint"
            )
        g_start, i, prev_t, cur_bucket = resume_from.cursor
        stepper = FastStepper(sim, live=resume_from.restore(), prev_t=prev_t)

    # Sparse event extraction: (minute, fid, count) triples in minute-major,
    # fid-ascending order — the exact order the reference loop serves in.
    # Groups (one per event minute) are delimited up front so the serving
    # loop never re-tests the minute column.
    ev_t_arr, ev_fid_arr = np.nonzero(counts.T)
    ev_count_arr = counts.T[ev_t_arr, ev_fid_arr]
    n_events = int(ev_fid_arr.size)
    group_ends = np.append(np.flatnonzero(np.diff(ev_t_arr)) + 1, n_events).tolist()
    group_minutes = (
        ev_t_arr[np.append(0, group_ends[:-1])].tolist() if n_events else []
    )

    every = checkpoint.every_minutes if checkpoint is not None else 0
    ckpt_counter = (
        # repro: lint-ok[RPR002] fleet.py rejects checkpoint/resume at
        # entry, so this instrument is structurally absent there
        stepper.met.counter("checkpoints_total", "engine checkpoints captured")
        if stepper.met is not None and checkpoint is not None
        else None
    )

    for g in range(g_start, len(group_minutes)):
        t = group_minutes[g]
        # Checkpoint hook: fires before the first event group of each
        # cadence bucket, with the preceding idle span still unaccounted
        # (next_minute == prev_t + 1). Counters are bumped before capture
        # so clean and resumed runs agree on every count, bit for bit.
        if checkpoint is not None and t // every > cur_bucket:
            cur_bucket = t // every
            stepper.n_checkpoints += 1
            if ckpt_counter is not None:
                ckpt_counter.inc()
            checkpoint.emit(
                SimulationState.snapshot(
                    "fast",
                    stepper.prev_t + 1,
                    (g, i, stepper.prev_t, cur_bucket),
                    stepper.live_state(),
                )
            )

        if stepper.prev_t + 1 < t:
            stepper.idle_span(stepper.prev_t + 1, t)

        group_end = group_ends[g]
        stepper.serve_minute(
            t, ev_fid_arr[i:group_end], ev_count_arr[i:group_end]
        )
        i = group_end

    stepper.idle_span(stepper.prev_t + 1, horizon)
    return stepper.finalize()
