"""The fleet engine: vectorized simulation of 10⁴–10⁵ functions.

The reference loop (:mod:`repro.runtime.simulator`) and the event-driven
fast path (:mod:`repro.runtime.fastpath`) both iterate Python objects per
(function, minute); at fleet scale that is the bottleneck. This engine
keeps all per-function state in numpy arrays (:mod:`repro.runtime.columnar`)
partitioned into :class:`FleetShards` — contiguous function-id ranges,
each owning its slice of the estimator and keep-alive state — and runs
the per-minute cycle as array kernels:

1. **shard-local**: serve the minute's invocations (cold/warm split,
   service-time and accuracy contributions), feed the inter-arrival
   estimator, map probabilities through the threshold scheme and install
   the keep-alive plans — all batched over the shard's invoking fids;
2. **publish**: each shard exposes its per-minute memory partial (an
   integer count per footprint slot) and, on peak minutes, its alive
   set with the per-function utility inputs (*Ip*, the drop-protection
   max-remaining probability, current levels);
3. **reduce**: a single reducer merges the partials — integer adds for
   memory, fid-ordered concatenation for the alive set — and runs the
   *global* stages on the merged state: Algorithm 1 peak detection,
   Algorithm 2 lowest-utility downgrades, and the provider capacity
   valve. Victim decisions flow back to the owning shard as scalar
   schedule edits.

Because the merge is exact integer addition and fid-ordered
concatenation, the reduced state is byte-identical for any shard count:
``shards=1`` ≡ ``shards=k``, and both are bit-identical to the reference
engine (pinned by ``tests/test_engine_fleet.py``). Shards are processed
serially in-process — the shard API is message-shaped (publish/reduce/
apply) so a process pool can be slotted in, but determinism, not
parallelism, is what the protocol buys today.

Two execution modes, chosen by the config:

- **lean** (``track_containers=False``, ``record_events=False``): fully
  vectorized serving; floats that the reference accumulates sequentially
  are folded with :func:`~repro.runtime.columnar.seq_fold` so the sums
  stay bit-identical. This is the fleet-scale mode.
- **compatibility** (container pool and/or event log on): the engine
  drives the real :class:`~repro.runtime.container.ContainerPool` and
  :class:`~repro.runtime.events.EventLog` in the reference loop's exact
  call order — a per-fid Python loop, so it scales like the reference —
  while planning stays columnar. Use it for parity checks and
  event-level analysis, not for 100k-function sweeps.

Observability runs columnar too: ``SimulationConfig.observe`` gets a
:class:`~repro.obs.fleet.FleetObsSession` whose ``tally_*`` batch hooks
fold per-shard numpy partials (cold/invocation totals, plan-level
histograms, memory/valve/downgrade series) instead of per-decision
``record_*`` calls, plus full decision traces for a seeded sample of
fids (``ObservabilityConfig.trace_sample``) so ``repro inspect``
why-queries keep working. Phase timers are hierarchical —
``shard-{i}/serve|observe|plan`` and ``reduce/peak-flatten|downgrade|
valve`` — and merge into one span tree per run
(:meth:`~repro.obs.spans.SpanTimer.tree`). All instrumentation only
*reads* engine state, so obs-on runs stay bit-identical to obs-off and
metric totals are shard-invariant (``tests/test_fleet_obs.py``).

Not supported (explicit ``ValueError``): ``measure_overhead`` (defined
over the reference loop's per-decision cadence), checkpoint/resume,
oracle policies, and policies the compiler cannot map onto columnar
state (anything beyond PULSE and the fixed baselines).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.openwhisk import FixedKeepAlivePolicy
from repro.baselines.static import RandomMixedPolicy
from repro.core.peak import PeakDetector
from repro.core.priority import PriorityStructure
from repro.core.pulse import PulsePolicy
from repro.core.thresholds import (
    MonotoneScheme,
    TechniqueT1,
    TechniqueT2,
    ThresholdScheme,
)
from repro.core.utility import UtilityWeights
from repro.faults.injector import FaultInjector
from repro.obs.fleet import CANDIDATE_CAP, FleetObsSession
from repro.obs.session import NULL_OBS
from repro.runtime.columnar import (
    ColumnarEstimator,
    RingSchedule,
    VariantTables,
    seq_fold,
)
from repro.runtime.container import ContainerPool
from repro.runtime.events import EventKind, EventLog
from repro.runtime.metrics import RunResult
from repro.runtime.policy import KeepAlivePolicy
from repro.runtime.simulator import collect_resilience, emit_downgrade
from repro.utils.rng import rng_from_seed

__all__ = ["FleetShards", "FleetStepper", "run_fleet"]


# -- policy compilation ------------------------------------------------------


@dataclass
class _PulseModel:
    """PULSE's tunables, extracted for columnar evaluation."""

    kind = "pulse"
    window: int
    local_window: int
    normalization: str
    mode: str
    scheme: ThresholdScheme
    enable_global: bool
    cold_highest: bool
    memory_threshold: float
    prior_rule: str
    weights: UtilityWeights


@dataclass
class _FixedModel:
    """A per-function constant variant level (the fixed baselines)."""

    kind = "fixed"
    levels: np.ndarray  # (n_functions,) int64


def _compile_policy(
    policy: KeepAlivePolicy, n_functions: int, keep_alive_window: int
) -> _PulseModel | _FixedModel:
    """Map a bound policy onto columnar state, or refuse.

    The fleet engine cannot drive arbitrary policy code per (function,
    minute) — that is the loop it exists to eliminate — so it supports
    exactly the policies whose decisions it can evaluate as array ops:
    PULSE itself, and the fixed single-variant baselines (probed for a
    constant full-window plan rather than trusted by type). Everything
    else must run on the reference or fast engine.
    """
    if type(policy) is PulsePolicy:
        cfg = policy.config
        return _PulseModel(
            window=cfg.window or keep_alive_window,
            local_window=cfg.local_window,
            normalization=cfg.probability_normalization,
            mode=cfg.probability_mode,
            scheme=policy._scheme,
            enable_global=cfg.enable_global,
            cold_highest=cfg.cold_variant == "highest",
            memory_threshold=cfg.memory_threshold,
            prior_rule=cfg.prior_rule,
            weights=cfg.utility_weights or UtilityWeights(),
        )
    fixed = isinstance(policy, (FixedKeepAlivePolicy, RandomMixedPolicy))
    if fixed and not policy.is_oracle and (
        type(policy).review_minute is KeepAlivePolicy.review_minute
    ):
        levels = np.empty(n_functions, dtype=np.int64)
        for fid in range(n_functions):
            plan = policy.plan(fid, 0)
            head = plan[0] if plan else None
            if (
                head is None
                or len(plan) != keep_alive_window
                or any(v is not head and v != head for v in plan)
                or policy.cold_variant(fid, 0) != head
            ):
                raise ValueError(
                    f"engine='fleet' cannot compile policy {policy.name!r}: "
                    "expected a constant full-window plan per function"
                )
            levels[fid] = head.level
        return _FixedModel(levels=levels)
    raise ValueError(
        f"engine='fleet' does not support policy {policy.name!r} "
        f"({type(policy).__name__}); supported: PULSE and the fixed "
        "single-variant baselines. Use engine='auto', 'reference' or 'fast'."
    )


# -- shards ------------------------------------------------------------------


class _Shard:
    """One contiguous fid range's columnar state and local kernels."""

    def __init__(
        self,
        lo: int,
        hi: int,
        tables: VariantTables,
        keep_alive_window: int,
        model: _PulseModel | _FixedModel,
        index: int = 0,
    ):
        self.lo = lo
        self.hi = hi
        self.index = index
        self.span_prefix = f"shard-{index}"
        self.tables = tables
        self.fam = tables.fam_idx[lo:hi]
        self.nv = tables.n_variants[lo:hi]
        self.ring = RingSchedule(hi - lo, keep_alive_window, tables, self.fam)
        if model.kind == "pulse":
            self.est: ColumnarEstimator | None = ColumnarEstimator(
                hi - lo,
                model.window,
                model.local_window,
                model.normalization,
                model.mode,
            )
            self.cold_levels = np.where(model.cold_highest, self.nv - 1, 0)
        else:
            self.est = None
            self.cold_levels = model.levels[lo:hi]
        # Sampled-trace fids falling in this shard, as local ids —
        # installed by ``FleetShards.bind_sample``; empty means the
        # sampled-record paths are skipped on one attribute read.
        self.sample_lfids = np.empty(0, dtype=np.int64)

    def sampled_rows(self, lfids: np.ndarray) -> np.ndarray:
        """Row indices of this shard's sampled fids within a sorted
        local-fid batch — O(k log n) for k sampled fids, instead of
        masking the whole batch per shard-minute."""
        s = self.sample_lfids
        pos = np.searchsorted(lfids, s)
        ok = pos < lfids.size
        pos = pos[ok]
        return pos[lfids[pos] == s[ok]]

    def begin_minute(self, minute: int) -> None:
        self.ring.begin_minute(minute)
        if self.est is not None:
            self.est.evict(minute)

    def serve(
        self,
        lfids: np.ndarray,
        counts: np.ndarray,
        minute: int,
        injector: FaultInjector | None,
        obs: FleetObsSession | None = None,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Vectorized serving of one minute's invocations (lean mode).

        Returns (service-time contributions, accuracy contributions,
        cold-start count); marks cold starts alive on the ring. Each
        contribution is the same float expression the reference evaluates
        per function, computed elementwise. ``obs`` (when given) receives
        the shard-minute tallies and, for sampled fids, full ``cold``
        trace records — all read-only on the engine state.
        """
        tables = self.tables
        alive = self.ring.alive_levels(lfids, minute)
        cold = alive < 0
        serve_lv = np.where(cold, self.cold_levels[lfids], alive)
        fam = self.fam[lfids]
        warm_s = tables.warm_s[fam, serve_lv]
        rec = obs if obs is not None and self.sample_lfids.size else None
        if injector is None:
            cold_part = tables.cold_s[fam, serve_lv] + (counts - 1) * warm_s
        else:
            penalty = np.zeros(len(lfids))
            # repro: lint-ok[RPR009] fault-injection path only (injector
            # attached): iterates the injected cold starts of one shard-
            # minute, bounded by the chaos scenario, not fleet cardinality
            for i in np.flatnonzero(cold).tolist():
                gfid = int(lfids[i]) + self.lo
                variant = tables.variant(int(fam[i]), int(serve_lv[i]))
                penalty[i] = injector.cold_start_penalty(
                    minute, gfid, variant,
                    rec if rec is not None and rec.is_sampled(gfid) else None,
                    None,
                )
            cold_part = (
                tables.cold_s[fam, serve_lv] + penalty + (counts - 1) * warm_s
            )
        service = np.where(cold, cold_part, counts * warm_s)
        accuracy = counts * tables.accuracy[fam, serve_lv]
        self.ring.mark_alive(lfids[cold], minute, serve_lv[cold])
        n_cold = int(cold.sum())
        if obs is not None:
            obs.tally_serve(self.index, int(counts.sum()), n_cold)
            if rec is not None:
                rows = self.sampled_rows(lfids)
                # repro: lint-ok[RPR009] trace-sampling path: iterates the
                # cold starts of the sampled fids only, bounded by the obs
                # session's sample size, not fleet cardinality
                for i in rows[cold[rows]].tolist():
                    gfid = int(lfids[i]) + self.lo
                    variant = tables.variant(int(fam[i]), int(serve_lv[i]))
                    obs.record_cold(
                        minute, gfid, variant.name, int(counts[i]),
                        obs.last_seen(gfid),
                    )
        return service, accuracy, n_cold

    def observe_and_plan(
        self,
        lfids: np.ndarray,
        minute: int,
        model: _PulseModel | _FixedModel,
        obs: FleetObsSession | None = None,
    ) -> None:
        """Feed the estimator and install keep-alive plans for the
        minute's invoking functions (both modes — planning is columnar
        even when serving is scalar). ``obs`` tallies the plan-level
        histogram and writes full ``plan`` records for sampled fids."""
        if model.kind == "fixed":
            width = self.ring.keep_alive_window
            plan = np.broadcast_to(
                self.cold_levels[lfids][:, None], (len(lfids), width)
            )
            self.ring.write_plans(lfids, minute, plan)
            if obs is not None:
                obs.tally_plans(plan)
                if self.sample_lfids.size:
                    self._record_sampled_plans(lfids, minute, plan, None, obs)
            return
        est = self.est
        assert est is not None
        spans = obs.spans if obs is not None and obs.spans_enabled else None
        t0 = time.perf_counter() if spans is not None else 0.0
        est.observe(lfids, minute)
        probs = est.mode_rows(est.exact_rows(lfids))
        if spans is not None:
            t1 = time.perf_counter()
            spans.add(self.span_prefix + "/observe", t1 - t0)
        levels = _vector_levels(probs, self.nv[lfids], model.scheme)
        no_history = est.no_history(lfids)
        if no_history.any():
            # No inter-arrival data yet: behave like the fixed policy
            # (FunctionCentricOptimizer's cold_start_fallback="highest").
            levels[no_history] = (self.nv[lfids[no_history]] - 1)[:, None]
        self.ring.write_plans(lfids, minute, levels)
        if spans is not None:
            spans.add(self.span_prefix + "/plan", time.perf_counter() - t1)
        if obs is not None:
            obs.tally_plans(levels)
            if self.sample_lfids.size:
                self._record_sampled_plans(
                    lfids, minute, levels, probs, obs, no_history
                )

    def _record_sampled_plans(
        self,
        lfids: np.ndarray,
        minute: int,
        levels: np.ndarray,
        probs: np.ndarray | None,
        obs: FleetObsSession,
        no_history: np.ndarray | None = None,
    ) -> None:
        """Full ``plan`` trace records for this batch's sampled fids.

        Mirror of FunctionCentricOptimizer: the probability vector is
        staged only when it actually drove the plan — fids with no
        inter-arrival history (``no_history``) fell back blind.
        """
        for j in self.sampled_rows(lfids).tolist():
            gfid = int(lfids[j]) + self.lo
            if probs is not None and (
                no_history is None or not no_history[j]
            ):
                obs.stage_probs(gfid, minute, probs[j])
            fam = int(self.fam[lfids[j]])
            plan = [
                None if lv < 0 else self.tables.variant(fam, int(lv))
                for lv in levels[j].tolist()
            ]
            obs.record_plan(minute, gfid, plan)
            obs.note_arrival(gfid, minute)

    def publish_memory(self, minute: int) -> np.ndarray:
        """This shard's per-footprint-slot entry counts at ``minute``."""
        return self.ring.cnt[minute % self.ring.n_cols]

    def publish_alive(
        self, minute: int, with_probabilities: bool
    ) -> tuple[np.ndarray, ...]:
        """The shard's alive set at ``minute`` as global fids + levels,
        plus (on peak minutes) the utility inputs *Ip* / max-remaining."""
        local = self.ring.alive_lfids(minute)
        fids = local + self.lo
        levels = self.ring.alive_levels(local, minute)
        if not with_probabilities:
            return fids, levels
        assert self.est is not None
        ip, max_rem = self.est.ip_and_max_remaining(local, minute)
        return fids, levels, ip, max_rem

    def apply_downgrade(self, fid: int, minute: int, allow_drop: bool) -> None:
        """Reducer decision flowing back: downgrade one function."""
        self.ring.downgrade(fid - self.lo, minute, allow_drop)

    def level_at(self, fid: int, minute: int) -> int:
        return int(self.ring.levels[fid - self.lo, minute % self.ring.n_cols])

    def variant_at(self, fid: int, minute: int):
        level = self.level_at(fid, minute)
        if level < 0:
            return None
        return self.tables.variant(int(self.fam[fid - self.lo]), level)


class FleetShards:
    """The shard set plus the global reducer (Algorithms 1 & 2, valve).

    Owns everything that is *cross-function* state in the reference
    policy stack — the peak detector, the priority structure, the
    capacity RNG — and drives it on merged shard partials. All merges
    are exact: memory partials are integer slot counts summed across
    shards; alive sets are concatenated in shard (= fid) order. The
    reducer therefore makes byte-identical decisions for any shard
    count, which the shards then apply locally.
    """

    def __init__(
        self,
        n_functions: int,
        n_shards: int,
        keep_alive_window: int,
        tables: VariantTables,
        model: _PulseModel | _FixedModel,
        capacity_seed: int,
    ):
        n_shards = max(1, min(n_shards, n_functions))
        self.n_functions = n_functions
        self.tables = tables
        self.model = model
        bounds = [i * n_functions // n_shards for i in range(n_shards + 1)]
        self.shards = [
            _Shard(
                bounds[i], bounds[i + 1], tables, keep_alive_window, model,
                index=i,
            )
            for i in range(n_shards)
        ]
        self.bounds = np.array(bounds[1:], dtype=np.int64)  # split points
        self.shard_index = np.empty(n_functions, dtype=np.int64)
        for i, shard in enumerate(self.shards):
            self.shard_index[shard.lo : shard.hi] = i
        self.capacity_rng = rng_from_seed(capacity_seed)
        self.n_forced = 0
        self.n_downgrades = 0
        if model.kind == "pulse":
            self.detector: PeakDetector | None = PeakDetector(
                memory_threshold=model.memory_threshold,
                local_window=model.local_window,
                prior_rule=model.prior_rule,
            )
            self.priority: PriorityStructure | None = PriorityStructure(
                n_functions
            )
        else:
            self.detector = None
            self.priority = None

    def bind_sample(self, sample_fids: np.ndarray) -> None:
        """Distribute an obs session's sampled fids to their shards (as
        local ids), so the per-batch sampled-record lookups are O(k) in
        this shard's sample size rather than the batch size."""
        for shard in self.shards:
            in_range = sample_fids[
                (sample_fids >= shard.lo) & (sample_fids < shard.hi)
            ]
            shard.sample_lfids = (in_range - shard.lo).astype(np.int64)

    def shard_for(self, fid: int) -> _Shard:
        return self.shards[self.shard_index[fid]]

    def split(self, fids: np.ndarray) -> np.ndarray:
        """Offsets partitioning a fid-ascending array by shard."""
        cuts = np.searchsorted(fids, self.bounds)
        return np.concatenate(([0], cuts))

    # -- reduce: merged memory ---------------------------------------------
    def memory_at(self, minute: int) -> float:
        """The fleet's keep-alive memory at ``minute`` — the canonical
        counts × footprints fold over the shard partials, bit-identical
        to ``KeepAliveSchedule.memory_at``."""
        merged = self.shards[0].publish_memory(minute)
        for shard in self.shards[1:]:
            merged = merged + shard.publish_memory(minute)
        total = 0.0
        fps = self.tables.slot_fps
        for slot in np.flatnonzero(merged).tolist():
            total += int(merged[slot]) * fps[slot]
        return total

    def alive_fids(self, minute: int) -> np.ndarray:
        """Global alive set at ``minute``, fid-ascending (valve input)."""
        parts = [s.publish_alive(minute, False)[0] for s in self.shards]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    # -- reduce: Algorithms 1 & 2 -------------------------------------------
    def review(
        self,
        minute: int,
        events: EventLog | None,
        obs: FleetObsSession | None = None,
    ) -> None:
        """The global optimizer's per-minute review on merged state.

        Mirrors ``GlobalOptimizer.review``: detect a peak against the
        prior (Algorithm 1), then repeatedly score every kept-alive
        model's ``Uv = Ai + Pr + Ip`` and downgrade the minimum
        (Algorithm 2) until demand is back under the flatten target;
        always feed the detector demand + committed memory. ``obs``
        tallies peaks/downgrades, times the ``reduce/peak-flatten`` and
        ``reduce/downgrade`` phases, and — for sampled victims — records
        the full (capped) candidate table.
        """
        detector, priority = self.detector, self.priority
        assert detector is not None and priority is not None
        model = self.model
        assert isinstance(model, _PulseModel)
        rec = obs if obs is not None and obs.decisions_enabled else None
        spans = obs.spans if obs is not None and obs.spans_enabled else None
        demand = self.memory_at(minute)
        prior = detector.prior_memory()
        current = demand
        if detector.is_peak(demand, prior):
            t_flatten = time.perf_counter() if spans is not None else 0.0
            target = detector.flatten_target(prior)
            if obs is not None:
                obs.tally_peak()
            if rec is not None:
                rec.record_peak(minute, demand, prior, target)
            parts = [s.publish_alive(minute, True) for s in self.shards]
            alive = np.concatenate([p[0] for p in parts])
            levels = np.concatenate([p[1] for p in parts])
            ip = np.minimum(np.concatenate([p[2] for p in parts]), 1.0)
            max_rem = np.concatenate([p[3] for p in parts])
            fam = self.tables.fam_idx[alive]
            weights = model.weights
            w_ai = weights.accuracy_improvement
            w_pr = weights.priority
            # Alg. 2 lines 4–9 on the merged table: per-iteration
            # re-normalization, constant-within-minute Ip/max-rem,
            # protection for lowest variants with remaining mass. A naive
            # transliteration rebuilds every utility term over all n
            # functions per victim, which goes quadratic exactly when the
            # valve/peak regime produces many victims per minute; instead
            # each per-element term is maintained incrementally (only the
            # victim's entry changes between iterations) and Eq. 1's
            # min/max are tracked against a full-count mirror so the
            # normalization stays bit-identical to
            # ``PriorityStructure.normalized()[alive]``.
            counts = priority.counts.astype(float)
            counts_alive = counts[alive]
            vmin = float(counts.min())
            vmax = float(counts.max())
            n_at_min = int((counts == vmin).sum())
            t_ai = w_ai * self.tables.ai[fam, levels]
            t_ip = weights.invocation_probability * ip
            eligible = ~((levels == 0) & (max_rem > 0.0))
            # Only the victim's utility entry moves between iterations
            # unless Eq. 1's min/max shift (rare: the global floor or
            # ceiling of the downgrade counts must move), so the masked
            # utility array is patched in place and rebuilt only then.
            rebuild = True
            uv_masked = np.empty(0)
            if spans is not None:
                t_downgrade = time.perf_counter()
                spans.add("reduce/peak-flatten", t_downgrade - t_flatten)
            # Per-victim obs cost must stay O(1) attribute reads — a
            # hook call per downgrade is what the columnar session
            # exists to avoid — so the tally is accumulated locally and
            # folded once per review, and the sample test reads the
            # mask directly.
            sample_mask = rec.sample_mask if rec is not None else None
            n_tallied = 0
            while current > target and alive.size:
                if rebuild:
                    if vmax == vmin:
                        pr = counts_alive - vmin
                    else:
                        pr = (counts_alive - vmin) / (vmax - vmin)
                    # np.inf masking picks the first eligible minimum —
                    # the same element flatnonzero+argmin over the
                    # eligible subset picks.
                    uv_masked = np.where(
                        eligible, t_ai + w_pr * pr + t_ip, np.inf
                    )
                    rebuild = False
                pick = int(np.argmin(uv_masked))
                if np.isinf(uv_masked[pick]):
                    break  # every candidate is a protected lowest variant
                victim = int(alive[pick])
                allow_drop = bool(max_rem[pick] == 0.0)
                victim_rec = (
                    rec
                    if sample_mask is not None and sample_mask[victim]
                    else None
                )
                record = events is not None or victim_rec is not None
                if record:
                    new_level = int(levels[pick]) - 1
                    from_name = self.tables.variant(
                        int(fam[pick]), int(levels[pick])
                    ).name
                    to_name = (
                        self.tables.variant(int(fam[pick]), new_level).name
                        if new_level >= 0
                        else None
                    )
                    # The candidate table snapshots the scores that chose
                    # this victim, so it is built before the priority
                    # bookkeeping below perturbs Eq. 1's normalization.
                    cand = (
                        self._candidate_table(
                            alive, levels, fam, ip, counts_alive,
                            vmin, vmax, eligible, model.weights,
                        )
                        if victim_rec is not None
                        else None
                    )
                self.shard_for(victim).apply_downgrade(
                    victim, minute, allow_drop
                )
                priority.record_downgrade(victim)
                new_count = counts[victim] + 1.0
                counts[victim] = new_count
                counts_alive[pick] = new_count
                if new_count > vmax:
                    vmax = new_count
                    rebuild = True
                if new_count - 1.0 == vmin:
                    n_at_min -= 1
                    if n_at_min == 0:  # rare: the global floor moved up
                        vmin = float(counts.min())
                        n_at_min = int((counts == vmin).sum())
                        rebuild = True
                self.n_downgrades += 1
                n_tallied += 1
                if record:
                    emit_downgrade(
                        minute, victim, from_name, to_name, events,
                        victim_rec, candidates=cand,
                    )
                if levels[pick] > 0:
                    levels[pick] -= 1
                    t_ai[pick] = w_ai * self.tables.ai[fam[pick], levels[pick]]
                    eligible[pick] = not (
                        levels[pick] == 0 and max_rem[pick] > 0.0
                    )
                    if not rebuild:
                        if vmax == vmin:
                            pr_pick = counts_alive[pick] - vmin
                        else:
                            pr_pick = (counts_alive[pick] - vmin) / (
                                vmax - vmin
                            )
                        uv_masked[pick] = (
                            t_ai[pick] + w_pr * pr_pick + t_ip[pick]
                            if eligible[pick]
                            else np.inf
                        )
                else:
                    keep = np.arange(alive.size) != pick
                    alive, levels, ip = alive[keep], levels[keep], ip[keep]
                    max_rem, fam = max_rem[keep], fam[keep]
                    counts_alive, t_ai = counts_alive[keep], t_ai[keep]
                    t_ip, eligible = t_ip[keep], eligible[keep]
                    if not rebuild:
                        uv_masked = uv_masked[keep]
                current = self.memory_at(minute)
            if obs is not None and n_tallied:
                obs.tally_downgrade(minute, n_tallied)
            if spans is not None:
                spans.add("reduce/downgrade", time.perf_counter() - t_downgrade)
        detector.observe(demand, current)

    def _candidate_table(
        self,
        alive: np.ndarray,
        levels: np.ndarray,
        fam: np.ndarray,
        ip: np.ndarray,
        counts_alive: np.ndarray,
        vmin: float,
        vmax: float,
        eligible: np.ndarray,
        weights: UtilityWeights,
    ) -> list[dict]:
        """The reference trace's scored candidate table, rebuilt from the
        reducer's columnar state: one row per kept-alive model with its
        unweighted ``Ai``/``Pr``/``Ip`` terms and the weighted ``Uv``, or
        a ``protected`` marker — capped at :data:`CANDIDATE_CAP`
        lowest-``Uv`` rows (the victim is the eligible minimum, so it
        always survives the cap) with an ``omitted`` trailer row noting
        the truncation."""
        ai = self.tables.ai[fam, levels]
        if vmax == vmin:
            pr = counts_alive - vmin
        else:
            pr = (counts_alive - vmin) / (vmax - vmin)
        uv = (
            weights.accuracy_improvement * ai
            + weights.priority * pr
            + weights.invocation_probability * ip
        )
        # Protected rows sort last (inf), matching the selection mask;
        # ties stay fid-ascending like the reference loop. A full stable
        # argsort over the alive set costs O(n log n) per sampled victim
        # (~0.5 ms at 10k functions), so select the CANDIDATE_CAP head
        # with an O(n) argpartition instead, reproducing the stable
        # order exactly: rows strictly below the cap boundary value,
        # then boundary ties filled lowest-fid first (``alive`` is fid-
        # ascending, so index order is fid order).
        key = np.where(eligible, uv, np.inf)
        if key.size <= CANDIDATE_CAP:
            order = np.argsort(key, kind="stable")
        else:
            pool = np.argpartition(key, CANDIDATE_CAP - 1)[:CANDIDATE_CAP]
            boundary = key[pool].max()
            strict = np.flatnonzero(key < boundary)
            strict = strict[np.argsort(key[strict], kind="stable")]
            ties = np.flatnonzero(key == boundary)[
                : CANDIDATE_CAP - strict.size
            ]
            order = np.concatenate((strict, ties))
        rows: list[dict] = []
        for idx in order[:CANDIDATE_CAP].tolist():
            fid = int(alive[idx])
            vname = self.tables.variant(int(fam[idx]), int(levels[idx])).name
            if not eligible[idx]:
                rows.append({"fid": fid, "variant": vname, "protected": True})
            else:
                rows.append({
                    "fid": fid,
                    "variant": vname,
                    "Ai": float(ai[idx]),
                    "Pr": float(pr[idx]),
                    "Ip": float(ip[idx]),
                    "Uv": float(uv[idx]),
                })
        if alive.size > CANDIDATE_CAP:
            rows.append({"omitted": int(alive.size - CANDIDATE_CAP)})
        return rows

    # -- reduce: provider capacity valve -------------------------------------
    def valve(
        self,
        minute: int,
        capacity_mb: float,
        events: EventLog | None,
        obs: FleetObsSession | None = None,
    ) -> int:
        """§III-A's pressure valve on the merged alive set.

        Byte-compatible with ``apply_capacity_valve``: the candidate
        array is the fid-ascending merged alive set, victims are drawn
        from the shared capacity RNG, and a victim leaves the candidate
        array only when its keep-alive is dropped entirely — so the RNG
        stream (which depends on the array length sequence) matches the
        reference's exactly. ``obs`` tallies the per-minute victim count,
        times the ``reduce/valve`` phase, and records sampled victims'
        forced downgrades.
        """
        if self.memory_at(minute) <= capacity_mb:
            return 0
        rec = obs if obs is not None and obs.decisions_enabled else None
        spans = obs.spans if obs is not None and obs.spans_enabled else None
        t0 = time.perf_counter() if spans is not None else 0.0
        alive = self.alive_fids(minute)
        sample_mask = rec.sample_mask if rec is not None else None
        forced = 0
        while self.memory_at(minute) > capacity_mb and alive.size:
            victim = int(self.capacity_rng.choice(alive))
            shard = self.shard_for(victim)
            victim_rec = (
                rec
                if sample_mask is not None and sample_mask[victim]
                else None
            )
            record = events is not None or victim_rec is not None
            if record:
                from_name = self.tables.variant(
                    int(self.tables.fam_idx[victim]),
                    shard.level_at(victim, minute),
                ).name
            shard.apply_downgrade(victim, minute, allow_drop=True)
            forced += 1
            level = shard.level_at(victim, minute)
            if record:
                to_name = (
                    self.tables.variant(int(self.tables.fam_idx[victim]), level).name
                    if level >= 0
                    else None
                )
                emit_downgrade(
                    minute, victim, from_name, to_name, events, victim_rec,
                    forced=True,
                )
            if level < 0:
                alive = alive[alive != victim]
        self.n_forced += forced
        if obs is not None:
            obs.tally_valve(minute, forced)
            if spans is not None:
                spans.add("reduce/valve", time.perf_counter() - t0)
        return forced


# -- threshold-scheme kernels ------------------------------------------------


def _vector_levels(
    probs: np.ndarray, n_variants: np.ndarray, scheme: ThresholdScheme
) -> np.ndarray:
    """Map probability rows to variant levels (−1 = keep nothing).

    ``probs`` is (k, W); ``n_variants`` is (k,). The closed forms are the
    schemes' own expressions evaluated elementwise (``int()`` and
    ``astype(int64)`` both truncate toward zero; every probability is
    already ≤ 1.0, so the reference's ``p if p < 1.0 else 1.0`` clamp is
    the identity).
    """
    nv = n_variants[:, None]
    if type(scheme) is TechniqueT1:
        return np.minimum((probs * nv).astype(np.int64), nv - 1)
    if type(scheme) is TechniqueT2:
        upper = nv - 1
        banded = 1 + np.minimum(
            (probs * upper).astype(np.int64), np.maximum(upper - 1, 0)
        )
        return np.where((probs == 0.0) | (nv == 1), 0, banded)
    if type(scheme) is MonotoneScheme:
        flat = np.searchsorted(np.asarray(scheme.cuts), probs.ravel(), side="right")
        return np.minimum(flat.reshape(probs.shape).astype(np.int64), nv - 1)
    # Arbitrary user scheme: fall back to scalar calls per (fid, offset).
    out = np.empty(probs.shape, dtype=np.int64)
    for i, row in enumerate(probs.tolist()):
        n = int(n_variants[i])
        for j, p in enumerate(row):
            level = scheme.select_level(p if p < 1.0 else 1.0, n)
            out[i, j] = -1 if level is None else level
    return out


# -- the engine --------------------------------------------------------------


class FleetStepper:
    """The columnar fleet engine's run state, steppable one minute at a
    time.

    Constructed fresh (``live=None``: compiles the policy into its
    vectorized model, builds the sharded state) or from a restored
    session-snapshot payload (``live=`` the dict from
    :meth:`SimulationState.restore` — the whole columnar state graph,
    shards and compiled model included, comes back as one pickle so
    shared identities survive). Batch runs (:func:`run_fleet`) feed it
    every minute from the sparse event table; sessions
    (:mod:`repro.serve.session`) call :meth:`step` one ``advance()`` at
    a time — the per-minute body is the same code either way, so a
    stepped replay is bit-identical to the batch run by construction.

    Entry validation (``measure_overhead``, shard count,
    checkpoint/resume rejection for batch runs) stays with the callers;
    the stepper assumes a config it can honor.
    """

    engine = "fleet"

    def __init__(self, sim, shards: int = 1, *, live: dict | None = None):
        cfg = sim.config
        trace = sim.trace
        self.sim = sim
        self.cfg = cfg
        self.horizon = trace.horizon
        self.n_fn = n_fn = trace.n_functions

        if live is None:
            policy = sim.policy
            self.events = EventLog() if cfg.record_events else None
            self.obs = (
                FleetObsSession(
                    cfg.observe,
                    n_functions=n_fn,
                    n_shards=max(1, min(shards, n_fn)),
                    horizon=self.horizon,
                )
                if cfg.observe is not None
                else None
            )
            if self.obs is not None or self.events is not None:
                policy.attach_observability(
                    self.obs if self.obs is not None else NULL_OBS, self.events
                )
            policy.bind(trace, sim.assignment, cfg.keep_alive_window)
            self.policy = policy
            self.model = _compile_policy(policy, n_fn, cfg.keep_alive_window)
            self.tables = VariantTables(sim.assignment, n_fn)
            self.fleet = FleetShards(
                n_fn, shards, cfg.keep_alive_window, self.tables, self.model,
                cfg.capacity_seed,
            )
            if self.obs is not None and self.obs.has_sample:
                self.fleet.bind_sample(self.obs.sample_fids)
            self.pool = (
                ContainerPool(self.events)
                if (cfg.track_containers or cfg.record_events)
                else None
            )
            self.injector = (
                FaultInjector(cfg.faults, self.horizon)
                if cfg.faults is not None and cfg.faults.injects_runtime
                else None
            )
            self.service_time = 0.0
            self.accuracy_sum = 0.0
            self.n_invocations = 0
            self.n_cold = 0
            self.total_mb_minutes = 0.0
            self.mem_series = (
                np.zeros(self.horizon) if cfg.record_series else None
            )
            self.ideal_series = (
                np.zeros(self.horizon) if cfg.record_series else None
            )
            self.next_minute = 0
        else:
            # Single-payload restore: the sharded columnar state, the
            # compiled model and the variant tables come back with their
            # shared identities intact; attach_observability/bind and
            # _compile_policy are NOT re-run.
            self.policy = live["policy"]
            self.events = live["events"]
            self.obs = live["obs"]
            self.model = live["model"]
            self.tables = live["tables"]
            self.fleet = live["fleet"]
            self.pool = live["pool"]
            self.injector = live["injector"]
            self.service_time = live["service_time"]
            self.accuracy_sum = live["accuracy_sum"]
            self.n_invocations = live["n_invocations"]
            self.n_cold = live["n_cold"]
            self.total_mb_minutes = live["total_mb_minutes"]
            self.mem_series = live["mem_series"]
            self.ideal_series = live["ideal_series"]
            self.next_minute = live["next_minute"]

        # Hot-loop telemetry handles, mirroring the loop engines (each
        # None when its layer is off; columnar tallies ride ``obs``).
        obs = self.obs
        self.rec = obs if obs is not None and obs.decisions_enabled else None
        self.met = (
            obs.metrics if obs is not None and obs.metrics_enabled else None
        )
        self.spans = (
            obs.spans if obs is not None and obs.spans_enabled else None
        )
        self.capacity = cfg.memory_capacity_mb
        has_pressure = (
            self.injector is not None
            and self.injector.pressure_minutes is not None
        )
        self.valve_on = self.capacity is not None or has_pressure
        self.is_pulse = self.model.kind == "pulse"
        self.last_memory_mb = 0.0
        self._result: RunResult | None = None

    def live_state(self) -> dict:
        """The columnar state graph, in session-snapshot payload shape
        (one dict → one pickle, identities preserved)."""
        return {
            "policy": self.policy,
            "events": self.events,
            "obs": self.obs,
            "model": self.model,
            "tables": self.tables,
            "fleet": self.fleet,
            "pool": self.pool,
            "injector": self.injector,
            "service_time": self.service_time,
            "accuracy_sum": self.accuracy_sum,
            "n_invocations": self.n_invocations,
            "n_cold": self.n_cold,
            "total_mb_minutes": self.total_mb_minutes,
            "mem_series": self.mem_series,
            "ideal_series": self.ideal_series,
            "next_minute": self.next_minute,
        }

    def step(self, t: int, inv_fids: np.ndarray, inv_counts: np.ndarray) -> None:
        """Execute minute ``t``. ``inv_fids`` are the invoking function
        ids (int64, ascending) and ``inv_counts`` the aligned counts;
        pass empty arrays for an idle minute. Minutes must be fed
        strictly in order."""
        fleet = self.fleet
        tables = self.tables
        pool = self.pool
        events = self.events
        obs = self.obs
        rec = self.rec
        spans = self.spans
        injector = self.injector
        model = self.model
        n_fn = self.n_fn
        service_time = self.service_time
        accuracy_sum = self.accuracy_sum
        n_cold = self.n_cold

        for shard in fleet.shards:
            shard.begin_minute(t)

        if pool is not None:
            # Pre-warm pass (reference order: every fid, ascending).
            t_pool = time.perf_counter() if spans is not None else 0.0
            # repro: lint-ok[RPR009] compat mode only (a reference
            # ContainerPool is attached): golden-equivalence runs mirror
            # the reference loop's per-fid reconcile; the lean fleet path
            # has pool=None and never enters this branch
            for fid in range(n_fn):
                pool.reconcile(fid, fleet.shard_for(fid).variant_at(fid, t), t)
            if spans is not None:
                spans.add("pool-reconcile", time.perf_counter() - t_pool)

        n_events = int(inv_fids.size)
        if n_events:
            if pool is None and events is None:
                # Lean serving: vectorized per shard, folded sequentially
                # so the accumulators match the reference's scalar adds.
                offsets = fleet.split(inv_fids)
                service_parts = []
                accuracy_parts = []
                for i, shard in enumerate(fleet.shards):
                    a, b = int(offsets[i]), int(offsets[i + 1])
                    if a == b:
                        continue
                    lf = inv_fids[a:b] - shard.lo
                    t_serve = time.perf_counter() if spans is not None else 0.0
                    svc, acc, cold = shard.serve(
                        lf, inv_counts[a:b], t, injector, obs
                    )
                    if spans is not None:
                        spans.add(
                            shard.span_prefix + "/serve",
                            time.perf_counter() - t_serve,
                        )
                    n_cold += cold
                    service_parts.append(svc)
                    accuracy_parts.append(acc)
                service_time = seq_fold(
                    service_time, np.concatenate(service_parts)
                )
                accuracy_sum = seq_fold(
                    accuracy_sum, np.concatenate(accuracy_parts)
                )
            else:
                # Compatibility serving: the reference loop's exact call
                # and event order, per invoking fid ascending.
                # repro: lint-ok[RPR009] compat mode only (pool or event
                # log attached): replays the reference loop's exact
                # per-event order for golden equivalence; the lean path
                # takes the vectorized branch above
                for i in range(n_events):
                    fid = int(inv_fids[i])
                    count = int(inv_counts[i])
                    shard = fleet.shard_for(fid)
                    level = shard.level_at(fid, t)
                    if level < 0:
                        cold_level = int(shard.cold_levels[fid - shard.lo])
                        variant = tables.variant(
                            int(tables.fam_idx[fid]), cold_level
                        )
                        fid_rec = (
                            rec
                            if rec is not None and rec.is_sampled(fid)
                            else None
                        )
                        if injector is None:
                            service_time += (
                                variant.cold_service_time_s
                                + (count - 1) * variant.warm_service_time_s
                            )
                        else:
                            service_time += (
                                variant.cold_service_time_s
                                + injector.cold_start_penalty(
                                    t, fid, variant, fid_rec, events
                                )
                                + (count - 1) * variant.warm_service_time_s
                            )
                        n_cold += 1
                        accuracy_sum += count * variant.accuracy
                        if obs is not None:
                            obs.tally_serve(
                                int(fleet.shard_index[fid]), count, 1
                            )
                        if fid_rec is not None:
                            fid_rec.record_cold(
                                t, fid, variant.name, count,
                                fid_rec.last_seen(fid),
                            )
                        shard.ring.mark_alive_one(fid - shard.lo, t, cold_level)
                        if pool is not None:
                            pool.cold_start(fid, variant, t)
                            pool.record_served(fid, count)
                        if events is not None:
                            events.emit(
                                t, EventKind.COLD_START, fid, variant.name, 1
                            )
                            if count > 1:
                                events.emit(
                                    t,
                                    EventKind.WARM_START,
                                    fid,
                                    variant.name,
                                    count - 1,
                                )
                    else:
                        variant = tables.variant(int(tables.fam_idx[fid]), level)
                        service_time += count * variant.warm_service_time_s
                        accuracy_sum += count * variant.accuracy
                        if obs is not None:
                            obs.tally_serve(
                                int(fleet.shard_index[fid]), count, 0
                            )
                        if pool is not None:
                            pool.record_served(fid, count)
                        if events is not None:
                            events.emit(
                                t, EventKind.WARM_START, fid, variant.name, count
                            )
            self.n_invocations += int(inv_counts.sum())

            # Estimator feed + plan installation — batched per shard in
            # both modes. (Safe to run after the serve loop: plans only
            # write minutes t+1.., and each function's estimator state is
            # independent, so the interleaved reference order and this
            # batched order reach identical state.)
            offsets = fleet.split(inv_fids)
            for i, shard in enumerate(fleet.shards):
                a, b = int(offsets[i]), int(offsets[i + 1])
                if a == b:
                    continue
                shard.observe_and_plan(inv_fids[a:b] - shard.lo, t, model, obs)

        # Cross-function review (peak flattening) on the merged state.
        if self.is_pulse:
            if model.enable_global:
                fleet.review(t, events, obs)
            else:
                assert fleet.detector is not None
                fleet.detector.observe(fleet.memory_at(t))

        # Provider pressure valve on the merged state.
        if self.valve_on:
            cap_t = (
                self.capacity
                if injector is None
                else injector.effective_capacity(t, self.capacity)
            )
            if cap_t is not None:
                fleet.valve(t, cap_t, events, obs)

        # Commit the minute.
        if pool is not None:
            t_pool = time.perf_counter() if spans is not None else 0.0
            # repro: lint-ok[RPR009] compat mode only (a reference
            # ContainerPool is attached): the commit-side mirror of the
            # pre-warm reconcile above; pool=None on the lean fleet path
            for fid in range(n_fn):
                pool.reconcile(fid, fleet.shard_for(fid).variant_at(fid, t), t)
            pool.tick_all()
            if spans is not None:
                spans.add("pool-reconcile", time.perf_counter() - t_pool)
        mem_t = fleet.memory_at(t)
        self.total_mb_minutes += mem_t
        if obs is not None:
            obs.tally_memory(t, mem_t)
        if events is not None:
            events.emit(t, EventKind.MEMORY_COMMIT, value=mem_t)
        if self.mem_series is not None:
            self.mem_series[t] = mem_t
        if self.ideal_series is not None and n_events:
            # repro: lint-ok[RPR009] same expression, operand dtype and
            # operand order as the reference engine's ideal-series sum, so
            # numpy's pairwise reduction is bitwise-identical across
            # engines; pinned by the golden equivalence tests
            self.ideal_series[t] = tables.highest_mb[inv_fids].sum()

        self.service_time = service_time
        self.accuracy_sum = accuracy_sum
        self.n_cold = n_cold
        self.last_memory_mb = mem_t
        self.next_minute = t + 1

    def finalize(self) -> RunResult:
        """Close the run and build its :class:`RunResult` (idempotent —
        the metric/obs finalizers below mutate, so the result is cached)."""
        if self._result is not None:
            return self._result
        cfg = self.cfg
        fleet = self.fleet
        obs = self.obs
        met = self.met
        n_invocations = self.n_invocations
        n_cold = self.n_cold
        mean_accuracy = (
            self.accuracy_sum / n_invocations if n_invocations else 0.0
        )
        if met is not None:
            assert obs is not None
            # The shared cross-engine metric names, fed from the columnar
            # partials. The loop engines label invocation/cold counters
            # per function; per-function series cannot scale to 100k
            # fids, so the fleet labels them per shard — totals stay
            # identical for any shard count (exact integer partials).
            _inv = met.counter("invocations_total", "invocations served")
            _cold = met.counter("cold_starts_total", "user-visible cold starts")
            for i in range(len(fleet.shards)):
                _inv.labels(shard=i).inc(int(obs.shard_invocations[i]))
                _cold.labels(shard=i).inc(int(obs.shard_cold[i]))
            met.counter("warm_starts_total", "invocations served warm").inc(
                n_invocations - n_cold
            )
            met.histogram(
                "keepalive_mb", "per-minute committed keep-alive memory"
            ).observe_many(obs.mem_series)
            met.counter(
                "forced_downgrades_total", "capacity-valve downgrades"
            ).inc(fleet.n_forced)
            met.gauge("horizon_minutes").set(self.horizon)
            met.gauge("n_functions").set(self.n_fn)
            met.gauge("keepalive_mb_minutes").set(self.total_mb_minutes)
        if obs is not None:
            obs.finalize_fleet_metrics()
        resilience = collect_resilience(
            self.policy, self.injector, self.horizon
        )
        self._result = RunResult(
            policy_name=self.policy.name,
            n_invocations=n_invocations,
            n_warm=n_invocations - n_cold,
            n_cold=n_cold,
            total_service_time_s=self.service_time,
            keepalive_cost_usd=cfg.cost_model.minute_cost(
                self.total_mb_minutes
            ),
            mean_accuracy=mean_accuracy,
            policy_overhead_s=0.0,
            n_policy_decisions=0,
            memory_series_mb=self.mem_series,
            ideal_memory_series_mb=self.ideal_series,
            pool_stats=self.pool.stats if self.pool is not None else None,
            events=self.events,
            n_forced_downgrades=fleet.n_forced,
            n_checkpoints=0,
            obs=obs,
            **resilience,
        )
        return self._result


def validate_fleet_config(cfg, shards: int) -> None:
    """Entry validation shared by :func:`run_fleet` and the session
    layer: reject configs the columnar engine cannot honor."""
    if cfg.measure_overhead:
        raise ValueError(
            "engine='fleet' cannot honor measure_overhead=True (Figure 9's "
            "metric needs the reference loop's per-minute decision "
            "cadence); use engine='auto' or 'reference'"
        )
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise ValueError(f"shards must be a positive int, got {shards!r}")


def run_fleet(sim, shards: int = 1, checkpoint=None, resume_from=None) -> RunResult:
    """Execute ``sim`` on the fleet engine with ``shards`` shards.

    Called by :meth:`Simulation.run` — use ``run(engine="fleet",
    shards=...)`` (or :func:`repro.api.simulate`) rather than calling
    this directly. A thin driver over :class:`FleetStepper`: extracts
    the sparse minute-major event table once, then feeds the stepper
    every minute.
    """
    if checkpoint is not None or resume_from is not None:
        raise ValueError(
            "engine='fleet' does not support checkpoint/resume; use "
            "engine='reference' or 'fast'"
        )
    validate_fleet_config(sim.config, shards)

    trace = sim.trace
    horizon = trace.horizon
    counts = trace.counts
    stepper = FleetStepper(sim, shards)

    # Sparse minute-major event table: the per-minute kernels index only
    # the invoking functions (fid-ascending within each minute, matching
    # the reference's flatnonzero order).
    ev_minute, ev_fid = np.nonzero(counts.T)
    ev_count = counts[ev_fid, ev_minute]
    minute_starts = np.searchsorted(ev_minute, np.arange(horizon + 1))

    for t in range(horizon):
        lo, hi = int(minute_starts[t]), int(minute_starts[t + 1])
        stepper.step(t, ev_fid[lo:hi], ev_count[lo:hi])

    return stepper.finalize()
