"""Run metrics: the paper's three headline quantities plus diagnostics.

- **service time** — cumulative seconds over all invocations (cold-start
  time + execution time; a warm start has zero cold-start component);
- **keep-alive cost** — USD the provider spends holding containers warm;
- **accuracy** — the mean accuracy delivered per invocation.

:class:`RunResult` also carries per-minute memory series (for Figures 4,
6b and 7), policy-decision overhead (Figure 9) and container-pool
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import fmean

import numpy as np

from repro.obs.session import ObsSession
from repro.runtime.container import PoolStats
from repro.runtime.costmodel import CostModel
from repro.runtime.events import EventLog

__all__ = ["RunResult", "aggregate_results", "percent_improvement"]


@dataclass(frozen=True)
class RunResult:
    """Everything measured over one simulated run of one policy."""

    policy_name: str
    n_invocations: int
    n_warm: int
    n_cold: int
    total_service_time_s: float
    keepalive_cost_usd: float
    mean_accuracy: float  # percent
    policy_overhead_s: float
    n_policy_decisions: int
    memory_series_mb: np.ndarray | None = None
    ideal_memory_series_mb: np.ndarray | None = None
    pool_stats: PoolStats | None = None
    events: EventLog | None = None
    #: Random platform downgrades forced by a memory capacity cap (0 when
    #: uncapped or when the policy kept memory within capacity).
    n_forced_downgrades: int = 0
    #: Resilience counters (all 0 unless the run injected faults or ran a
    #: crash-isolated policy — see :mod:`repro.faults`):
    #: failed container-spawn attempts, retries consumed by them,
    #: policy exceptions caught by the isolation wrapper, and
    #: function-minutes spent degraded to the fixed fallback.
    n_spawn_failures: int = 0
    n_retries: int = 0
    n_policy_faults: int = 0
    n_degraded_minutes: int = 0
    #: Checkpoints captured during the run (0 unless ``Simulation.run``
    #: was given a :class:`~repro.runtime.checkpoint.CheckpointConfig`).
    #: Deliberately absent from :meth:`summary`: checkpointing is a
    #: harness concern, and a run's headline artifact must not depend on
    #: whether (or how often) it was checkpointed.
    n_checkpoints: int = 0
    #: Engine wall-clock seconds for this run (set by ``Simulation.run``;
    #: excluded from engine-equivalence comparisons — it measures the
    #: machine, not the simulated system).
    wall_clock_s: float = 0.0
    #: The run's observability session (metrics registry, span timings,
    #: decision records) when ``SimulationConfig.observe`` was set;
    #: ``None`` for unobserved runs. Never part of headline metrics.
    obs: ObsSession | None = None

    def __post_init__(self) -> None:
        if self.n_warm + self.n_cold != self.n_invocations:
            raise ValueError(
                f"warm ({self.n_warm}) + cold ({self.n_cold}) != "
                f"invocations ({self.n_invocations})"
            )

    @property
    def warm_fraction(self) -> float:
        """Fraction of invocations served warm."""
        if self.n_invocations == 0:
            return 0.0
        return self.n_warm / self.n_invocations

    @property
    def overhead_per_decision_s(self) -> float:
        """Mean policy overhead per decision (Figure 9's x-axis numerator)."""
        if self.n_policy_decisions == 0:
            return 0.0
        return self.policy_overhead_s / self.n_policy_decisions

    @property
    def overhead_over_service_time(self) -> float:
        """Figure 9(a)'s metric: total decision overhead / total service time."""
        if self.total_service_time_s == 0:
            return 0.0
        return self.policy_overhead_s / self.total_service_time_s

    def cost_error_series(self, cost_model: CostModel) -> np.ndarray:
        """Per-minute keep-alive cost deviation from ideal, in percent.

        Figure 6(b): the ideal keeps a container alive exactly during
        invocation minutes. Minutes where both actual and ideal memory are
        zero contribute 0 %; minutes with actual spend but zero ideal are
        capped at +200 % (the plot's visual ceiling) to keep the series
        finite.
        """
        if self.memory_series_mb is None or self.ideal_memory_series_mb is None:
            raise ValueError("run was executed without series recording")
        actual = cost_model.cost_series(self.memory_series_mb)
        ideal = cost_model.cost_series(self.ideal_memory_series_mb)
        err = np.zeros_like(actual)
        nonzero = ideal > 0
        err[nonzero] = 100.0 * (actual[nonzero] - ideal[nonzero]) / ideal[nonzero]
        waste = (~nonzero) & (actual > 0)
        err[waste] = 200.0
        return np.clip(err, -100.0, 200.0)

    def summary(self) -> dict[str, float | str]:
        """Flat dict of the headline metrics (for tables and reports)."""
        return {
            "policy": self.policy_name,
            "invocations": float(self.n_invocations),
            "warm_fraction": self.warm_fraction,
            "service_time_s": self.total_service_time_s,
            "keepalive_cost_usd": self.keepalive_cost_usd,
            "accuracy_percent": self.mean_accuracy,
            "overhead_s": self.policy_overhead_s,
            "n_forced_downgrades": float(self.n_forced_downgrades),
            "n_spawn_failures": float(self.n_spawn_failures),
            "n_retries": float(self.n_retries),
            "n_policy_faults": float(self.n_policy_faults),
            "n_degraded_minutes": float(self.n_degraded_minutes),
            "wall_clock_s": self.wall_clock_s,
        }

    def flat_metrics(self) -> dict[str, float]:
        """The observability registry as a flat ``{series: value}`` dict
        (empty when the run was unobserved or metrics were off)."""
        if self.obs is None or not self.obs.metrics_enabled:
            return {}
        return self.obs.metrics.as_flat_dict()


def aggregate_results(results: list[RunResult]) -> dict[str, float]:
    """Mean headline metrics across runs (the paper averages 1000 runs)."""
    if not results:
        raise ValueError("need at least one RunResult")
    return {
        "service_time_s": fmean(r.total_service_time_s for r in results),
        "keepalive_cost_usd": fmean(r.keepalive_cost_usd for r in results),
        "accuracy_percent": fmean(r.mean_accuracy for r in results),
        "warm_fraction": fmean(r.warm_fraction for r in results),
        "overhead_s": fmean(r.policy_overhead_s for r in results),
        "n_warm": fmean(r.n_warm for r in results),
        "n_cold": fmean(r.n_cold for r in results),
        "n_forced_downgrades": fmean(r.n_forced_downgrades for r in results),
        "n_spawn_failures": fmean(r.n_spawn_failures for r in results),
        "n_retries": fmean(r.n_retries for r in results),
        "n_policy_faults": fmean(r.n_policy_faults for r in results),
        "n_degraded_minutes": fmean(r.n_degraded_minutes for r in results),
        "wall_clock_s": fmean(r.wall_clock_s for r in results),
        "n_runs": float(len(results)),
    }


def percent_improvement(
    baseline: float, value: float, *, higher_is_better: bool
) -> float:
    """Improvement of ``value`` over ``baseline`` in percent.

    Positive means *better*: for cost/time metrics (lower is better) this
    is the percentage reduction; for accuracy it is the percentage gain.
    Matches the y-axes of Figures 6(a), 8 and 10–12.
    """
    if baseline == 0:
        raise ValueError("baseline metric is zero; improvement undefined")
    if higher_is_better:
        return 100.0 * (value - baseline) / abs(baseline)
    return 100.0 * (baseline - value) / abs(baseline)
