"""The keep-alive policy interface.

A policy answers three questions the engine asks:

1. :meth:`~KeepAlivePolicy.cold_variant` — an invocation arrived and
   nothing is warm: which variant do we cold-start?
2. :meth:`~KeepAlivePolicy.plan` — an invocation was just served at minute
   *t*: which variant (or nothing) should be warm at each of minutes
   *t+1 … t+K*?
3. :meth:`~KeepAlivePolicy.review_minute` — all of minute *t*'s
   invocations are processed: does the policy want to rewrite the current
   schedule (PULSE's cross-function peak flattening lives here)?

Policies see only the *past*: the engine feeds invocations through
:meth:`~KeepAlivePolicy.observe_invocation` as they happen. Oracle
baselines (used for Tables II/III and the "ideal" series of Figure 6b)
explicitly declare themselves via :attr:`is_oracle` and receive the trace
up front through :meth:`bind`.
"""

from __future__ import annotations

import abc

from repro.models.variants import ModelFamily, ModelVariant
from repro.obs.session import NULL_OBS
from repro.runtime.schedule import KeepAliveSchedule
from repro.traces.schema import Trace

__all__ = ["KeepAlivePolicy"]


class KeepAlivePolicy(abc.ABC):
    """Abstract base for every keep-alive strategy in this repository."""

    #: Human-readable policy name (used in reports and figures).
    name: str = "policy"

    #: True for baselines that legitimately read the future (oracles).
    is_oracle: bool = False

    def __init__(self) -> None:
        self._assignment: dict[int, ModelFamily] | None = None
        self._keep_alive_window: int = 10
        self._trace: Trace | None = None
        #: The run's observability session (:data:`~repro.obs.session.NULL_OBS`
        #: unless the engine attached a live one). Policy instrumentation
        #: guards on its ``*_enabled`` flags, so unobserved runs pay one
        #: attribute load + branch per guarded site.
        self.obs = NULL_OBS
        #: The run's event log, when ``record_events`` is on — lets the
        #: policy layer emit first-class events (DOWNGRADE) itself.
        self.event_sink = None

    # -- lifecycle -----------------------------------------------------------
    def attach_observability(self, obs=None, event_sink=None) -> None:
        """Engine hook: wire the run's telemetry before :meth:`bind`.

        Called (when observability or event recording is on) before
        ``bind``, so ``on_bind`` can propagate ``self.obs`` /
        ``self.event_sink`` into policy sub-components. Wrapper policies
        forward this to their inner policies.
        """
        if obs is not None:
            self.obs = obs
        if event_sink is not None:
            self.event_sink = event_sink

    def bind(
        self,
        trace: Trace,
        assignment: dict[int, ModelFamily],
        keep_alive_window: int,
    ) -> None:
        """Attach the policy to a run.

        Called once by the engine before the first minute. Non-oracle
        policies must not read ``trace.counts`` after binding — the engine
        hands it over only so oracles can; honest policies should use just
        the shape metadata (``n_functions``/``horizon``) and the live
        :meth:`observe_invocation` feed.
        """
        if len(assignment) != trace.n_functions:
            raise ValueError(
                f"assignment covers {len(assignment)} functions, trace has "
                f"{trace.n_functions}"
            )
        for fid in range(trace.n_functions):
            if fid not in assignment:
                raise ValueError(f"assignment missing function {fid}")
        self._assignment = dict(assignment)
        self._keep_alive_window = keep_alive_window
        self._trace = trace
        self.on_bind()

    def on_bind(self) -> None:
        """Subclass hook; runs after :meth:`bind` validated the inputs."""

    # -- bound-state accessors -------------------------------------------
    @property
    def keep_alive_window(self) -> int:
        return self._keep_alive_window

    @property
    def assignment(self) -> dict[int, ModelFamily]:
        if self._assignment is None:
            raise RuntimeError(f"policy {self.name!r} is not bound to a run yet")
        return self._assignment

    def family(self, function_id: int) -> ModelFamily:
        """The model family assigned to a function."""
        return self.assignment[function_id]

    @property
    def n_functions(self) -> int:
        if self._trace is None:
            raise RuntimeError(f"policy {self.name!r} is not bound to a run yet")
        return self._trace.n_functions

    # -- the engine-facing decisions --------------------------------------
    def observe_invocation(self, function_id: int, minute: int, count: int) -> None:
        """Live feed of invocations; default is stateless."""

    @abc.abstractmethod
    def cold_variant(self, function_id: int, minute: int) -> ModelVariant:
        """Variant to cold-start when an invocation finds nothing warm."""

    @abc.abstractmethod
    def plan(self, function_id: int, minute: int) -> list[ModelVariant | None]:
        """Keep-alive plan for offsets 1..K after an invocation at ``minute``."""

    def review_minute(self, minute: int, schedule: KeepAliveSchedule) -> None:
        """Cross-function hook after all of ``minute``'s invocations.

        Policies with a global stage (PULSE, MILP) rewrite the schedule's
        entries for ``minute`` (and later) here. Default: do nothing.
        """

    def idle_review(self, minute: int, schedule: KeepAliveSchedule) -> bool:
        """Fast-path replacement for :meth:`review_minute` on minutes with
        no invocations.

        The event-driven engine calls this instead of the full review on
        idle minutes. A policy that overrides :meth:`review_minute` may
        override this to do its cheap per-minute bookkeeping (e.g. feed a
        peak detector) and return ``False`` — a guarantee that the full
        review would not have modified the schedule this minute. Returning
        ``True`` makes the engine run :meth:`review_minute` as usual, so
        the default is always safe for policies with a review stage.

        Policies that do not override :meth:`review_minute` are never
        asked: the engine skips the review entirely on every minute.
        """
        return True

    # -- helpers -----------------------------------------------------------
    def _full_window_plan(self, variant: ModelVariant | None) -> list[ModelVariant | None]:
        """A plan holding one decision for the whole keep-alive window."""
        return [variant] * self._keep_alive_window

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
