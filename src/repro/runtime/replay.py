"""An independent event-driven reference implementation of fixed keep-alive.

The minute-loop engine (:mod:`repro.runtime.simulator`) is the system
under study; this module re-implements the *fixed keep-alive* accounting
a second way — as an event-driven pass over each function's invocation
minutes, with closed-form per-gap keep-alive intervals — so the two can
be checked against each other (differential testing). For any trace and
any fixed-variant policy, both implementations must agree exactly on:

- the number of cold and warm starts,
- total service time,
- total keep-alive memory-minutes (hence cost).

The closed form: for one function with arrival minutes
``m_0 < m_1 < … < m_k`` and keep-alive window ``K``, a container is alive
at minute ``t`` iff ``m_i <= t <= m_i + K`` for some *i*; the union of
those intervals has length ``sum(min(gap_i, K + 1)) + K + 1`` where
``gap_i = m_{i+1} - m_i``. An arrival is warm iff its gap from the
previous arrival is ``<= K`` (or it shares a minute with an earlier
invocation).

This is deliberately *not* a policy plugged into the main engine — it
shares no code with it, which is what makes agreement meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.variants import ModelFamily, ModelVariant
from repro.runtime.costmodel import CostModel
from repro.traces.schema import Trace
from repro.utils.validation import check_positive_int

__all__ = ["FixedPolicyReference", "ReferenceResult"]


@dataclass(frozen=True)
class ReferenceResult:
    """The reference implementation's accounting."""

    n_invocations: int
    n_warm: int
    n_cold: int
    total_service_time_s: float
    keepalive_mb_minutes: float
    keepalive_cost_usd: float
    mean_accuracy: float


class FixedPolicyReference:
    """Closed-form fixed keep-alive accounting for one variant level."""

    def __init__(
        self,
        keep_alive_window: int = 10,
        level: str = "highest",
        cost_model: CostModel | None = None,
    ):
        check_positive_int("keep_alive_window", keep_alive_window)
        if level not in ("highest", "lowest"):
            raise ValueError(f"level must be 'highest' or 'lowest', got {level!r}")
        self.window = keep_alive_window
        self.level = level
        self.cost_model = cost_model or CostModel()

    def _variant(self, family: ModelFamily) -> ModelVariant:
        return family.highest if self.level == "highest" else family.lowest

    def _alive_minutes(self, arrivals: np.ndarray, horizon: int) -> int:
        """Length of the union of [m_i, m_i + K] intervals, clipped."""
        if len(arrivals) == 0:
            return 0
        k = self.window
        total = 0
        gaps = np.diff(arrivals)
        total += int(np.minimum(gaps, k + 1).sum())
        # Last arrival's interval, clipped to the horizon.
        total += int(min(k + 1, horizon - arrivals[-1]))
        return total

    def run(self, trace: Trace, assignment: dict[int, ModelFamily]) -> ReferenceResult:
        """Account the whole trace."""
        n_warm = 0
        n_cold = 0
        n_invocations = 0
        service = 0.0
        accuracy_sum = 0.0
        mb_minutes = 0.0
        for fid in range(trace.n_functions):
            family = assignment[fid]
            variant = self._variant(family)
            counts = trace.counts_for(fid)
            arrivals = trace.invocation_minutes(fid)
            if len(arrivals) == 0:
                continue
            # Cold starts: the first arrival, plus any arrival whose gap
            # from the previous arrival minute exceeds the window.
            gaps = np.diff(arrivals)
            cold_arrivals = 1 + int(np.count_nonzero(gaps > self.window))
            total_inv = int(counts.sum())
            n_cold += cold_arrivals
            n_warm += total_inv - cold_arrivals
            n_invocations += total_inv
            service += (
                cold_arrivals * variant.cold_service_time_s
                + (total_inv - cold_arrivals) * variant.warm_service_time_s
            )
            accuracy_sum += total_inv * variant.accuracy
            mb_minutes += variant.memory_mb * self._alive_minutes(
                arrivals, trace.horizon
            )
        return ReferenceResult(
            n_invocations=n_invocations,
            n_warm=n_warm,
            n_cold=n_cold,
            total_service_time_s=service,
            keepalive_mb_minutes=mb_minutes,
            keepalive_cost_usd=self.cost_model.minute_cost(mb_minutes),
            mean_accuracy=accuracy_sum / n_invocations if n_invocations else 0.0,
        )
