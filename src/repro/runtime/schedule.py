"""The keep-alive ledger: who is planned to be warm, when, at which quality.

Policies write *plans* into the schedule — after an invocation of function
*f* at minute *t*, a plan assigns a model variant (or nothing) to each of
minutes *t+1 … t+K* (K = the keep-alive window, 10 in the paper). The
engine reads the schedule to decide warm/cold starts and to account
keep-alive memory; the global optimizer (PULSE's cross-function stage)
rewrites schedule entries during peaks via :meth:`downgrade`.

Later plans overwrite earlier ones minute-by-minute, which reproduces the
fixed policy's "extend on re-invocation" behaviour and lets adaptive
policies shorten or upgrade earlier decisions.

Memory accounting is a *canonical count ledger*: alongside the
per-function entry maps the schedule maintains, per minute, an integer
count of live entries per distinct container footprint. :meth:`memory_at`
evaluates the minute as a dot product over the footprints in ascending
order — a **canonical evaluation order** that depends only on *what* is
alive at the minute, never on the sequence of writes that got it there.
That property is what lets three very different engine loops (the
reference minute walk, the event-driven fast path, and the columnar fleet
kernel in :mod:`repro.runtime.fleet`) produce bit-identical memory
series: each computes the same counts and folds them in the same
footprint order, so the floats agree to the last ulp.

Writes are O(1) (an integer count bump plus a dirty mark); the float
value of a touched minute is recomputed lazily at the next read, so a
minute read once per engine commit costs one short sorted fold (the zoo
has ~a dozen distinct footprints, and a single minute rarely holds more
than a few). Empty minutes read exactly ``0.0`` — the counts decide
emptiness, so no epsilon hacks are needed and rounding residue cannot
survive on an empty minute.

Two invariants the ledger maintains (property-tested in
``tests/test_engine_fastpath.py``):

- ``memory_at(m)`` equals the from-scratch sum of the entries at minute
  ``m`` (up to float rounding of the evaluation order);
- a minute whose last entry is removed reads exactly ``0.0``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.models.variants import ModelFamily, ModelVariant
from repro.utils.validation import check_positive_int

__all__ = ["KeepAliveSchedule"]


class KeepAliveSchedule:
    """Minute-indexed keep-alive decisions for every function.

    ``horizon_hint`` pre-sizes the memory vector (the engine passes
    ``trace.horizon + window``); the vector grows on demand when plans
    reach beyond it, so the hint is purely an allocation optimization.
    """

    def __init__(
        self,
        n_functions: int,
        keep_alive_window: int = 10,
        horizon_hint: int | None = None,
    ):
        check_positive_int("n_functions", n_functions)
        check_positive_int("keep_alive_window", keep_alive_window)
        self.n_functions = n_functions
        self.keep_alive_window = keep_alive_window
        # per function: {absolute minute -> planned variant}
        self._entries: list[dict[int, ModelVariant]] = [
            {} for _ in range(n_functions)
        ]
        # Per function: (plan_object, invocation_minute, is_uniform) of the
        # last set_plan, or None. When a policy re-installs the *same*
        # uniform plan object (fixed policies cache theirs), the minutes
        # covered by the previous install already hold its variant, so
        # set_plan only needs to write the net-new tail. Any other write
        # path (downgrade/clear/mark_alive) invalidates the record.
        self._last_plan: list[tuple | None] = [None] * n_functions
        size = max(horizon_hint or 0, 0) + keep_alive_window + 2
        # Count ledger: per minute, {footprint MB -> number of live
        # entries}. The float value in _mem is the canonical fold of that
        # dict (ascending footprints); minutes in _dirty have stale floats
        # and are re-folded on the next read.
        self._counts: list[dict[float, int]] = [{} for _ in range(size)]
        self._mem: list[float] = [0.0] * size
        self._dirty: set[int] = set()
        # Minutes strictly below the frontier have been forgotten by
        # advance(); used to pop them in O(1) per minute instead of
        # rescanning every entry map.
        self._frontier = 0

    # -- count-ledger internals ---------------------------------------------
    def _ensure(self, minute: int) -> None:
        """Grow the per-minute vectors to cover ``minute``."""
        need = minute + 1 - len(self._mem)
        if need > 0:
            grow = max(need, len(self._mem))  # at least double
            self._mem.extend([0.0] * grow)
            self._counts.extend({} for _ in range(grow))

    def _add(self, minute: int, memory_mb: float) -> None:
        d = self._counts[minute]
        d[memory_mb] = d.get(memory_mb, 0) + 1
        self._dirty.add(minute)

    def _remove(self, minute: int, memory_mb: float) -> None:
        d = self._counts[minute]
        c = d[memory_mb] - 1
        if c:
            d[memory_mb] = c
        else:
            del d[memory_mb]
        self._dirty.add(minute)

    def _fold(self, minute: int) -> float:
        """Canonical evaluation: counts × footprints, ascending footprint
        order. Order-independent by construction, so every engine that
        reproduces the counts reproduces the float bit-for-bit."""
        acc = 0.0
        d = self._counts[minute]
        for fp in sorted(d):
            acc += d[fp] * fp
        self._mem[minute] = acc
        return acc

    def _flush(self, start: int, stop: int) -> None:
        """Re-fold every dirty minute in ``[start, stop)``."""
        dirty = self._dirty
        if not dirty:
            return
        stale = [m for m in dirty if start <= m < stop]
        for m in stale:
            self._fold(m)
        dirty.difference_update(stale)

    # -- writes -------------------------------------------------------------
    def mark_alive(self, function_id: int, minute: int, variant: ModelVariant) -> None:
        """Record that a container serves (and therefore lives) at ``minute``.

        Used when a cold start at ``minute`` brings a container up: it
        consumes keep-alive memory for the remainder of that minute.
        """
        self._check_fid(function_id)
        if minute < 0:
            raise ValueError(f"minute must be >= 0, got {minute}")
        self._ensure(minute)
        self._last_plan[function_id] = None
        entries = self._entries[function_id]
        old = entries.get(minute)
        if old is not None:
            if old is variant or old == variant:
                return
            del entries[minute]
            self._remove(minute, old.memory_mb)
        entries[minute] = variant
        self._add(minute, variant.memory_mb)

    def set_plan(
        self,
        function_id: int,
        invocation_minute: int,
        plan: Sequence[ModelVariant | None],
    ) -> None:
        """Install a policy's plan for minutes ``invocation_minute + 1 ..``.

        ``plan[d-1]`` is the decision for offset ``d``; ``None`` entries
        clear any previously planned keep-alive for that minute.
        """
        # Validation is inlined (no helper calls) — this is the single
        # hottest write of the engine, called once per served invocation.
        if not 0 <= function_id < self.n_functions:
            self._check_fid(function_id)
        n = len(plan)
        if n > self.keep_alive_window:
            raise ValueError(
                f"plan of length {n} exceeds keep-alive window "
                f"{self.keep_alive_window}"
            )
        if invocation_minute < -1:
            raise ValueError(
                f"invocation_minute must be >= -1, got {invocation_minute}"
            )
        if invocation_minute + n >= len(self._mem):
            self._ensure(invocation_minute + n)
        counts = self._counts
        dirty = self._dirty
        entries = self._entries[function_id]
        get = entries.get

        last = self._last_plan[function_id]
        if (
            last is not None
            and last[0] is plan
            and last[2]  # uniform: offsets are interchangeable
            and invocation_minute >= last[1]
            # advance() may have pruned minutes <= frontier - 1; the reused
            # span [invocation_minute + 1, last[1] + n] is intact as long
            # as the frontier never moved past the current minute.
            and self._frontier <= invocation_minute + 1
        ):
            # Same uniform plan object re-installed at a later minute:
            # minutes up to last[1] + n already hold its variant (no other
            # write path touched them, or the record would be None), so
            # only the net-new tail needs the generic treatment.
            start = last[1] + n + 1
            self._last_plan[function_id] = (plan, invocation_minute, True)
            if start > invocation_minute + n:
                return
            variant = plan[0]
            fp = variant.memory_mb
            for m in range(start, invocation_minute + n + 1):
                old = get(m)
                if old is None:
                    entries[m] = variant
                    d = counts[m]
                    d[fp] = d.get(fp, 0) + 1
                    dirty.add(m)
                elif old is not variant and old != variant:
                    entries[m] = variant
                    d = counts[m]
                    c = d[old.memory_mb] - 1
                    if c:
                        d[old.memory_mb] = c
                    else:
                        del d[old.memory_mb]
                    d[fp] = d.get(fp, 0) + 1
                    dirty.add(m)
            return

        uniform = True
        v0 = plan[0] if n else None
        m = invocation_minute
        for variant in plan:
            m += 1
            if variant is not v0:
                uniform = False
            old = get(m)
            if variant is None:
                if old is not None:
                    del entries[m]
                    self._remove(m, old.memory_mb)
            elif old is None:
                entries[m] = variant
                d = counts[m]
                fp = variant.memory_mb
                d[fp] = d.get(fp, 0) + 1
                dirty.add(m)
            elif old is not variant and old != variant:
                entries[m] = variant
                d = counts[m]
                c = d[old.memory_mb] - 1
                if c:
                    d[old.memory_mb] = c
                else:
                    del d[old.memory_mb]
                fp = variant.memory_mb
                d[fp] = d.get(fp, 0) + 1
                dirty.add(m)
        self._last_plan[function_id] = (
            plan,
            invocation_minute,
            uniform and v0 is not None,  # all-None plans stay on the generic path
        )

    def clear(self, function_id: int, minute: int) -> None:
        """Remove any keep-alive decision for one minute."""
        self._check_fid(function_id)
        self._last_plan[function_id] = None
        old = self._entries[function_id].pop(minute, None)
        if old is not None:
            self._remove(minute, old.memory_mb)

    def downgrade(
        self,
        function_id: int,
        from_minute: int,
        family: ModelFamily,
        allow_drop: bool = True,
    ) -> float:
        """Downgrade every planned entry of a function from ``from_minute`` on.

        Each entry is replaced by its next-lower variant. Entries already
        at the lowest variant are removed when ``allow_drop`` is true (the
        paper: "warm starts with models having lower accuracy, or even
        cold starts") and left untouched otherwise — the caller decides
        droppability per *function* (PULSE protects functions that still
        have a chance of invocation), so it must not be implied per entry.
        Returns the memory in MB freed **at ``from_minute``** — the
        quantity the peak-flattening loop iterates on.

        Entries can only exist within one keep-alive window of the most
        recent write, so the walk covers ``from_minute .. from_minute + K``
        — O(K) regardless of how many stale past entries remain.
        """
        self._check_fid(function_id)
        self._last_plan[function_id] = None
        entries = self._entries[function_id]
        freed_now = 0.0
        for m in range(from_minute, from_minute + self.keep_alive_window + 1):
            old = entries.get(m)
            if old is None:
                continue
            new = family.downgrade(old)
            if new is None:
                if not allow_drop:
                    continue
                del entries[m]
                self._remove(m, old.memory_mb)
                if m == from_minute:
                    freed_now += old.memory_mb
            else:
                entries[m] = new
                self._remove(m, old.memory_mb)
                self._add(m, new.memory_mb)
                if m == from_minute:
                    freed_now += old.memory_mb - new.memory_mb
        return freed_now

    def advance(self, minute: int) -> None:
        """Forget entries strictly before ``minute`` (bounds memory use)."""
        start = self._frontier
        if minute <= start:
            return
        self._frontier = minute
        span = minute - start
        for entries in self._entries:
            if not entries:
                continue
            if span <= 4 * len(entries):
                for m in range(start, minute):
                    old = entries.pop(m, None)
                    if old is not None:
                        self._remove(m, old.memory_mb)
            else:
                # Huge jump (e.g. advance(10**9) from a cold schedule):
                # scanning the few live entries beats walking the range.
                for m in [m for m in entries if m < minute]:
                    self._remove(m, entries.pop(m).memory_mb)

    # -- reads --------------------------------------------------------------
    def alive_variant(self, function_id: int, minute: int) -> ModelVariant | None:
        """The variant planned to be warm for a function at ``minute``."""
        self._check_fid(function_id)
        return self._entries[function_id].get(minute)

    def alive_at(self, minute: int) -> dict[int, ModelVariant]:
        """All (function -> variant) keep-alives at ``minute``."""
        return {
            fid: entries[minute]
            for fid, entries in enumerate(self._entries)
            if minute in entries
        }

    def memory_at(self, minute: int) -> float:
        """Total keep-alive memory (MB) at ``minute``."""
        if 0 <= minute < len(self._mem):
            if minute in self._dirty:
                self._dirty.discard(minute)
                return self._fold(minute)
            return self._mem[minute]
        return 0.0

    def footprint_counts(self, minute: int) -> dict[float, int]:
        """The minute's raw count ledger (footprint MB -> live entries).

        Returns a copy; the canonical value of the minute is the fold of
        this dict in ascending-footprint order (see :meth:`memory_at`).
        The fleet engine's parity tests read this to compare integer
        state, which is sturdier than comparing folded floats.
        """
        if 0 <= minute < len(self._counts):
            return dict(self._counts[minute])
        return {}

    @property
    def memory_vector(self) -> np.ndarray:
        """The per-minute canonical memory ledger (MB).

        Index ``m`` is absolute minute ``m``; minutes beyond the last
        written plan are 0. Returns a copy — the live ledger only changes
        through the write methods.
        """
        self._flush(0, len(self._mem))
        return np.asarray(self._mem, dtype=np.float64)

    def memory_slice(self, start: int, stop: int) -> list[float]:
        """Per-minute memory for ``start <= m < stop`` (bulk read used by
        the fast engine's idle-span accounting)."""
        if start >= stop:
            return []
        self._ensure(stop - 1)
        self._flush(start, stop)
        return self._mem[start:stop]

    def recompute_memory_at(self, minute: int) -> float:
        """From-scratch O(n_functions) recomputation of :meth:`memory_at`
        (the reference the count ledger is property-tested against)."""
        return sum(
            entries[minute].memory_mb
            for entries in self._entries
            if minute in entries
        )

    def planned_minutes(self, function_id: int) -> list[int]:
        """Sorted minutes with a keep-alive decision for a function."""
        self._check_fid(function_id)
        return sorted(self._entries[function_id])

    def _check_fid(self, function_id: int) -> None:
        if not 0 <= function_id < self.n_functions:
            raise IndexError(
                f"function_id {function_id} out of range 0..{self.n_functions - 1}"
            )
