"""The keep-alive ledger: who is planned to be warm, when, at which quality.

Policies write *plans* into the schedule — after an invocation of function
*f* at minute *t*, a plan assigns a model variant (or nothing) to each of
minutes *t+1 … t+K* (K = the keep-alive window, 10 in the paper). The
engine reads the schedule to decide warm/cold starts and to account
keep-alive memory; the global optimizer (PULSE's cross-function stage)
rewrites schedule entries during peaks via :meth:`downgrade`.

Later plans overwrite earlier ones minute-by-minute, which reproduces the
fixed policy's "extend on re-invocation" behaviour and lets adaptive
policies shorten or upgrade earlier decisions.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.models.variants import ModelFamily, ModelVariant
from repro.utils.validation import check_positive_int

__all__ = ["KeepAliveSchedule"]


class KeepAliveSchedule:
    """Minute-indexed keep-alive decisions for every function."""

    def __init__(self, n_functions: int, keep_alive_window: int = 10):
        check_positive_int("n_functions", n_functions)
        check_positive_int("keep_alive_window", keep_alive_window)
        self.n_functions = n_functions
        self.keep_alive_window = keep_alive_window
        # per function: {absolute minute -> planned variant}
        self._entries: list[dict[int, ModelVariant]] = [
            {} for _ in range(n_functions)
        ]

    # -- writes -------------------------------------------------------------
    def mark_alive(self, function_id: int, minute: int, variant: ModelVariant) -> None:
        """Record that a container serves (and therefore lives) at ``minute``.

        Used when a cold start at ``minute`` brings a container up: it
        consumes keep-alive memory for the remainder of that minute.
        """
        self._check_fid(function_id)
        self._entries[function_id][minute] = variant

    def set_plan(
        self,
        function_id: int,
        invocation_minute: int,
        plan: Sequence[ModelVariant | None],
    ) -> None:
        """Install a policy's plan for minutes ``invocation_minute + 1 ..``.

        ``plan[d-1]`` is the decision for offset ``d``; ``None`` entries
        clear any previously planned keep-alive for that minute.
        """
        self._check_fid(function_id)
        if len(plan) > self.keep_alive_window:
            raise ValueError(
                f"plan of length {len(plan)} exceeds keep-alive window "
                f"{self.keep_alive_window}"
            )
        entries = self._entries[function_id]
        for d, variant in enumerate(plan, start=1):
            m = invocation_minute + d
            if variant is None:
                entries.pop(m, None)
            else:
                entries[m] = variant

    def clear(self, function_id: int, minute: int) -> None:
        """Remove any keep-alive decision for one minute."""
        self._check_fid(function_id)
        self._entries[function_id].pop(minute, None)

    def downgrade(
        self,
        function_id: int,
        from_minute: int,
        family: ModelFamily,
        allow_drop: bool = True,
    ) -> float:
        """Downgrade every planned entry of a function from ``from_minute`` on.

        Each entry is replaced by its next-lower variant. Entries already
        at the lowest variant are removed when ``allow_drop`` is true (the
        paper: "warm starts with models having lower accuracy, or even
        cold starts") and left untouched otherwise — the caller decides
        droppability per *function* (PULSE protects functions that still
        have a chance of invocation), so it must not be implied per entry.
        Returns the memory in MB freed **at ``from_minute``** — the
        quantity the peak-flattening loop iterates on.
        """
        self._check_fid(function_id)
        entries = self._entries[function_id]
        freed_now = 0.0
        for m in [m for m in entries if m >= from_minute]:
            old = entries[m]
            new = family.downgrade(old)
            if new is None:
                if not allow_drop:
                    continue
                del entries[m]
                if m == from_minute:
                    freed_now += old.memory_mb
            else:
                entries[m] = new
                if m == from_minute:
                    freed_now += old.memory_mb - new.memory_mb
        return freed_now

    def advance(self, minute: int) -> None:
        """Forget entries strictly before ``minute`` (bounds memory use)."""
        for entries in self._entries:
            stale = [m for m in entries if m < minute]
            for m in stale:
                del entries[m]

    # -- reads --------------------------------------------------------------
    def alive_variant(self, function_id: int, minute: int) -> ModelVariant | None:
        """The variant planned to be warm for a function at ``minute``."""
        self._check_fid(function_id)
        return self._entries[function_id].get(minute)

    def alive_at(self, minute: int) -> dict[int, ModelVariant]:
        """All (function -> variant) keep-alives at ``minute``."""
        return {
            fid: entries[minute]
            for fid, entries in enumerate(self._entries)
            if minute in entries
        }

    def memory_at(self, minute: int) -> float:
        """Total keep-alive memory (MB) at ``minute``."""
        return sum(
            entries[minute].memory_mb
            for entries in self._entries
            if minute in entries
        )

    def planned_minutes(self, function_id: int) -> list[int]:
        """Sorted minutes with a keep-alive decision for a function."""
        self._check_fid(function_id)
        return sorted(self._entries[function_id])

    def _check_fid(self, function_id: int) -> None:
        if not 0 <= function_id < self.n_functions:
            raise IndexError(
                f"function_id {function_id} out of range 0..{self.n_functions - 1}"
            )
