"""The simulation engine.

Drives one keep-alive policy over one trace with one model-to-function
assignment, at minute resolution, and produces a
:class:`~repro.runtime.metrics.RunResult`.

Per-minute order of operations (§5 of DESIGN.md):

1. serve each function's invocations — warm if the schedule has a variant
   alive at this minute (or a cold start earlier in the same minute left a
   container up), cold otherwise with the policy's chosen variant;
2. feed the invocation to the policy and install its new keep-alive plan
   for the next K minutes;
3. run the policy's cross-function review (PULSE flattens peaks here by
   rewriting schedule entries for the current and future minutes);
4. reconcile the container pool, commit the minute's keep-alive memory to
   the ledger and accumulate cost.

The *ideal* memory series (Figure 6b's reference) is accounted alongside:
a container of the assigned family's highest variant alive exactly during
invocation minutes.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.models.variants import ModelFamily
from repro.obs.session import ObservabilityConfig, ObsSession
from repro.runtime.checkpoint import CheckpointConfig, SimulationState
from repro.runtime.container import ContainerPool
from repro.runtime.costmodel import CostModel
from repro.runtime.events import EventKind, EventLog
from repro.runtime.metrics import RunResult
from repro.runtime.policy import KeepAlivePolicy
from repro.runtime.schedule import KeepAliveSchedule
from repro.traces.schema import Trace
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive_int

__all__ = [
    "Simulation",
    "SimulationConfig",
    "apply_capacity_valve",
    "collect_resilience",
    "emit_downgrade",
]


def emit_downgrade(
    minute: int,
    victim: int,
    from_name: str,
    to_name: str | None,
    events: EventLog | None,
    obs: ObsSession | None,
    *,
    forced: bool = False,
    candidates: list[dict] | None = None,
) -> None:
    """One downgrade's telemetry — the DOWNGRADE event plus the decision
    trace record — in one place, shared by every emit site.

    The capacity valve below, the fleet reducer's Algorithm 2 and its
    valve all funnel through this helper, so the event stream shape
    (``value=1.0`` marks a forced valve victim, ``0.0`` an Algorithm-2
    one — matching ``GlobalOptimizer.review``'s emissions) and the
    record schema cannot drift between engines. Pass ``obs=None`` to
    skip the trace record (e.g. fleet victims outside the trace sample).
    """
    if events is not None:
        # repro: lint-ok[RPR002] DOWNGRADE is emitted only here and in
        # GlobalOptimizer.review; every engine funnels through one of the two
        events.emit(minute, EventKind.DOWNGRADE, victim, to_name,
                    1.0 if forced else 0.0)
    if obs is not None:
        # repro: lint-ok[RPR002] record_downgrade fires only here and in
        # GlobalOptimizer.review; every engine funnels through one of the two
        obs.record_downgrade(
            minute, victim, from_name, to_name,
            candidates=candidates, forced=forced,
        )


def collect_resilience(
    policy: KeepAlivePolicy, injector: FaultInjector | None, horizon: int
) -> dict[str, int]:
    """The run's resilience counters, as ``RunResult`` kwargs.

    Shared by both engine loops. Spawn counters come from the fault
    injector; policy-fault counters come from the policy itself when it
    exposes ``resilience_stats`` (duck-typed — only
    :class:`~repro.faults.isolation.ResilientPolicy` does, so plain
    policies pay a single ``getattr``).
    """
    out = {
        "n_spawn_failures": 0,
        "n_retries": 0,
        "n_policy_faults": 0,
        "n_degraded_minutes": 0,
    }
    if injector is not None:
        out["n_spawn_failures"] = injector.n_spawn_failures
        out["n_retries"] = injector.n_retries
    stats = getattr(policy, "resilience_stats", None)
    if stats is not None:
        out.update(stats(horizon))
    return out


def apply_capacity_valve(
    schedule: KeepAliveSchedule,
    minute: int,
    capacity_mb: float,
    rng,
    assignment: dict[int, ModelFamily],
    events: EventLog | None = None,
    obs: ObsSession | None = None,
) -> int:
    """§III-A's provider pressure valve: randomly downgrade kept-alive
    models until the minute's keep-alive memory fits ``capacity_mb``.

    Shared by the reference and fast engine loops so both consume the
    capacity RNG identically. The candidate array is built once and
    maintained incrementally (victims are removed only when their
    keep-alive is dropped entirely), instead of rebuilding it from the
    alive map on every iteration; it stays fid-sorted throughout, which
    keeps victim selection deterministic under ``capacity_seed``.

    ``events``/``obs`` only *record* each forced downgrade (DOWNGRADE
    events with ``value=1.0``; ``forced=True`` trace records) — victim
    selection and the RNG stream are unaffected.
    """
    if schedule.memory_at(minute) <= capacity_mb:
        return 0
    alive_fids = np.fromiter(schedule.alive_at(minute), dtype=np.int64)
    n_forced = 0
    record = events is not None or obs is not None
    while schedule.memory_at(minute) > capacity_mb and alive_fids.size:
        victim = int(rng.choice(alive_fids))
        if record:
            frm = schedule.alive_variant(victim, minute)
        schedule.downgrade(victim, minute, assignment[victim], allow_drop=True)
        n_forced += 1
        new = schedule.alive_variant(victim, minute)
        if record:
            emit_downgrade(
                minute, victim, frm.name,
                new.name if new is not None else None,
                events, obs, forced=True,
            )
        if new is None:
            alive_fids = alive_fids[alive_fids != victim]
    return n_forced


@dataclass(frozen=True)
class SimulationConfig:
    """Engine parameters.

    ``record_series`` keeps the per-minute memory series (needed for the
    memory/cost-error figures; disable for large sweeps).
    ``track_containers`` maintains the container pool (lifecycle statistics;
    small overhead).
    ``measure_overhead`` wall-clocks every policy decision (Figure 9).
    ``record_events`` collects a structured event log (cold/warm starts,
    pre-warms, evictions, memory commits) on ``RunResult.events``;
    implies container tracking for the pre-warm/eviction events.

    ``memory_capacity_mb`` models the provider's finite memory (§III-A:
    memory "is shared between actual invocations and keep-alive"). When a
    minute's keep-alive memory exceeds capacity *after* the policy's
    review, the platform force-downgrades **randomly chosen** kept-alive
    models until it fits — the paper's "random functions/models are
    downgraded" pressure valve that PULSE's utility-guided flattening is
    designed to preempt. ``None`` (default) disables the cap.

    ``fast`` selects the event-driven engine loop
    (:mod:`repro.runtime.fastpath`): it iterates only over minutes where
    something can happen (invocations) and accounts the idle spans in
    between analytically from the schedule's incremental memory ledger.
    It produces metrics identical to the reference loop (the golden
    equivalence test in ``tests/test_engine_fastpath.py`` pins this), with
    one exception: ``measure_overhead=True`` falls back to the reference
    loop, because Figure 9's overhead metric is defined over the
    per-minute decision cadence the fast path elides.

    .. deprecated::
        ``fast=True`` is superseded by the ``engine`` argument of
        :meth:`Simulation.run` / :func:`repro.api.simulate`
        (``"auto"``/``"reference"``/``"fast"``); relying on the boolean
        emits a :class:`DeprecationWarning` at run time.

    ``faults`` attaches a :class:`~repro.faults.plan.FaultPlan`: seeded
    platform faults (spawn failures/retries, cold-start slowdowns,
    memory-pressure spikes, trace perturbations) injected identically on
    both engines. ``None`` (default) or an all-zero plan injects nothing
    and leaves every metric bit-identical to a fault-free build.
    """

    keep_alive_window: int = 10
    cost_model: CostModel = field(default_factory=CostModel)
    record_series: bool = True
    track_containers: bool = True
    measure_overhead: bool = False
    record_events: bool = False
    memory_capacity_mb: float | None = None
    capacity_seed: int = 0
    fast: bool = False
    faults: FaultPlan | None = None
    #: Observability (:mod:`repro.obs`): ``None``/``False`` disables the
    #: layer entirely (no recorder, no allocations); ``True`` enables all
    #: of it; an :class:`~repro.obs.session.ObservabilityConfig` picks
    #: layers. Enabling it never changes headline metrics (the golden
    #: test in ``tests/test_obs_equivalence.py`` pins bit-identity).
    observe: ObservabilityConfig | bool | None = None

    def __post_init__(self) -> None:
        check_positive_int("keep_alive_window", self.keep_alive_window)
        if self.memory_capacity_mb is not None and self.memory_capacity_mb <= 0:
            raise ValueError(
                f"memory_capacity_mb must be positive, got {self.memory_capacity_mb}"
            )
        if self.observe is True:
            object.__setattr__(self, "observe", ObservabilityConfig())
        elif self.observe is False:
            object.__setattr__(self, "observe", None)
        elif self.observe is not None and not isinstance(
            self.observe, ObservabilityConfig
        ):
            raise TypeError(
                "observe must be an ObservabilityConfig, a bool or None, "
                f"got {self.observe!r}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan or None, got {self.faults!r}"
            )


class Simulation:
    """One policy, one trace, one assignment — one run."""

    def __init__(
        self,
        trace: Trace,
        assignment: dict[int, ModelFamily],
        policy: KeepAlivePolicy,
        config: SimulationConfig | None = None,
    ):
        self.trace = trace
        self.assignment = dict(assignment)
        self.policy = policy
        self.config = config or SimulationConfig()
        self._validate()
        faults = self.config.faults
        if faults is not None and faults.perturbs_trace:
            # Perturb once, up front: both engines (and the oracle
            # baselines' bind()) must see the same noisy trace.
            self.trace = faults.perturb_trace(self.trace)

    def _validate(self) -> None:
        if set(self.assignment) != set(range(self.trace.n_functions)):
            raise ValueError(
                "assignment must map every function id 0..n-1 to a family; "
                f"got keys {sorted(self.assignment)}"
            )

    def run(
        self,
        engine: str | None = None,
        *,
        shards: int = 1,
        checkpoint: CheckpointConfig | None = None,
        resume_from: SimulationState | str | Path | None = None,
    ) -> RunResult:
        """Execute the run and return its metrics.

        ``engine`` selects the loop:

        - ``"auto"`` — the event-driven fast loop unless the config needs
          the per-minute decision cadence (``measure_overhead``);
        - ``"reference"`` — the minute-by-minute reference loop;
        - ``"fast"`` — the fast loop, erroring if the config demands the
          reference cadence;
        - ``"fleet"`` — the columnar fleet engine
          (:mod:`repro.runtime.fleet`): per-function state in numpy
          arrays, partitioned into ``shards`` contiguous fid ranges with
          a global reduce for the cross-function stages. Built for
          10⁴–10⁵-function fleets; supports PULSE and the fixed
          baselines, and errors on configs needing per-decision hooks
          (``measure_overhead``, observability, checkpoint/resume);
        - ``None`` (default) — the deprecated legacy behavior: follow
          ``config.fast`` (warning when it is set).

        ``shards`` is only meaningful with ``engine="fleet"`` (the shard
        count never changes results — ``shards=1`` ≡ ``shards=k``).

        All loops produce identical metrics; ``wall_clock_s`` records
        the elapsed engine time either way.

        ``checkpoint`` enables periodic :class:`SimulationState`
        snapshots (see :mod:`repro.runtime.checkpoint`); ``resume_from``
        — a state or a path to one — continues an interrupted run from
        its last snapshot, bit-identically to never having stopped. A
        resume must use the same trace/assignment/policy/config that
        produced the checkpoint (the durable sweep layer verifies this
        via content hashes); the engine is taken from the checkpoint
        unless explicitly overridden, and an explicit mismatch errors.
        """
        if checkpoint is not None and not isinstance(checkpoint, CheckpointConfig):
            raise TypeError(
                f"checkpoint must be a CheckpointConfig or None, got {checkpoint!r}"
            )
        if isinstance(resume_from, (str, Path)):
            resume_from = SimulationState.load(resume_from)
        if shards != 1 and engine != "fleet":
            raise ValueError(
                f"shards={shards} is only meaningful with engine='fleet'"
            )
        t0 = time.perf_counter()
        if engine == "fleet":
            from repro.runtime.fleet import run_fleet

            result = run_fleet(
                self, shards=shards, checkpoint=checkpoint,
                resume_from=resume_from,
            )
        elif self._resolve_engine(engine, resume_from):
            from repro.runtime.fastpath import run_fast

            result = run_fast(self, checkpoint=checkpoint, resume_from=resume_from)
        else:
            result = self._run_reference(
                checkpoint=checkpoint, resume_from=resume_from
            )
        wall = time.perf_counter() - t0
        if result.obs is not None and result.obs.spans_enabled:
            result.obs.spans.add("engine-total", wall)
        return replace(result, wall_clock_s=wall)

    def _resolve_engine(
        self, engine: str | None, resume_from: SimulationState | None = None
    ) -> bool:
        """Map the ``engine`` argument to "use the fast loop?"."""
        cfg = self.config
        if resume_from is not None:
            # A checkpoint binds the run to the loop that captured it:
            # the two engines' cursors are not interchangeable.
            state_fast = resume_from.engine == "fast"
            if engine in (None, "auto"):
                if state_fast and cfg.measure_overhead:
                    raise ValueError(
                        "cannot resume a 'fast' checkpoint with "
                        "measure_overhead=True (the fast loop never "
                        "measures overhead)"
                    )
                return state_fast
            if engine not in ("reference", "fast"):
                raise ValueError(
                    f"unknown engine {engine!r}; choose 'auto', "
                    "'reference', 'fast' or 'fleet'"
                )
            if (engine == "fast") != state_fast:
                raise ValueError(
                    f"cannot resume a {resume_from.engine!r} checkpoint "
                    f"with engine={engine!r}"
                )
            return state_fast
        if engine is None:
            if cfg.fast:
                warnings.warn(
                    "repro.runtime: SimulationConfig(fast=True) is "
                    "deprecated; call Simulation.run(engine='fast') (or "
                    "'auto'), or use repro.api.simulate(..., engine=...)",
                    DeprecationWarning,
                    stacklevel=2,
                )
            return cfg.fast and not cfg.measure_overhead
        if engine == "auto":
            return not cfg.measure_overhead
        if engine == "reference":
            return False
        if engine == "fast":
            if cfg.measure_overhead:
                raise ValueError(
                    "engine='fast' cannot honor measure_overhead=True "
                    "(Figure 9's metric needs the reference loop's "
                    "per-minute decision cadence); use engine='auto' or "
                    "'reference'"
                )
            return True
        raise ValueError(
            f"unknown engine {engine!r}; choose 'auto', 'reference', "
            "'fast' or 'fleet'"
        )

    def _run_reference(
        self,
        checkpoint: CheckpointConfig | None = None,
        resume_from: SimulationState | None = None,
    ) -> RunResult:
        """The reference minute-by-minute loop (walks every minute)."""
        trace, cfg = self.trace, self.config
        horizon = trace.horizon
        n_fn = trace.n_functions
        counts = trace.counts

        if resume_from is None:
            policy = self.policy
            events = EventLog() if cfg.record_events else None
            obs = ObsSession(cfg.observe) if cfg.observe is not None else None
            if obs is not None or events is not None:
                # Before bind, so on_bind can wire policy sub-components.
                policy.attach_observability(obs, events)
            policy.bind(trace, self.assignment, cfg.keep_alive_window)
            schedule = KeepAliveSchedule(
                n_fn, cfg.keep_alive_window, horizon_hint=horizon
            )
            pool = (
                ContainerPool(events)
                if (cfg.track_containers or cfg.record_events)
                else None
            )
            service_time = 0.0
            accuracy_sum = 0.0
            n_invocations = 0
            n_warm = 0
            n_cold = 0
            overhead = 0.0
            n_decisions = 0
            total_mb_minutes = 0.0
            mem_series = np.zeros(horizon) if cfg.record_series else None
            ideal_series = np.zeros(horizon) if cfg.record_series else None
            capacity_rng = rng_from_seed(cfg.capacity_seed)
            n_forced = 0
            injector = (
                FaultInjector(cfg.faults, horizon)
                if cfg.faults is not None and cfg.faults.injects_runtime
                else None
            )
            n_checkpoints = 0
            t_start = 0
            cur_bucket = 0
        else:
            if resume_from.engine != "reference":
                raise ValueError(
                    "reference loop cannot resume a "
                    f"{resume_from.engine!r} checkpoint"
                )
            # Single-payload restore: every mutable object comes back with
            # shared identities intact (policy plan cache <-> schedule,
            # events <-> pool). attach_observability/bind are NOT re-run —
            # the restored policy already carries its bound state.
            live = resume_from.restore()
            policy = live["policy"]
            events = live["events"]
            obs = live["obs"]
            schedule = live["schedule"]
            pool = live["pool"]
            service_time = live["service_time"]
            accuracy_sum = live["accuracy_sum"]
            n_invocations = live["n_invocations"]
            n_warm = live["n_warm"]
            n_cold = live["n_cold"]
            overhead = live["overhead"]
            n_decisions = live["n_decisions"]
            total_mb_minutes = live["total_mb_minutes"]
            mem_series = live["mem_series"]
            ideal_series = live["ideal_series"]
            capacity_rng = live["capacity_rng"]
            n_forced = live["n_forced"]
            injector = live["injector"]
            n_checkpoints = live["n_checkpoints"]
            t_start = resume_from.next_minute
            (cur_bucket,) = resume_from.cursor

        # Hot-loop telemetry handles (each None when its layer is off).
        # Re-derived from the (possibly restored) session: the metrics
        # registry hands back the same counter for the same name, so a
        # resumed run keeps accumulating where the snapshot left off.
        rec = obs if obs is not None and obs.decisions_enabled else None
        met = obs.metrics if obs is not None and obs.metrics_enabled else None
        spans = obs.spans if obs is not None and obs.spans_enabled else None
        if met is not None:
            _inv = met.counter("invocations_total", "invocations served")
            _cold = met.counter("cold_starts_total", "user-visible cold starts")
            inv_counters = [_inv.labels(function=f) for f in range(n_fn)]
            cold_counters = [_cold.labels(function=f) for f in range(n_fn)]
            warm_counter = met.counter(
                "warm_starts_total", "invocations served warm"
            ).labels()
            mem_hist = met.histogram(
                "keepalive_mb", "per-minute committed keep-alive memory"
            ).summary()
        ckpt_counter = (
            # repro: lint-ok[RPR002] fleet.py rejects checkpoint/resume at
            # entry, so this instrument is structurally absent there
            met.counter("checkpoints_total", "engine checkpoints captured")
            if met is not None and checkpoint is not None
            else None
        )
        if resume_from is None:
            last_arrival: list[int | None] = (
                [None] * n_fn if rec is not None else []
            )
        else:
            last_arrival = live["last_arrival"]

        highest_mb = np.array(
            [self.assignment[fid].highest.memory_mb for fid in range(n_fn)]
        )

        measure = cfg.measure_overhead
        clock = time.perf_counter
        capacity = cfg.memory_capacity_mb
        has_pressure = injector is not None and injector.pressure_minutes is not None
        valve_on = capacity is not None or has_pressure
        every = checkpoint.every_minutes if checkpoint is not None else 0

        # Pre-compute which functions invoke at each minute (hot-loop aid:
        # most minutes touch only a few of the 12 functions).
        invoking_by_minute: list[np.ndarray] = [
            np.flatnonzero(counts[:, t]) for t in range(horizon)
        ]

        for t in range(t_start, horizon):
            # Checkpoint hook: fires at the first minute of each cadence
            # bucket, *before* the minute executes (next_minute == t).
            # Counters are bumped before capture so the snapshot already
            # contains them — a clean run and a resumed run then agree on
            # every count, bit for bit.
            if checkpoint is not None and t // every > cur_bucket:
                cur_bucket = t // every
                n_checkpoints += 1
                if ckpt_counter is not None:
                    ckpt_counter.inc()
                checkpoint.emit(
                    SimulationState.snapshot(
                        "reference",
                        t,
                        (cur_bucket,),
                        {
                            "policy": policy,
                            "events": events,
                            "obs": obs,
                            "schedule": schedule,
                            "pool": pool,
                            "service_time": service_time,
                            "accuracy_sum": accuracy_sum,
                            "n_invocations": n_invocations,
                            "n_warm": n_warm,
                            "n_cold": n_cold,
                            "overhead": overhead,
                            "n_decisions": n_decisions,
                            "total_mb_minutes": total_mb_minutes,
                            "mem_series": mem_series,
                            "ideal_series": ideal_series,
                            "capacity_rng": capacity_rng,
                            "n_forced": n_forced,
                            "injector": injector,
                            "n_checkpoints": n_checkpoints,
                            "last_arrival": last_arrival,
                        },
                    )
                )

            # Pre-warm pass: realize the schedule's decisions for this
            # minute before invocations arrive.
            if pool is not None:
                if spans is None:
                    for fid in range(n_fn):
                        pool.reconcile(fid, schedule.alive_variant(fid, t), t)
                else:
                    s0 = clock()
                    for fid in range(n_fn):
                        pool.reconcile(fid, schedule.alive_variant(fid, t), t)
                    spans.add("pool-reconcile", clock() - s0)

            # 1 + 2: serve invocations, then plan.
            for fid in invoking_by_minute[t]:
                fid = int(fid)
                count = int(counts[fid, t])
                alive = schedule.alive_variant(fid, t)
                if alive is None:
                    if measure:
                        t0 = clock()
                        variant = policy.cold_variant(fid, t)
                        overhead += clock() - t0
                        n_decisions += 1
                    else:
                        variant = policy.cold_variant(fid, t)
                    if injector is None:
                        service_time += (
                            variant.cold_service_time_s
                            + (count - 1) * variant.warm_service_time_s
                        )
                    else:
                        service_time += (
                            variant.cold_service_time_s
                            + injector.cold_start_penalty(
                                t, fid, variant, rec, events
                            )
                            + (count - 1) * variant.warm_service_time_s
                        )
                    n_cold += 1
                    n_warm += count - 1
                    accuracy_sum += count * variant.accuracy
                    schedule.mark_alive(fid, t, variant)
                    if pool is not None:
                        pool.cold_start(fid, variant, t)
                        pool.record_served(fid, count)
                    if events is not None:
                        events.emit(t, EventKind.COLD_START, fid, variant.name, 1)
                        if count > 1:
                            events.emit(
                                t, EventKind.WARM_START, fid, variant.name, count - 1
                            )
                    if rec is not None:
                        rec.record_cold(
                            t, fid, variant.name, count, last_arrival[fid]
                        )
                    if met is not None:
                        cold_counters[fid].inc()
                        if count > 1:
                            warm_counter.inc(count - 1)
                else:
                    service_time += count * alive.warm_service_time_s
                    n_warm += count
                    accuracy_sum += count * alive.accuracy
                    if pool is not None:
                        pool.record_served(fid, count)
                    if events is not None:
                        events.emit(t, EventKind.WARM_START, fid, alive.name, count)
                    if met is not None:
                        warm_counter.inc(count)
                n_invocations += count
                if met is not None:
                    inv_counters[fid].inc(count)

                policy.observe_invocation(fid, t, count)
                if measure:
                    t0 = clock()
                    plan = policy.plan(fid, t)
                    overhead += clock() - t0
                    n_decisions += 1
                else:
                    plan = policy.plan(fid, t)
                schedule.set_plan(fid, t, plan)
                if rec is not None:
                    rec.record_plan(t, fid, plan)
                    last_arrival[fid] = t

            # 3: cross-function review (peak flattening).
            if measure:
                t0 = clock()
                policy.review_minute(t, schedule)
                overhead += clock() - t0
                n_decisions += 1
            else:
                policy.review_minute(t, schedule)

            # 3b: provider pressure valve — random downgrades when the
            # minute's keep-alive memory exceeds the platform capacity
            # (the standing cap, or a fault plan's transient spike cap).
            if valve_on:
                cap_t = (
                    capacity
                    if injector is None
                    else injector.effective_capacity(t, capacity)
                )
                if cap_t is not None:
                    n_forced += apply_capacity_valve(
                        schedule, t, cap_t, capacity_rng, self.assignment,
                        events, rec,
                    )

            # 4: commit the minute — settle containers on the post-review
            # variants, then charge warm minutes.
            if pool is not None:
                if spans is None:
                    for fid in range(n_fn):
                        pool.reconcile(fid, schedule.alive_variant(fid, t), t)
                else:
                    s0 = clock()
                    for fid in range(n_fn):
                        pool.reconcile(fid, schedule.alive_variant(fid, t), t)
                    spans.add("pool-reconcile", clock() - s0)
                pool.tick_all()

            mem_t = schedule.memory_at(t)
            total_mb_minutes += mem_t
            if events is not None:
                events.emit(t, EventKind.MEMORY_COMMIT, value=mem_t)
            if met is not None:
                mem_hist.observe(mem_t)
            if mem_series is not None:
                mem_series[t] = mem_t
            if ideal_series is not None and len(invoking_by_minute[t]):
                ideal_series[t] = highest_mb[invoking_by_minute[t]].sum()

            schedule.advance(t + 1)

        mean_accuracy = accuracy_sum / n_invocations if n_invocations else 0.0
        if met is not None:
            met.counter(
                "forced_downgrades_total", "capacity-valve downgrades"
            ).inc(n_forced)
            met.gauge("horizon_minutes").set(horizon)
            met.gauge("n_functions").set(n_fn)
            met.gauge("keepalive_mb_minutes").set(total_mb_minutes)
        resilience = collect_resilience(policy, injector, horizon)
        return RunResult(
            policy_name=policy.name,
            n_invocations=n_invocations,
            n_warm=n_warm,
            n_cold=n_cold,
            total_service_time_s=service_time,
            keepalive_cost_usd=cfg.cost_model.minute_cost(total_mb_minutes),
            mean_accuracy=mean_accuracy,
            policy_overhead_s=overhead,
            n_policy_decisions=n_decisions,
            memory_series_mb=mem_series,
            ideal_memory_series_mb=ideal_series,
            pool_stats=pool.stats if pool is not None else None,
            events=events,
            n_forced_downgrades=n_forced,
            n_checkpoints=n_checkpoints,
            obs=obs,
            **resilience,
        )
