"""The simulation engine.

Drives one keep-alive policy over one trace with one model-to-function
assignment, at minute resolution, and produces a
:class:`~repro.runtime.metrics.RunResult`.

Per-minute order of operations (§5 of DESIGN.md):

1. serve each function's invocations — warm if the schedule has a variant
   alive at this minute (or a cold start earlier in the same minute left a
   container up), cold otherwise with the policy's chosen variant;
2. feed the invocation to the policy and install its new keep-alive plan
   for the next K minutes;
3. run the policy's cross-function review (PULSE flattens peaks here by
   rewriting schedule entries for the current and future minutes);
4. reconcile the container pool, commit the minute's keep-alive memory to
   the ledger and accumulate cost.

The *ideal* memory series (Figure 6b's reference) is accounted alongside:
a container of the assigned family's highest variant alive exactly during
invocation minutes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.models.variants import ModelFamily
from repro.obs.session import ObservabilityConfig, ObsSession
from repro.runtime.checkpoint import CheckpointConfig, SimulationState
from repro.runtime.container import ContainerPool
from repro.runtime.costmodel import CostModel
from repro.runtime.events import EventKind, EventLog
from repro.runtime.metrics import RunResult
from repro.runtime.policy import KeepAlivePolicy
from repro.runtime.schedule import KeepAliveSchedule
from repro.traces.schema import Trace
from repro.utils.rng import rng_from_seed
from repro.utils.specs import parse_engine
from repro.utils.validation import check_positive_int

__all__ = [
    "ReferenceStepper",
    "Simulation",
    "SimulationConfig",
    "apply_capacity_valve",
    "collect_resilience",
    "emit_downgrade",
]


def emit_downgrade(
    minute: int,
    victim: int,
    from_name: str,
    to_name: str | None,
    events: EventLog | None,
    obs: ObsSession | None,
    *,
    forced: bool = False,
    candidates: list[dict] | None = None,
) -> None:
    """One downgrade's telemetry — the DOWNGRADE event plus the decision
    trace record — in one place, shared by every emit site.

    The capacity valve below, the fleet reducer's Algorithm 2 and its
    valve all funnel through this helper, so the event stream shape
    (``value=1.0`` marks a forced valve victim, ``0.0`` an Algorithm-2
    one — matching ``GlobalOptimizer.review``'s emissions) and the
    record schema cannot drift between engines. Pass ``obs=None`` to
    skip the trace record (e.g. fleet victims outside the trace sample).
    """
    if events is not None:
        # repro: lint-ok[RPR002] DOWNGRADE is emitted only here and in
        # GlobalOptimizer.review; every engine funnels through one of the two
        events.emit(minute, EventKind.DOWNGRADE, victim, to_name,
                    1.0 if forced else 0.0)
    if obs is not None:
        # repro: lint-ok[RPR002] record_downgrade fires only here and in
        # GlobalOptimizer.review; every engine funnels through one of the two
        obs.record_downgrade(
            minute, victim, from_name, to_name,
            candidates=candidates, forced=forced,
        )


def collect_resilience(
    policy: KeepAlivePolicy, injector: FaultInjector | None, horizon: int
) -> dict[str, int]:
    """The run's resilience counters, as ``RunResult`` kwargs.

    Shared by both engine loops. Spawn counters come from the fault
    injector; policy-fault counters come from the policy itself when it
    exposes ``resilience_stats`` (duck-typed — only
    :class:`~repro.faults.isolation.ResilientPolicy` does, so plain
    policies pay a single ``getattr``).
    """
    out = {
        "n_spawn_failures": 0,
        "n_retries": 0,
        "n_policy_faults": 0,
        "n_degraded_minutes": 0,
    }
    if injector is not None:
        out["n_spawn_failures"] = injector.n_spawn_failures
        out["n_retries"] = injector.n_retries
    stats = getattr(policy, "resilience_stats", None)
    if stats is not None:
        out.update(stats(horizon))
    return out


def apply_capacity_valve(
    schedule: KeepAliveSchedule,
    minute: int,
    capacity_mb: float,
    rng,
    assignment: dict[int, ModelFamily],
    events: EventLog | None = None,
    obs: ObsSession | None = None,
) -> int:
    """§III-A's provider pressure valve: randomly downgrade kept-alive
    models until the minute's keep-alive memory fits ``capacity_mb``.

    Shared by the reference and fast engine loops so both consume the
    capacity RNG identically. The candidate array is built once and
    maintained incrementally (victims are removed only when their
    keep-alive is dropped entirely), instead of rebuilding it from the
    alive map on every iteration; it stays fid-sorted throughout, which
    keeps victim selection deterministic under ``capacity_seed``.

    ``events``/``obs`` only *record* each forced downgrade (DOWNGRADE
    events with ``value=1.0``; ``forced=True`` trace records) — victim
    selection and the RNG stream are unaffected.
    """
    if schedule.memory_at(minute) <= capacity_mb:
        return 0
    alive_fids = np.fromiter(schedule.alive_at(minute), dtype=np.int64)
    n_forced = 0
    record = events is not None or obs is not None
    while schedule.memory_at(minute) > capacity_mb and alive_fids.size:
        victim = int(rng.choice(alive_fids))
        if record:
            frm = schedule.alive_variant(victim, minute)
        schedule.downgrade(victim, minute, assignment[victim], allow_drop=True)
        n_forced += 1
        new = schedule.alive_variant(victim, minute)
        if record:
            emit_downgrade(
                minute, victim, frm.name,
                new.name if new is not None else None,
                events, obs, forced=True,
            )
        if new is None:
            alive_fids = alive_fids[alive_fids != victim]
    return n_forced


@dataclass(frozen=True)
class SimulationConfig:
    """Engine parameters.

    ``record_series`` keeps the per-minute memory series (needed for the
    memory/cost-error figures; disable for large sweeps).
    ``track_containers`` maintains the container pool (lifecycle statistics;
    small overhead).
    ``measure_overhead`` wall-clocks every policy decision (Figure 9).
    ``record_events`` collects a structured event log (cold/warm starts,
    pre-warms, evictions, memory commits) on ``RunResult.events``;
    implies container tracking for the pre-warm/eviction events.

    ``memory_capacity_mb`` models the provider's finite memory (§III-A:
    memory "is shared between actual invocations and keep-alive"). When a
    minute's keep-alive memory exceeds capacity *after* the policy's
    review, the platform force-downgrades **randomly chosen** kept-alive
    models until it fits — the paper's "random functions/models are
    downgraded" pressure valve that PULSE's utility-guided flattening is
    designed to preempt. ``None`` (default) disables the cap.

    ``fast`` is the **removed** pre-``engine`` loop selector. Its
    deprecation cycle (warn, then raise) is complete: constructing
    ``SimulationConfig(fast=True)`` now raises :class:`ValueError`
    pointing at ``Simulation.run(engine=...)`` /
    :func:`repro.api.simulate`. The field survives one more release so
    the error is a clear message rather than an opaque
    ``TypeError: unexpected keyword argument``.

    ``faults`` attaches a :class:`~repro.faults.plan.FaultPlan`: seeded
    platform faults (spawn failures/retries, cold-start slowdowns,
    memory-pressure spikes, trace perturbations) injected identically on
    both engines. ``None`` (default) or an all-zero plan injects nothing
    and leaves every metric bit-identical to a fault-free build.
    """

    keep_alive_window: int = 10
    cost_model: CostModel = field(default_factory=CostModel)
    record_series: bool = True
    track_containers: bool = True
    measure_overhead: bool = False
    record_events: bool = False
    memory_capacity_mb: float | None = None
    capacity_seed: int = 0
    fast: bool = False
    faults: FaultPlan | None = None
    #: Observability (:mod:`repro.obs`): ``None``/``False`` disables the
    #: layer entirely (no recorder, no allocations); ``True`` enables all
    #: of it; an :class:`~repro.obs.session.ObservabilityConfig` picks
    #: layers. Enabling it never changes headline metrics (the golden
    #: test in ``tests/test_obs_equivalence.py`` pins bit-identity).
    observe: ObservabilityConfig | bool | None = None

    def __post_init__(self) -> None:
        check_positive_int("keep_alive_window", self.keep_alive_window)
        if self.fast:
            raise ValueError(
                "SimulationConfig(fast=True) was removed at the end of its "
                "deprecation cycle; select the loop per run instead: "
                "Simulation.run(engine='fast') (or 'auto'), or "
                "repro.api.simulate(..., engine='fast')"
            )
        if self.memory_capacity_mb is not None and self.memory_capacity_mb <= 0:
            raise ValueError(
                f"memory_capacity_mb must be positive, got {self.memory_capacity_mb}"
            )
        if self.observe is True:
            object.__setattr__(self, "observe", ObservabilityConfig())
        elif self.observe is False:
            object.__setattr__(self, "observe", None)
        elif self.observe is not None and not isinstance(
            self.observe, ObservabilityConfig
        ):
            raise TypeError(
                "observe must be an ObservabilityConfig, a bool or None, "
                f"got {self.observe!r}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan or None, got {self.faults!r}"
            )


class Simulation:
    """One policy, one trace, one assignment — one run."""

    def __init__(
        self,
        trace: Trace,
        assignment: dict[int, ModelFamily],
        policy: KeepAlivePolicy,
        config: SimulationConfig | None = None,
    ):
        self.trace = trace
        self.assignment = dict(assignment)
        self.policy = policy
        self.config = config or SimulationConfig()
        self._validate()
        faults = self.config.faults
        if faults is not None and faults.perturbs_trace:
            # Perturb once, up front: both engines (and the oracle
            # baselines' bind()) must see the same noisy trace.
            self.trace = faults.perturb_trace(self.trace)

    def _validate(self) -> None:
        if set(self.assignment) != set(range(self.trace.n_functions)):
            raise ValueError(
                "assignment must map every function id 0..n-1 to a family; "
                f"got keys {sorted(self.assignment)}"
            )

    def run(
        self,
        engine: str | None = None,
        *,
        shards: int = 1,
        checkpoint: CheckpointConfig | None = None,
        resume_from: SimulationState | str | Path | None = None,
    ) -> RunResult:
        """Execute the run and return its metrics.

        ``engine`` selects the loop:

        - ``"auto"`` — the event-driven fast loop unless the config needs
          the per-minute decision cadence (``measure_overhead``);
        - ``"reference"`` — the minute-by-minute reference loop;
        - ``"fast"`` — the fast loop, erroring if the config demands the
          reference cadence;
        - ``"fleet"`` — the columnar fleet engine
          (:mod:`repro.runtime.fleet`): per-function state in numpy
          arrays, partitioned into ``shards`` contiguous fid ranges with
          a global reduce for the cross-function stages. Built for
          10⁴–10⁵-function fleets; supports PULSE and the fixed
          baselines, and errors on configs needing per-decision hooks
          (``measure_overhead``, observability, checkpoint/resume);
        - ``None`` (default) — the historical default, equivalent to
          ``"reference"`` (the ``config.fast`` escape hatch it used to
          honor is gone; see :class:`SimulationConfig`).

        Spelling is validated by :func:`repro.utils.specs.parse_engine`
        (the one engine vocabulary shared with the CLI, the API facade
        and the durable sweep layer); selectors are case-insensitive.

        ``shards`` is only meaningful with ``engine="fleet"`` (the shard
        count never changes results — ``shards=1`` ≡ ``shards=k``).

        All loops produce identical metrics; ``wall_clock_s`` records
        the elapsed engine time either way.

        ``checkpoint`` enables periodic :class:`SimulationState`
        snapshots (see :mod:`repro.runtime.checkpoint`); ``resume_from``
        — a state or a path to one — continues an interrupted run from
        its last snapshot, bit-identically to never having stopped. A
        resume must use the same trace/assignment/policy/config that
        produced the checkpoint (the durable sweep layer verifies this
        via content hashes); the engine is taken from the checkpoint
        unless explicitly overridden, and an explicit mismatch errors.
        """
        if checkpoint is not None and not isinstance(checkpoint, CheckpointConfig):
            raise TypeError(
                f"checkpoint must be a CheckpointConfig or None, got {checkpoint!r}"
            )
        if isinstance(resume_from, (str, Path)):
            resume_from = SimulationState.load(resume_from)
        if engine is not None:
            engine = parse_engine(engine)
        if shards != 1 and engine != "fleet":
            raise ValueError(
                f"shards={shards} is only meaningful with engine='fleet'"
            )
        t0 = time.perf_counter()
        if engine == "fleet":
            from repro.runtime.fleet import run_fleet

            result = run_fleet(
                self, shards=shards, checkpoint=checkpoint,
                resume_from=resume_from,
            )
        elif self._resolve_engine(engine, resume_from):
            from repro.runtime.fastpath import run_fast

            result = run_fast(self, checkpoint=checkpoint, resume_from=resume_from)
        else:
            result = self._run_reference(
                checkpoint=checkpoint, resume_from=resume_from
            )
        wall = time.perf_counter() - t0
        if result.obs is not None and result.obs.spans_enabled:
            result.obs.spans.add("engine-total", wall)
        return replace(result, wall_clock_s=wall)

    def _resolve_engine(
        self, engine: str | None, resume_from: SimulationState | None = None
    ) -> bool:
        """Map the (already canonical) ``engine`` to "use the fast loop?"."""
        cfg = self.config
        if resume_from is not None:
            # A checkpoint binds the run to the loop that captured it:
            # the two engines' cursors are not interchangeable.
            state_fast = resume_from.engine == "fast"
            if engine in (None, "auto"):
                if state_fast and cfg.measure_overhead:
                    raise ValueError(
                        "cannot resume a 'fast' checkpoint with "
                        "measure_overhead=True (the fast loop never "
                        "measures overhead)"
                    )
                return state_fast
            if (engine == "fast") != state_fast:
                raise ValueError(
                    f"cannot resume a {resume_from.engine!r} checkpoint "
                    f"with engine={engine!r}"
                )
            return state_fast
        if engine == "auto":
            return not cfg.measure_overhead
        if engine == "fast":
            if cfg.measure_overhead:
                raise ValueError(
                    "engine='fast' cannot honor measure_overhead=True "
                    "(Figure 9's metric needs the reference loop's "
                    "per-minute decision cadence); use engine='auto' or "
                    "'reference'"
                )
            return True
        # None (the historical default) and "reference" both take the
        # minute-by-minute loop.
        return False

    def _run_reference(
        self,
        checkpoint: CheckpointConfig | None = None,
        resume_from: SimulationState | None = None,
    ) -> RunResult:
        """The reference minute-by-minute loop (walks every minute).

        A thin driver over :class:`ReferenceStepper`: the stepper owns
        the per-minute semantics, this loop only feeds it minutes — the
        same stepping path :class:`repro.serve.session.ControlSession`
        drives one ``advance()`` at a time.
        """
        if resume_from is not None:
            if resume_from.engine != "reference":
                raise ValueError(
                    "reference loop cannot resume a "
                    f"{resume_from.engine!r} checkpoint"
                )
            stepper = ReferenceStepper(
                self,
                checkpoint,
                live=resume_from.restore(),
                next_minute=resume_from.next_minute,
                cursor=resume_from.cursor,
            )
        else:
            stepper = ReferenceStepper(self, checkpoint)
        counts = self.trace.counts
        for t in range(stepper.next_minute, self.trace.horizon):
            fids = np.flatnonzero(counts[:, t])
            stepper.step(t, fids, counts[fids, t])
        return stepper.finalize()


class ReferenceStepper:
    """The reference engine, one minute at a time.

    Owns all run state of the minute-by-minute loop and exposes it
    incrementally: :meth:`step` executes exactly one minute (§5 order of
    operations — pre-warm, serve+plan, review, valve, commit),
    :meth:`live_state` captures the loop's live objects in the exact
    checkpoint-payload shape :meth:`SimulationState.snapshot` pickles,
    and :meth:`finalize` produces the :class:`RunResult`. The batch
    driver (:meth:`Simulation._run_reference`) and incremental sessions
    (:mod:`repro.serve.session`) share this single implementation, so a
    stepped replay is bit-identical to a batch run by construction.

    Constructed either fresh (``live=None``: binds the policy and
    allocates run state) or from a restored checkpoint payload
    (``live=`` the dict from :meth:`SimulationState.restore`, plus the
    checkpoint's ``next_minute``/``cursor``). Telemetry handles are
    always re-derived from the (possibly restored) obs session: the
    metrics registry hands back the same counter for the same name, so
    a resumed run keeps accumulating where the snapshot left off.
    """

    engine = "reference"

    def __init__(
        self,
        sim: Simulation,
        checkpoint: CheckpointConfig | None = None,
        *,
        live: dict | None = None,
        next_minute: int = 0,
        cursor: tuple | None = None,
    ):
        trace, cfg = sim.trace, sim.config
        self.sim = sim
        self.cfg = cfg
        self.assignment = sim.assignment
        self.horizon = trace.horizon
        self.n_fn = n_fn = trace.n_functions
        self.checkpoint = checkpoint

        if live is None:
            policy = sim.policy
            self.events = EventLog() if cfg.record_events else None
            self.obs = (
                ObsSession(cfg.observe) if cfg.observe is not None else None
            )
            if self.obs is not None or self.events is not None:
                # Before bind, so on_bind can wire policy sub-components.
                policy.attach_observability(self.obs, self.events)
            policy.bind(trace, sim.assignment, cfg.keep_alive_window)
            self.policy = policy
            self.schedule = KeepAliveSchedule(
                n_fn, cfg.keep_alive_window, horizon_hint=self.horizon
            )
            self.pool = (
                ContainerPool(self.events)
                if (cfg.track_containers or cfg.record_events)
                else None
            )
            self.service_time = 0.0
            self.accuracy_sum = 0.0
            self.n_invocations = 0
            self.n_warm = 0
            self.n_cold = 0
            self.overhead = 0.0
            self.n_decisions = 0
            self.total_mb_minutes = 0.0
            self.mem_series = (
                np.zeros(self.horizon) if cfg.record_series else None
            )
            self.ideal_series = (
                np.zeros(self.horizon) if cfg.record_series else None
            )
            self.capacity_rng = rng_from_seed(cfg.capacity_seed)
            self.n_forced = 0
            self.injector = (
                FaultInjector(cfg.faults, self.horizon)
                if cfg.faults is not None and cfg.faults.injects_runtime
                else None
            )
            self.n_checkpoints = 0
            self.next_minute = 0
            self.cur_bucket = 0
        else:
            # Single-payload restore: every mutable object comes back with
            # shared identities intact (policy plan cache <-> schedule,
            # events <-> pool). attach_observability/bind are NOT re-run —
            # the restored policy already carries its bound state.
            self.policy = live["policy"]
            self.events = live["events"]
            self.obs = live["obs"]
            self.schedule = live["schedule"]
            self.pool = live["pool"]
            self.service_time = live["service_time"]
            self.accuracy_sum = live["accuracy_sum"]
            self.n_invocations = live["n_invocations"]
            self.n_warm = live["n_warm"]
            self.n_cold = live["n_cold"]
            self.overhead = live["overhead"]
            self.n_decisions = live["n_decisions"]
            self.total_mb_minutes = live["total_mb_minutes"]
            self.mem_series = live["mem_series"]
            self.ideal_series = live["ideal_series"]
            self.capacity_rng = live["capacity_rng"]
            self.n_forced = live["n_forced"]
            self.injector = live["injector"]
            self.n_checkpoints = live["n_checkpoints"]
            self.next_minute = next_minute
            (self.cur_bucket,) = cursor

        # Hot-loop telemetry handles (each None when its layer is off).
        obs = self.obs
        self.rec = rec = (
            obs if obs is not None and obs.decisions_enabled else None
        )
        self.met = met = (
            obs.metrics if obs is not None and obs.metrics_enabled else None
        )
        self.spans = (
            obs.spans if obs is not None and obs.spans_enabled else None
        )
        if met is not None:
            _inv = met.counter("invocations_total", "invocations served")
            _cold = met.counter("cold_starts_total", "user-visible cold starts")
            self.inv_counters = [_inv.labels(function=f) for f in range(n_fn)]
            self.cold_counters = [_cold.labels(function=f) for f in range(n_fn)]
            self.warm_counter = met.counter(
                "warm_starts_total", "invocations served warm"
            ).labels()
            self.mem_hist = met.histogram(
                "keepalive_mb", "per-minute committed keep-alive memory"
            ).summary()
        else:
            self.inv_counters = self.cold_counters = None
            self.warm_counter = self.mem_hist = None
        self.ckpt_counter = (
            # repro: lint-ok[RPR002] fleet.py rejects checkpoint/resume at
            # entry, so this instrument is structurally absent there
            met.counter("checkpoints_total", "engine checkpoints captured")
            if met is not None and checkpoint is not None
            else None
        )
        if live is None:
            self.last_arrival: list[int | None] = (
                [None] * n_fn if rec is not None else []
            )
        else:
            self.last_arrival = live["last_arrival"]

        self.highest_mb = np.array(
            [sim.assignment[fid].highest.memory_mb for fid in range(n_fn)]
        )
        self.measure = cfg.measure_overhead
        self.capacity = cfg.memory_capacity_mb
        has_pressure = (
            self.injector is not None
            and self.injector.pressure_minutes is not None
        )
        self.valve_on = self.capacity is not None or has_pressure
        self.every = checkpoint.every_minutes if checkpoint is not None else 0
        self.last_memory_mb = 0.0
        self._result: RunResult | None = None

    def live_state(self) -> dict:
        """The loop's live objects, in the checkpoint-payload shape.

        One dict → one pickle: shared identities (policy plan cache <->
        schedule, events <-> pool) survive the round trip intact.
        """
        return {
            "policy": self.policy,
            "events": self.events,
            "obs": self.obs,
            "schedule": self.schedule,
            "pool": self.pool,
            "service_time": self.service_time,
            "accuracy_sum": self.accuracy_sum,
            "n_invocations": self.n_invocations,
            "n_warm": self.n_warm,
            "n_cold": self.n_cold,
            "overhead": self.overhead,
            "n_decisions": self.n_decisions,
            "total_mb_minutes": self.total_mb_minutes,
            "mem_series": self.mem_series,
            "ideal_series": self.ideal_series,
            "capacity_rng": self.capacity_rng,
            "n_forced": self.n_forced,
            "injector": self.injector,
            "n_checkpoints": self.n_checkpoints,
            "last_arrival": self.last_arrival,
        }

    def step(self, t: int, fids: np.ndarray, fid_counts: np.ndarray) -> None:
        """Execute minute ``t``.

        ``fids`` are the invoking function ids (ascending) with their
        aligned invocation ``fid_counts``; pass empty arrays for an idle
        minute. Minutes must be fed strictly in order (``t`` ==
        ``next_minute``); the driver and the session layer both
        guarantee this.
        """
        checkpoint = self.checkpoint
        if checkpoint is not None and t // self.every > self.cur_bucket:
            # Checkpoint hook: fires at the first minute of each cadence
            # bucket, *before* the minute executes (next_minute == t).
            # Counters are bumped before capture so the snapshot already
            # contains them — a clean run and a resumed run then agree
            # on every count, bit for bit.
            self.cur_bucket = t // self.every
            self.n_checkpoints += 1
            if self.ckpt_counter is not None:
                self.ckpt_counter.inc()
            checkpoint.emit(
                SimulationState.snapshot(
                    "reference", t, (self.cur_bucket,), self.live_state()
                )
            )

        # Localize the hot names (the inner loop reads them many times);
        # mutated scalars are written back at the end of the minute.
        policy = self.policy
        schedule = self.schedule
        pool = self.pool
        events = self.events
        rec, met, spans = self.rec, self.met, self.spans
        inv_counters, cold_counters = self.inv_counters, self.cold_counters
        warm_counter = self.warm_counter
        injector = self.injector
        last_arrival = self.last_arrival
        measure = self.measure
        clock = time.perf_counter
        n_fn = self.n_fn
        service_time = self.service_time
        accuracy_sum = self.accuracy_sum
        n_invocations = self.n_invocations
        n_warm = self.n_warm
        n_cold = self.n_cold
        overhead = self.overhead
        n_decisions = self.n_decisions

        # Pre-warm pass: realize the schedule's decisions for this
        # minute before invocations arrive.
        if pool is not None:
            if spans is None:
                for fid in range(n_fn):
                    pool.reconcile(fid, schedule.alive_variant(fid, t), t)
            else:
                s0 = clock()
                for fid in range(n_fn):
                    pool.reconcile(fid, schedule.alive_variant(fid, t), t)
                spans.add("pool-reconcile", clock() - s0)

        # 1 + 2: serve invocations, then plan.
        for fid, count in zip(fids.tolist(), fid_counts.tolist()):
            count = int(count)
            alive = schedule.alive_variant(fid, t)
            if alive is None:
                if measure:
                    t0 = clock()
                    variant = policy.cold_variant(fid, t)
                    overhead += clock() - t0
                    n_decisions += 1
                else:
                    variant = policy.cold_variant(fid, t)
                if injector is None:
                    service_time += (
                        variant.cold_service_time_s
                        + (count - 1) * variant.warm_service_time_s
                    )
                else:
                    service_time += (
                        variant.cold_service_time_s
                        + injector.cold_start_penalty(
                            t, fid, variant, rec, events
                        )
                        + (count - 1) * variant.warm_service_time_s
                    )
                n_cold += 1
                n_warm += count - 1
                accuracy_sum += count * variant.accuracy
                schedule.mark_alive(fid, t, variant)
                if pool is not None:
                    pool.cold_start(fid, variant, t)
                    pool.record_served(fid, count)
                if events is not None:
                    events.emit(t, EventKind.COLD_START, fid, variant.name, 1)
                    if count > 1:
                        events.emit(
                            t, EventKind.WARM_START, fid, variant.name, count - 1
                        )
                if rec is not None:
                    rec.record_cold(
                        t, fid, variant.name, count, last_arrival[fid]
                    )
                if met is not None:
                    cold_counters[fid].inc()
                    if count > 1:
                        warm_counter.inc(count - 1)
            else:
                service_time += count * alive.warm_service_time_s
                n_warm += count
                accuracy_sum += count * alive.accuracy
                if pool is not None:
                    pool.record_served(fid, count)
                if events is not None:
                    events.emit(t, EventKind.WARM_START, fid, alive.name, count)
                if met is not None:
                    warm_counter.inc(count)
            n_invocations += count
            if met is not None:
                inv_counters[fid].inc(count)

            policy.observe_invocation(fid, t, count)
            if measure:
                t0 = clock()
                plan = policy.plan(fid, t)
                overhead += clock() - t0
                n_decisions += 1
            else:
                plan = policy.plan(fid, t)
            schedule.set_plan(fid, t, plan)
            if rec is not None:
                rec.record_plan(t, fid, plan)
                last_arrival[fid] = t

        # 3: cross-function review (peak flattening).
        if measure:
            t0 = clock()
            policy.review_minute(t, schedule)
            overhead += clock() - t0
            n_decisions += 1
        else:
            policy.review_minute(t, schedule)

        # 3b: provider pressure valve — random downgrades when the
        # minute's keep-alive memory exceeds the platform capacity
        # (the standing cap, or a fault plan's transient spike cap).
        if self.valve_on:
            cap_t = (
                self.capacity
                if injector is None
                else injector.effective_capacity(t, self.capacity)
            )
            if cap_t is not None:
                self.n_forced += apply_capacity_valve(
                    schedule, t, cap_t, self.capacity_rng, self.assignment,
                    events, rec,
                )

        # 4: commit the minute — settle containers on the post-review
        # variants, then charge warm minutes.
        if pool is not None:
            if spans is None:
                for fid in range(n_fn):
                    pool.reconcile(fid, schedule.alive_variant(fid, t), t)
            else:
                s0 = clock()
                for fid in range(n_fn):
                    pool.reconcile(fid, schedule.alive_variant(fid, t), t)
                spans.add("pool-reconcile", clock() - s0)
            pool.tick_all()

        mem_t = schedule.memory_at(t)
        self.total_mb_minutes += mem_t
        if events is not None:
            events.emit(t, EventKind.MEMORY_COMMIT, value=mem_t)
        if met is not None:
            self.mem_hist.observe(mem_t)
        if self.mem_series is not None:
            self.mem_series[t] = mem_t
        if self.ideal_series is not None and fids.size:
            self.ideal_series[t] = self.highest_mb[fids].sum()

        schedule.advance(t + 1)

        self.service_time = service_time
        self.accuracy_sum = accuracy_sum
        self.n_invocations = n_invocations
        self.n_warm = n_warm
        self.n_cold = n_cold
        self.overhead = overhead
        self.n_decisions = n_decisions
        self.last_memory_mb = mem_t
        self.next_minute = t + 1

    def finalize(self) -> RunResult:
        """Close the run and build its :class:`RunResult` (idempotent —
        the metric gauges below mutate, so the result is cached)."""
        if self._result is not None:
            return self._result
        cfg = self.cfg
        n_invocations = self.n_invocations
        mean_accuracy = (
            self.accuracy_sum / n_invocations if n_invocations else 0.0
        )
        met = self.met
        if met is not None:
            met.counter(
                "forced_downgrades_total", "capacity-valve downgrades"
            ).inc(self.n_forced)
            met.gauge("horizon_minutes").set(self.horizon)
            met.gauge("n_functions").set(self.n_fn)
            met.gauge("keepalive_mb_minutes").set(self.total_mb_minutes)
        resilience = collect_resilience(
            self.policy, self.injector, self.horizon
        )
        self._result = RunResult(
            policy_name=self.policy.name,
            n_invocations=n_invocations,
            n_warm=self.n_warm,
            n_cold=self.n_cold,
            total_service_time_s=self.service_time,
            keepalive_cost_usd=cfg.cost_model.minute_cost(
                self.total_mb_minutes
            ),
            mean_accuracy=mean_accuracy,
            policy_overhead_s=self.overhead,
            n_policy_decisions=self.n_decisions,
            memory_series_mb=self.mem_series,
            ideal_memory_series_mb=self.ideal_series,
            pool_stats=self.pool.stats if self.pool is not None else None,
            events=self.events,
            n_forced_downgrades=self.n_forced,
            n_checkpoints=self.n_checkpoints,
            obs=self.obs,
            **resilience,
        )
        return self._result
