"""Incremental control plane: step a run one minute at a time.

:mod:`repro.serve.session` owns the :class:`ControlSession` API —
``open_session(...)`` returns a session whose ``advance()`` executes one
simulated minute on any of the three engines and reports that minute's
decisions; ``snapshot()``/``restore()`` make sessions survive process
restarts. :mod:`repro.serve.app` wraps sessions in a multi-tenant async
HTTP service (FastAPI when installed, a stdlib fallback otherwise).
:mod:`repro.serve.journal` adds crash durability: a per-session
write-ahead journal with snapshot compaction, and a supervisor that
rebuilds every tenant bit-identically after a SIGKILL.
"""

from repro.serve.journal import (
    JournalError,
    JournalSupervisor,
    SessionJournal,
)
from repro.serve.session import (
    AdvanceResult,
    ControlSession,
    TraceMeta,
    open_session,
)

__all__ = [
    "AdvanceResult",
    "ControlSession",
    "JournalError",
    "JournalSupervisor",
    "SessionJournal",
    "TraceMeta",
    "open_session",
]
