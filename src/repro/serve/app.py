"""Async serving layer: multi-tenant HTTP control plane over sessions.

:class:`SessionManager` is the framework-agnostic core — a registry of
named :class:`~repro.serve.session.ControlSession` instances, each with
its own lock (advances serialize per session, tenants run concurrently)
and an optional auto-tick thread that drives ``advance()`` on a wall-
clock cadence. The HTTP layer is a thin JSON translation over it:

==========  =====================================  ========================
``GET``     ``/v1/healthz``                        liveness probe (no auth)
``GET``     ``/v1/readyz``                         readiness (503 draining)
``GET``     ``/v1/sessions``                       list open sessions
``POST``    ``/v1/sessions``                       open (JSON spec body)
``POST``    ``/v1/sessions/restore``               reopen from a snapshot
``GET``     ``/v1/sessions/{id}``                  session info
``DELETE``  ``/v1/sessions/{id}``                  close (stops its ticker)
``POST``    ``/v1/sessions/{id}/advance``          execute one minute
``POST``    ``/v1/sessions/{id}/tick``             start/stop auto-tick
``GET``     ``/v1/sessions/{id}/metrics``          Prometheus exposition
``GET``     ``/v1/sessions/{id}/snapshot``         JSON snapshot envelope
``GET``     ``/v1/sessions/{id}/decisions?fid=``   decision-trace records
``GET``     ``/v1/sessions/{id}/result``           final RunResult summary
==========  =====================================  ========================

Two transports share the manager. The **stdlib** server
(:func:`make_server`, ``http.server.ThreadingHTTPServer``) always works
and is what the test suite and ``repro serve`` exercise. When
**FastAPI** is installed (an optional extra — never required),
:func:`create_fastapi_app` builds the same routes as an ASGI app for
uvicorn/hypercorn deployment.

Production hardening lives here too:

- **Snapshots cross the wire as versioned JSON envelopes**
  (:meth:`~repro.runtime.checkpoint.SimulationState.to_wire_json` —
  sha256-checked, schema-pinned by RPR010), not raw pickles, so the
  bytes are inspectable and integrity-checked in transit. The payload
  still deserializes engine state, so non-loopback binds additionally
  require a **bearer token** (:func:`serve` refuses to start without
  one; requests without it get 401).
- **Backpressure**: a full session table or a drained server answers
  503, a session already at its in-flight cap answers 429, and a
  per-request deadline on the session lock answers 503 — all with
  ``Retry-After`` (:class:`ServeLimits` holds the knobs).
- **Crash durability**: give the manager a
  :class:`~repro.serve.journal.JournalSupervisor` and every advance is
  write-ahead journaled with periodic snapshot compaction;
  :meth:`SessionManager.recover` rebuilds all tenants bit-identically
  after a SIGKILL. SIGTERM triggers a graceful drain: tickers stop,
  in-flight advances finish, every session is snapshotted and fsynced,
  and the process exits 0.
"""

from __future__ import annotations

import hmac
import json
import re
import signal
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable

from repro.obs.export import render_prometheus
from repro.runtime.checkpoint import SimulationState
from repro.serve.journal import JournalSupervisor, SessionJournal
from repro.serve.session import ControlSession, TraceMeta, open_session

__all__ = [
    "ApiError",
    "ServeLimits",
    "SessionManager",
    "create_fastapi_app",
    "make_server",
    "open_session_from_spec",
    "serve",
]

#: Paths every probe (load balancer, kubelet) may hit without a token.
_UNAUTHENTICATED_PATHS = frozenset({"/v1/healthz", "/v1/readyz"})


@dataclass(frozen=True)
class ServeLimits:
    """Admission-control knobs for one server.

    ``max_sessions`` bounds the registry (creates/restores past it get
    503); ``max_inflight`` bounds queued advances per session (429 past
    it); ``deadline_s`` bounds how long one request may wait on a
    session's lock (503 past it); ``max_body_bytes`` bounds request
    bodies (413 past it); ``read_timeout_s`` bounds socket reads so a
    stalled client cannot pin a worker thread; ``retry_after_s`` is the
    hint sent with every backpressure response.
    """

    max_sessions: int = 64
    max_inflight: int = 4
    deadline_s: float = 30.0
    max_body_bytes: int = 8 * 1024 * 1024
    read_timeout_s: float = 30.0
    retry_after_s: float = 1.0


class ApiError(Exception):
    """A request error with an HTTP status (the transports map it).

    ``retry_after`` (seconds) is attached to backpressure responses
    (429/503) and becomes a ``Retry-After`` header on the wire.
    """

    def __init__(
        self, status: int, message: str, *, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def open_session_from_spec(spec: dict) -> ControlSession:
    """Build a session from a JSON-shaped spec (the POST body).

    The workload is either ``{"synthetic": {...}}`` — kwargs for
    :class:`~repro.traces.synthetic.SyntheticTraceConfig` plus an
    optional ``n_functions`` — giving a replay-mode session over a
    generated trace, or ``{"meta": {"n_functions": N,
    "horizon_minutes": H}}`` for an online session whose invocations
    arrive per ``advance()`` call. Remaining keys mirror
    :func:`~repro.serve.session.open_session`: ``policy``, ``engine``,
    ``shards``, ``faults``, ``observe`` (default **true** here — the
    metrics and decisions endpoints need telemetry), ``seed``.
    """
    if not isinstance(spec, dict):
        raise ApiError(400, "session spec must be a JSON object")
    known = {
        "synthetic", "meta", "policy", "engine", "shards", "faults",
        "observe", "seed",
    }
    unknown = sorted(set(spec) - known)
    if unknown:
        raise ApiError(
            400,
            f"unknown session spec keys: {', '.join(unknown)} "
            f"(expected some of: {', '.join(sorted(known))})",
        )
    if ("synthetic" in spec) == ("meta" in spec):
        raise ApiError(
            400,
            "session spec needs exactly one workload: 'synthetic' "
            "(replay a generated trace) or 'meta' (online invocations)",
        )
    try:
        if "meta" in spec:
            workload: Any = TraceMeta(**spec["meta"])
        else:
            from repro.traces.synthetic import (
                SyntheticTraceConfig,
                generate_trace,
            )

            workload = generate_trace(SyntheticTraceConfig(**spec["synthetic"]))
        return open_session(
            workload,
            policy=spec.get("policy", "pulse"),
            engine=spec.get("engine", "auto"),
            shards=spec.get("shards", 1),
            faults=spec.get("faults"),
            observe=spec.get("observe", True),
            seed=spec.get("seed", 0),
        )
    except ApiError:
        raise
    except (TypeError, ValueError) as exc:
        raise ApiError(400, str(exc)) from exc


class _Ticker:
    """Background thread driving one session's ``advance()`` on a
    wall-clock cadence until the horizon, a stop, or an error."""

    def __init__(self, managed: "_ManagedSession", interval_s: float) -> None:
        self.interval_s = interval_s
        self.error: str | None = None
        self._managed = managed
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"tick-{managed.sid}", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        managed = self._managed
        while not self._stop.is_set():
            with managed.lock:
                if managed.session.done:
                    break
                try:
                    managed.step(None, None)
                except Exception as exc:  # repro: lint-ok[RPR006] tick thread's crash-isolation boundary: the failure is recorded as self.error, surfaced via session info, and the thread exits its loop — raising here would kill a daemon thread silently instead
                    self.error = str(exc)
                    break
            self._stop.wait(self.interval_s)

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    @property
    def running(self) -> bool:
        return self._thread.is_alive()


class _ManagedSession:
    def __init__(
        self,
        sid: str,
        session: ControlSession,
        *,
        max_inflight: int = 4,
        journal: SessionJournal | None = None,
    ) -> None:
        self.sid = sid
        self.session = session
        self.lock = threading.Lock()
        self.gate = threading.BoundedSemaphore(max_inflight)
        self.journal = journal
        self.ticker: _Ticker | None = None
        self.n_advances = 0

    def step(
        self, minute: int | None, invocations: dict[int, int] | None
    ) -> Any:
        """Execute one advance — journal record first, then the engine.

        The caller holds ``self.lock`` (every call site acquires it;
        a timed acquire cannot be a lexical ``with``)."""
        if self.journal is not None:
            self.journal.record_advance(
                self.session.next_minute if minute is None else minute,
                invocations,
            )
        result = self.session.advance(minute, invocations)
        self.n_advances += 1  # repro: lint-ok[RPR008] caller holds self.lock — step() is only invoked with the session lock held (see advance()/_Ticker._run)
        if self.journal is not None:
            self.journal.maybe_compact(self.session)
        return result


class SessionManager:
    """The multi-tenant registry both transports route into.

    Every operation takes the target session's lock, so concurrent
    requests against one session serialize (the engines are single-
    threaded by design) while different tenants advance in parallel.
    ``limits`` adds admission control; ``journal`` adds write-ahead
    durability (see :mod:`repro.serve.journal`).
    """

    def __init__(
        self,
        *,
        limits: ServeLimits | None = None,
        journal: JournalSupervisor | None = None,
    ) -> None:
        self.limits = limits if limits is not None else ServeLimits()
        self._journal = journal
        self._sessions: dict[str, _ManagedSession] = {}
        self._registry_lock = threading.Lock()
        self._next_id = 0
        self._draining = threading.Event()

    # -- registry ----------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def journaled(self) -> bool:
        return self._journal is not None

    def _register(
        self, session: ControlSession, *, spec: dict | None = None
    ) -> dict:
        with self._registry_lock:
            if self._draining.is_set():
                raise ApiError(
                    503, "server is draining",
                    retry_after=self.limits.retry_after_s,
                )
            if len(self._sessions) >= self.limits.max_sessions:
                raise ApiError(
                    503,
                    f"session table full ({self.limits.max_sessions}); "
                    "close a session or retry later",
                    retry_after=self.limits.retry_after_s,
                )
            self._next_id += 1
            sid = f"s{self._next_id}"
            journal = (
                self._journal.create(sid, spec, session)
                if self._journal is not None
                else None
            )
            self._sessions[sid] = _ManagedSession(
                sid,
                session,
                max_inflight=self.limits.max_inflight,
                journal=journal,
            )
        return self.info(sid)

    def create(self, spec: dict) -> dict:
        return self._register(open_session_from_spec(spec), spec=spec)

    def restore(self, payload: bytes) -> dict:
        """Reopen a session from a JSON snapshot envelope (the body a
        ``/snapshot`` GET returned)."""
        try:
            state = SimulationState.from_wire_json(payload.decode("utf-8"))
        except ValueError as exc:
            raise ApiError(400, f"undecodable snapshot payload: {exc}") from exc
        try:
            return self._register(ControlSession.restore(state), spec=None)
        except ValueError as exc:
            raise ApiError(400, str(exc)) from exc

    def recover(self) -> list[dict]:
        """Rebuild every session the journal directory holds (after a
        crash or a drain) and register them under their original ids.

        Returns the recovered sessions' info dicts. Raises
        :class:`~repro.serve.journal.JournalError` on unrecoverable
        state — silently dropping a tenant would defeat the journal.
        """
        if self._journal is None:
            raise ValueError("recover() needs a manager with a journal")
        out: list[dict] = []
        for sid in self._journal.discover():
            session, journal = self._journal.recover(sid)
            with self._registry_lock:
                if sid.startswith("s") and sid[1:].isdigit():
                    self._next_id = max(self._next_id, int(sid[1:]))
                self._sessions[sid] = _ManagedSession(
                    sid,
                    session,
                    max_inflight=self.limits.max_inflight,
                    journal=journal,
                )
            out.append(self.info(sid))
        return out

    def _get(self, sid: str) -> _ManagedSession:
        with self._registry_lock:
            try:
                return self._sessions[sid]
            except KeyError:
                raise ApiError(404, f"no session {sid!r}") from None

    def list(self) -> list[dict]:
        with self._registry_lock:
            sids = sorted(self._sessions)
        out: list[dict] = []
        for sid in sids:
            try:
                out.append(self.info(sid))
            except ApiError:
                continue  # closed between the snapshot and the read-out
        return out

    def info(self, sid: str) -> dict:
        managed = self._get(sid)
        session = managed.session
        with managed.lock:
            n_advances = managed.n_advances
            ticker = managed.ticker
            info = {
                "id": sid,
                "engine": session.engine,
                "online": session.online,
                "n_functions": session.n_functions,
                "horizon_minutes": session.horizon,
                "next_minute": session.next_minute,
                "done": session.done,
                "n_advances": n_advances,
                "ticking": ticker is not None and ticker.running,
                "tick_error": ticker.error if ticker is not None else None,
            }
        return info

    def close(self, sid: str, *, missing_ok: bool = False) -> dict:
        """Close one session (idempotent with ``missing_ok``).

        The session is popped from the registry *first*, so a double
        close — signal handler racing an HTTP DELETE — resolves to one
        winner tearing down and one clean 404/no-op, never a crash.
        """
        with self._registry_lock:
            managed = self._sessions.pop(sid, None)
        if managed is None:
            if missing_ok:
                return {"id": sid, "closed": False}
            raise ApiError(404, f"no session {sid!r}")
        with managed.lock:
            ticker = managed.ticker
            managed.ticker = None
        # stop() joins the tick thread, whose loop acquires managed.lock
        # — calling it under that lock would deadlock until the join
        # timeout.
        if ticker is not None:
            ticker.stop()
        if managed.journal is not None:
            with managed.lock:
                # An explicit close means there is nothing left to
                # recover; the journal files go with the session.
                managed.journal.delete()
        return {"id": sid, "closed": True}

    def close_all(self) -> None:
        """Close every session; idempotent and safe to race handlers."""
        with self._registry_lock:
            sids = list(self._sessions)
        for sid in sids:
            self.close(sid, missing_ok=True)

    def drain(self) -> None:
        """Graceful shutdown: refuse new work, stop tickers, let
        in-flight advances finish, then snapshot + fsync every session.

        Journal and snapshot files are *kept* (unlike :meth:`close`):
        a drained directory is a valid ``--recover`` source, so a
        deploy can SIGTERM one process and recover in the next.
        Idempotent — a second drain (signal racing the finally block)
        finds no tickers and re-compacts identical state.
        """
        self._draining.set()
        with self._registry_lock:
            managed_all = list(self._sessions.values())
        # Tickers first, *before* taking any session lock for the
        # snapshot pass: stop() joins a loop that needs managed.lock,
        # so detaching under the lock and joining outside is the only
        # deadlock-free order.
        tickers: list[_Ticker] = []
        for managed in managed_all:
            with managed.lock:
                ticker = managed.ticker
                managed.ticker = None
            if ticker is not None:
                tickers.append(ticker)
        for ticker in tickers:
            ticker.stop()
        for managed in managed_all:
            with managed.lock:
                if managed.journal is not None:
                    managed.journal.compact(managed.session)
                    managed.journal.close()

    # -- stepping ----------------------------------------------------------

    def advance(self, sid: str, body: dict | None = None) -> dict:
        if self._draining.is_set():
            raise ApiError(
                503, "server is draining",
                retry_after=self.limits.retry_after_s,
            )
        body = body or {}
        managed = self._get(sid)
        invocations = body.get("invocations")
        if isinstance(invocations, dict):
            # JSON object keys are strings; fids are ints.
            invocations = {int(k): v for k, v in invocations.items()}
        if not managed.gate.acquire(blocking=False):
            raise ApiError(
                429,
                f"session {sid} already has {self.limits.max_inflight} "
                "advances in flight",
                retry_after=self.limits.retry_after_s,
            )
        try:
            if not managed.lock.acquire(timeout=self.limits.deadline_s):
                raise ApiError(
                    503,
                    f"session {sid} stayed busy past the "
                    f"{self.limits.deadline_s:g}s request deadline",
                    retry_after=self.limits.retry_after_s,
                )
            try:
                result = managed.step(body.get("minute"), invocations)
            except ValueError as exc:
                raise ApiError(409, str(exc)) from exc
            finally:
                managed.lock.release()
        finally:
            managed.gate.release()
        return dict(result.as_dict())

    def tick(self, sid: str, body: dict | None = None) -> dict:
        body = body or {}
        managed = self._get(sid)
        action = body.get("action", "start")
        if action == "start":
            if self._draining.is_set():
                raise ApiError(
                    503, "server is draining",
                    retry_after=self.limits.retry_after_s,
                )
            interval_ms = body.get("interval_ms", 1000)
            if not isinstance(interval_ms, (int, float)) or interval_ms < 0:
                raise ApiError(400, f"bad interval_ms: {interval_ms!r}")
            with managed.lock:
                if managed.ticker is not None and managed.ticker.running:
                    raise ApiError(409, f"session {sid} is already ticking")
                # Safe under the lock: the new thread's first advance
                # blocks on managed.lock until we release it.
                managed.ticker = _Ticker(managed, interval_ms / 1000.0)
        elif action == "stop":
            with managed.lock:
                ticker = managed.ticker
            # Join outside managed.lock — the tick loop needs it to
            # finish its in-flight advance.
            if ticker is not None:
                ticker.stop()
        else:
            raise ApiError(400, f"tick action must be start|stop, got {action!r}")
        return self.info(sid)

    # -- read-outs ---------------------------------------------------------

    def metrics(self, sid: str) -> str:
        managed = self._get(sid)
        with managed.lock:
            obs = managed.session.stepper.obs
            try:
                return render_prometheus(obs)
            except ValueError as exc:
                raise ApiError(409, str(exc)) from exc

    def snapshot(self, sid: str) -> str:
        """The session's state as a JSON snapshot envelope (see
        :meth:`~repro.runtime.checkpoint.SimulationState.to_wire_json`)."""
        managed = self._get(sid)
        with managed.lock:
            state = managed.session.snapshot()
        return state.to_wire_json()

    def decisions(
        self, sid: str, fid: int | None = None, kind: str | None = None
    ) -> list[dict]:
        managed = self._get(sid)
        with managed.lock:
            return managed.session.decisions(fid, kind=kind)

    def result(self, sid: str) -> dict:
        managed = self._get(sid)
        with managed.lock:
            session = managed.session
            if not session.done:
                raise ApiError(
                    409,
                    f"session {sid} has only reached minute "
                    f"{session.next_minute} of {session.horizon}; "
                    "advance it to the horizon first",
                )
            summary = session.result().summary()
        return dict(summary)


# -- stdlib transport --------------------------------------------------------
class _ControlPlaneServer(ThreadingHTTPServer):
    """The control-plane HTTP server: a ``ThreadingHTTPServer`` with the
    attached :class:`SessionManager` reachable as ``server.manager``.

    Multi-tenant control planes see bursts of simultaneous connects
    (every tenant advancing each minute); the stdlib default backlog of
    5 drops connections under that load.
    """

    request_queue_size = 128
    daemon_threads = True
    manager: SessionManager


#: One route: (HTTP verb, path pattern, handler(match, query, body)).
_RouteHandler = Callable[
    ["dict[str, str]", "dict[str, list[str]]", bytes], Any
]


def make_server(
    host: str = "127.0.0.1",
    *,
    port: int = 0,
    manager: SessionManager | None = None,
    token: str | None = None,
    limits: ServeLimits | None = None,
) -> _ControlPlaneServer:
    """A ready-to-run ``ThreadingHTTPServer`` serving the v1 API.

    Returns the server; call ``serve_forever()`` (typically on a
    thread) and ``shutdown()`` to stop. ``port=0`` binds an ephemeral
    port (``server.server_address`` has the real one) — what the tests
    and the smoke driver use. The attached manager is reachable as
    ``server.manager``.

    With ``token`` set, every route except the health probes requires
    ``Authorization: Bearer <token>`` (compared constant-time) and
    answers 401 otherwise. ``limits`` overrides the manager's limits
    for the transport-level knobs (body size, read timeout) when the
    manager was built elsewhere.
    """
    manager = manager if manager is not None else SessionManager(limits=limits)
    limits = limits if limits is not None else manager.limits

    _SID = r"(?P<sid>[A-Za-z0-9_-]+)"
    routes: list[tuple[str, re.Pattern[str], _RouteHandler]] = [
        ("GET", re.compile(r"^/v1/healthz$"),
         lambda m, q, b: {"status": "ok"}),
        ("GET", re.compile(r"^/v1/readyz$"),
         lambda m, q, b: _readyz(manager)),
        ("GET", re.compile(r"^/v1/sessions$"),
         lambda m, q, b: {"sessions": manager.list()}),
        ("POST", re.compile(r"^/v1/sessions$"),
         lambda m, q, b: manager.create(_json_body(b))),
        ("POST", re.compile(r"^/v1/sessions/restore$"),
         lambda m, q, b: manager.restore(b)),
        ("GET", re.compile(rf"^/v1/sessions/{_SID}$"),
         lambda m, q, b: manager.info(m["sid"])),
        ("DELETE", re.compile(rf"^/v1/sessions/{_SID}$"),
         lambda m, q, b: manager.close(m["sid"])),
        ("POST", re.compile(rf"^/v1/sessions/{_SID}/advance$"),
         lambda m, q, b: manager.advance(m["sid"], _json_body(b, {}))),
        ("POST", re.compile(rf"^/v1/sessions/{_SID}/tick$"),
         lambda m, q, b: manager.tick(m["sid"], _json_body(b, {}))),
        ("GET", re.compile(rf"^/v1/sessions/{_SID}/metrics$"),
         lambda m, q, b: _Raw(
             manager.metrics(m["sid"]).encode(),
             "text/plain; version=0.0.4; charset=utf-8",
         )),
        ("GET", re.compile(rf"^/v1/sessions/{_SID}/snapshot$"),
         lambda m, q, b: _Raw(
             manager.snapshot(m["sid"]).encode(), "application/json"
         )),
        ("GET", re.compile(rf"^/v1/sessions/{_SID}/decisions$"),
         lambda m, q, b: {
             "decisions": manager.decisions(
                 m["sid"],
                 int(q["fid"][0]) if "fid" in q else None,
                 q["kind"][0] if "kind" in q else None,
             )
         }),
        ("GET", re.compile(rf"^/v1/sessions/{_SID}/result$"),
         lambda m, q, b: manager.result(m["sid"])),
    ]

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # Socket timeout for the whole exchange: a client that stalls
        # mid-headers or mid-body cannot pin a worker thread forever.
        timeout = limits.read_timeout_s

        def log_message(self, format: str, *args: Any) -> None:
            pass  # quiet by default

        def _dispatch(self, method: str) -> None:
            from urllib.parse import parse_qs, urlsplit

            split = urlsplit(self.path)
            if not self._authorized(split.path):
                return
            try:
                body = self._read_body()
            except ApiError as exc:
                self._send_api_error(exc)
                return
            query = parse_qs(split.query)
            for verb, pattern, handler in routes:
                if verb != method:
                    continue
                match = pattern.match(split.path)
                if match is None:
                    continue
                try:
                    payload = handler(match.groupdict(), query, body)
                except ApiError as exc:
                    self._send_api_error(exc)
                except Exception as exc:  # repro: lint-ok[RPR006] HTTP crash-isolation boundary: an engine bug becomes a structured 500 for this one request and the server keeps serving other tenants; re-raising would tear down the worker thread with nothing on the wire
                    self._send_json(
                        500, {"error": f"internal: {exc}", "status": 500}
                    )
                else:
                    if isinstance(payload, _Raw):
                        self._send_raw(200, payload.value, payload.ctype)
                    else:
                        self._send_json(200, payload)
                return
            self._send_json(
                404,
                {"error": f"no route {method} {split.path}", "status": 404},
            )

        def _authorized(self, path: str) -> bool:
            if token is None or path in _UNAUTHENTICATED_PATHS:
                return True
            supplied = self.headers.get("Authorization", "")
            if supplied.startswith("Bearer ") and hmac.compare_digest(
                supplied[len("Bearer "):].encode(), token.encode()
            ):
                return True
            self._send_raw(
                401,
                json.dumps(
                    {"error": "missing or invalid bearer token",
                     "status": 401}
                ).encode(),
                "application/json",
                extra_headers=(("WWW-Authenticate", "Bearer"),),
            )
            return False

        def _read_body(self) -> bytes:
            """Read the request body defensively: bad or oversized
            ``Content-Length`` and truncated/stalled uploads become
            structured errors instead of hung or corrupted workers."""
            raw = self.headers.get("Content-Length")
            if raw is None:
                return b""
            try:
                length = int(raw)
            except ValueError:
                raise ApiError(400, f"bad Content-Length: {raw!r}") from None
            if length < 0:
                raise ApiError(400, f"bad Content-Length: {raw!r}")
            if length > limits.max_body_bytes:
                self.close_connection = True
                raise ApiError(
                    413,
                    f"request body of {length} bytes exceeds the "
                    f"{limits.max_body_bytes}-byte limit",
                )
            if length == 0:
                return b""
            try:
                body = self.rfile.read(length)
            except TimeoutError:
                self.close_connection = True
                raise ApiError(
                    408, "timed out reading the request body"
                ) from None
            if len(body) != length:
                # The connection byte-stream is now unframed; drop it.
                self.close_connection = True
                raise ApiError(
                    400,
                    f"truncated request body: got {len(body)} of "
                    f"{length} bytes",
                )
            return body

        def _send_api_error(self, exc: ApiError) -> None:
            extra: list[tuple[str, str]] = []
            if exc.retry_after is not None:
                extra.append(("Retry-After", f"{exc.retry_after:g}"))
            self._send_raw(
                exc.status,
                json.dumps(
                    {"error": str(exc), "status": exc.status}
                ).encode(),
                "application/json",
                extra_headers=tuple(extra),
            )

        def _send_json(self, status: int, payload: Any) -> None:
            self._send_raw(
                status, json.dumps(payload).encode(), "application/json"
            )

        def _send_raw(
            self,
            status: int,
            body: bytes,
            ctype: str,
            extra_headers: tuple[tuple[str, str], ...] = (),
        ) -> None:
            try:
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                for name, value in extra_headers:
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError, TimeoutError):
                # Client vanished mid-response; nothing to send it,
                # and the byte-stream is unusable for keep-alive.
                self.close_connection = True

        def do_GET(self) -> None:
            self._dispatch("GET")

        def do_POST(self) -> None:
            self._dispatch("POST")

        def do_DELETE(self) -> None:
            self._dispatch("DELETE")

    server = _ControlPlaneServer((host, port), Handler)
    server.manager = manager
    return server


def _readyz(manager: SessionManager) -> dict:
    if manager.draining:
        raise ApiError(
            503, "draining", retry_after=manager.limits.retry_after_s
        )
    return {"status": "ready"}


class _Raw:
    """Marker wrapper: route result is pre-encoded bytes + content type."""

    def __init__(self, value: bytes, ctype: str) -> None:
        self.value = value
        self.ctype = ctype


def _json_body(body: bytes, default: Any | None = None) -> Any:
    if not body:
        if default is not None:
            return default
        raise ApiError(400, "request needs a JSON body")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise ApiError(400, f"bad JSON body: {exc}") from exc


_LOOPBACK_HOSTS = frozenset({"127.0.0.1", "::1", "localhost"})


def serve(
    host: str = "127.0.0.1",
    *,
    port: int = 8750,
    manager: SessionManager | None = None,
    token: str | None = None,
    journal_dir: str | Path | None = None,
    recover: bool = False,
    compact_every: int = 240,
    limits: ServeLimits | None = None,
) -> int:
    """Run the stdlib server until interrupted (the ``repro serve``
    entry point); returns the process exit code.

    Binds loopback by default. A non-loopback ``host`` requires
    ``token`` (snapshot restore deserializes engine state — never
    expose it unauthenticated); with a token set, every request must
    carry ``Authorization: Bearer <token>``.

    ``journal_dir`` turns on write-ahead journaling (compaction every
    ``compact_every`` session-minutes); ``recover=True`` first rebuilds
    every session the directory holds. SIGTERM (and Ctrl-C) trigger a
    graceful drain — tickers stop, in-flight advances finish, all
    sessions are snapshotted + fsynced — and the function returns 0,
    so a drained ``journal_dir`` is always a valid ``--recover`` source.
    """
    if host not in _LOOPBACK_HOSTS and token is None:
        raise SystemExit(
            f"repro serve: refusing to bind non-loopback host {host!r} "
            "without --token: snapshot restore deserializes engine "
            "state and must not be open to unauthenticated callers"
        )
    if manager is None:
        supervisor = (
            JournalSupervisor(journal_dir, every_minutes=compact_every)
            if journal_dir is not None
            else None
        )
        manager = SessionManager(limits=limits, journal=supervisor)
    if recover:
        if not manager.journaled:
            raise SystemExit(
                "repro serve: --recover needs --journal-dir (there is "
                "no journal to recover from)"
            )
        recovered = manager.recover()
        print(f"repro serve: recovered {len(recovered)} session(s)")
    server = make_server(
        host, port=port, manager=manager, token=token, limits=limits
    )
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port}/v1",
          flush=True)

    if threading.current_thread() is threading.main_thread():
        def _on_sigterm(signum: int, frame: Any) -> None:
            # shutdown() blocks until serve_forever()'s loop exits, and
            # this handler runs *inside* that loop's thread — a direct
            # call would deadlock. Hand it to a helper thread.
            threading.Thread(
                target=server.shutdown, name="drain-shutdown", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: interrupted, draining")
    finally:
        # Drain keeps journal/snapshot files for --recover; without a
        # journal there is nothing to persist, so just tear down.
        server.manager.drain()
        if not server.manager.journaled:
            server.manager.close_all()
        server.server_close()
    print("repro serve: drained, exiting")
    return 0


# -- FastAPI transport (optional extra) --------------------------------------
def create_fastapi_app(manager: SessionManager | None = None) -> Any:
    """The same v1 routes as an ASGI app (requires ``fastapi``).

    FastAPI is an optional extra — the stdlib transport above is the
    always-available (and test-covered) path; this factory exists for
    deployments that want uvicorn's event loop and OpenAPI docs:
    ``uvicorn --factory repro.serve.app:create_fastapi_app``. Bearer
    auth is the stdlib transport's concern; ASGI deployments terminate
    auth in middleware (uvicorn behind a proxy, or a FastAPI
    dependency), so this factory exposes the routes unauthenticated —
    bind it to loopback or wrap it before exposing it.
    """
    try:
        from fastapi import FastAPI, HTTPException, Request, Response
    except ImportError as exc:  # pragma: no cover - optional extra
        raise ImportError(
            "create_fastapi_app needs the optional 'fastapi' extra; "
            "the stdlib transport (repro.serve.app.serve) has no "
            "dependencies"
        ) from exc

    manager = manager if manager is not None else SessionManager()
    app = FastAPI(title="repro control plane", version="1")
    app.state.manager = manager

    def _guard(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        try:
            return fn(*args, **kwargs)
        except ApiError as exc:
            headers = (
                {"Retry-After": f"{exc.retry_after:g}"}
                if exc.retry_after is not None
                else None
            )
            raise HTTPException(
                exc.status, str(exc), headers=headers
            ) from exc

    @app.get("/v1/healthz")
    def healthz() -> dict:
        return {"status": "ok"}

    @app.get("/v1/readyz")
    def readyz() -> Any:
        return _guard(_readyz, manager)

    @app.get("/v1/sessions")
    def list_sessions() -> dict:
        return {"sessions": manager.list()}

    @app.post("/v1/sessions")
    def create_session(spec: dict) -> Any:
        return _guard(manager.create, spec)

    @app.post("/v1/sessions/restore")
    async def restore_session(request: Request) -> Any:
        return _guard(manager.restore, await request.body())

    @app.get("/v1/sessions/{sid}")
    def session_info(sid: str) -> Any:
        return _guard(manager.info, sid)

    @app.delete("/v1/sessions/{sid}")
    def close_session(sid: str) -> Any:
        return _guard(manager.close, sid)

    @app.post("/v1/sessions/{sid}/advance")
    def advance_session(sid: str, body: dict | None = None) -> Any:
        return _guard(manager.advance, sid, body)

    @app.post("/v1/sessions/{sid}/tick")
    def tick_session(sid: str, body: dict | None = None) -> Any:
        return _guard(manager.tick, sid, body)

    @app.get("/v1/sessions/{sid}/metrics")
    def session_metrics(sid: str) -> Any:
        return Response(
            _guard(manager.metrics, sid),
            media_type="text/plain; version=0.0.4; charset=utf-8",
        )

    @app.get("/v1/sessions/{sid}/snapshot")
    def session_snapshot(sid: str) -> Any:
        return Response(
            _guard(manager.snapshot, sid),
            media_type="application/json",
        )

    @app.get("/v1/sessions/{sid}/decisions")
    def session_decisions(sid: str, fid: int | None = None,
                          kind: str | None = None) -> Any:
        return {"decisions": _guard(manager.decisions, sid, fid, kind)}

    @app.get("/v1/sessions/{sid}/result")
    def session_result(sid: str) -> Any:
        return _guard(manager.result, sid)

    return app
