"""Async serving layer: multi-tenant HTTP control plane over sessions.

:class:`SessionManager` is the framework-agnostic core — a registry of
named :class:`~repro.serve.session.ControlSession` instances, each with
its own lock (advances serialize per session, tenants run concurrently)
and an optional auto-tick thread that drives ``advance()`` on a wall-
clock cadence. The HTTP layer is a thin JSON translation over it:

==========  =====================================  ========================
``GET``     ``/v1/healthz``                        liveness probe
``GET``     ``/v1/sessions``                       list open sessions
``POST``    ``/v1/sessions``                       open (JSON spec body)
``POST``    ``/v1/sessions/restore``               reopen from a snapshot
``GET``     ``/v1/sessions/{id}``                  session info
``DELETE``  ``/v1/sessions/{id}``                  close (stops its ticker)
``POST``    ``/v1/sessions/{id}/advance``          execute one minute
``POST``    ``/v1/sessions/{id}/tick``             start/stop auto-tick
``GET``     ``/v1/sessions/{id}/metrics``          Prometheus exposition
``GET``     ``/v1/sessions/{id}/snapshot``         pickled SimulationState
``GET``     ``/v1/sessions/{id}/decisions?fid=``   decision-trace records
``GET``     ``/v1/sessions/{id}/result``           final RunResult summary
==========  =====================================  ========================

Two transports share the manager. The **stdlib** server
(:func:`make_server`, ``http.server.ThreadingHTTPServer``) always works
and is what the test suite and ``repro serve`` exercise. When
**FastAPI** is installed (an optional extra — never required),
:func:`create_fastapi_app` builds the same routes as an ASGI app for
uvicorn/hypercorn deployment.

Snapshots cross the wire as pickles (the engine checkpoint format) —
only bind to interfaces you trust; the default is loopback.
"""

from __future__ import annotations

import itertools
import json
import pickle
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.obs.export import render_prometheus
from repro.runtime.checkpoint import SimulationState
from repro.serve.session import ControlSession, TraceMeta, open_session

__all__ = [
    "ApiError",
    "SessionManager",
    "create_fastapi_app",
    "make_server",
    "open_session_from_spec",
    "serve",
]


class ApiError(Exception):
    """A request error with an HTTP status (the transports map it)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def open_session_from_spec(spec: dict) -> ControlSession:
    """Build a session from a JSON-shaped spec (the POST body).

    The workload is either ``{"synthetic": {...}}`` — kwargs for
    :class:`~repro.traces.synthetic.SyntheticTraceConfig` plus an
    optional ``n_functions`` — giving a replay-mode session over a
    generated trace, or ``{"meta": {"n_functions": N,
    "horizon_minutes": H}}`` for an online session whose invocations
    arrive per ``advance()`` call. Remaining keys mirror
    :func:`~repro.serve.session.open_session`: ``policy``, ``engine``,
    ``shards``, ``faults``, ``observe`` (default **true** here — the
    metrics and decisions endpoints need telemetry), ``seed``.
    """
    if not isinstance(spec, dict):
        raise ApiError(400, "session spec must be a JSON object")
    known = {
        "synthetic", "meta", "policy", "engine", "shards", "faults",
        "observe", "seed",
    }
    unknown = sorted(set(spec) - known)
    if unknown:
        raise ApiError(
            400,
            f"unknown session spec keys: {', '.join(unknown)} "
            f"(expected some of: {', '.join(sorted(known))})",
        )
    if ("synthetic" in spec) == ("meta" in spec):
        raise ApiError(
            400,
            "session spec needs exactly one workload: 'synthetic' "
            "(replay a generated trace) or 'meta' (online invocations)",
        )
    try:
        if "meta" in spec:
            workload = TraceMeta(**spec["meta"])
        else:
            from repro.traces.synthetic import (
                SyntheticTraceConfig,
                generate_trace,
            )

            workload = generate_trace(SyntheticTraceConfig(**spec["synthetic"]))
        return open_session(
            workload,
            policy=spec.get("policy", "pulse"),
            engine=spec.get("engine", "auto"),
            shards=spec.get("shards", 1),
            faults=spec.get("faults"),
            observe=spec.get("observe", True),
            seed=spec.get("seed", 0),
        )
    except ApiError:
        raise
    except (TypeError, ValueError) as exc:
        raise ApiError(400, str(exc)) from exc


class _Ticker:
    """Background thread driving one session's ``advance()`` on a
    wall-clock cadence until the horizon, a stop, or an error."""

    def __init__(self, managed: "_ManagedSession", interval_s: float) -> None:
        self.interval_s = interval_s
        self.error: str | None = None
        self._managed = managed
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"tick-{managed.sid}", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        managed = self._managed
        while not self._stop.is_set():
            with managed.lock:
                if managed.session.done:
                    break
                try:
                    managed.session.advance()
                    managed.n_advances += 1
                except Exception as exc:  # surfaced via session info
                    self.error = str(exc)
                    break
            self._stop.wait(self.interval_s)

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    @property
    def running(self) -> bool:
        return self._thread.is_alive()


class _ManagedSession:
    def __init__(self, sid: str, session: ControlSession) -> None:
        self.sid = sid
        self.session = session
        self.lock = threading.Lock()
        self.ticker: _Ticker | None = None
        self.n_advances = 0


class SessionManager:
    """The multi-tenant registry both transports route into.

    Every operation takes the target session's lock, so concurrent
    requests against one session serialize (the engines are single-
    threaded by design) while different tenants advance in parallel.
    """

    def __init__(self) -> None:
        self._sessions: dict[str, _ManagedSession] = {}
        self._registry_lock = threading.Lock()
        self._ids = itertools.count(1)

    # -- registry ----------------------------------------------------------

    def _register(self, session: ControlSession) -> dict:
        with self._registry_lock:
            sid = f"s{next(self._ids)}"
            self._sessions[sid] = _ManagedSession(sid, session)
        return self.info(sid)

    def create(self, spec: dict) -> dict:
        return self._register(open_session_from_spec(spec))

    def restore(self, payload: bytes) -> dict:
        """Reopen a session from pickled :class:`SimulationState` bytes
        (the body a ``/snapshot`` GET returned)."""
        try:
            state = pickle.loads(payload)
        except Exception as exc:
            raise ApiError(400, f"undecodable snapshot payload: {exc}") from exc
        if not isinstance(state, SimulationState):
            raise ApiError(400, "snapshot payload is not a SimulationState")
        try:
            return self._register(ControlSession.restore(state))
        except ValueError as exc:
            raise ApiError(400, str(exc)) from exc

    def _get(self, sid: str) -> _ManagedSession:
        with self._registry_lock:
            try:
                return self._sessions[sid]
            except KeyError:
                raise ApiError(404, f"no session {sid!r}") from None

    def list(self) -> list[dict]:
        with self._registry_lock:
            sids = sorted(self._sessions)
        out: list[dict] = []
        for sid in sids:
            try:
                out.append(self.info(sid))
            except ApiError:
                continue  # closed between the snapshot and the read-out
        return out

    def info(self, sid: str) -> dict:
        managed = self._get(sid)
        session = managed.session
        with managed.lock:
            n_advances = managed.n_advances
            ticker = managed.ticker
            info = {
                "id": sid,
                "engine": session.engine,
                "online": session.online,
                "n_functions": session.n_functions,
                "horizon_minutes": session.horizon,
                "next_minute": session.next_minute,
                "done": session.done,
                "n_advances": n_advances,
                "ticking": ticker is not None and ticker.running,
                "tick_error": ticker.error if ticker is not None else None,
            }
        return info

    def close(self, sid: str) -> dict:
        managed = self._get(sid)
        with managed.lock:
            ticker = managed.ticker
            managed.ticker = None
        # stop() joins the tick thread, whose loop acquires managed.lock
        # — calling it under that lock would deadlock until the join
        # timeout.
        if ticker is not None:
            ticker.stop()
        with self._registry_lock:
            self._sessions.pop(sid, None)
        return {"id": sid, "closed": True}

    def close_all(self) -> None:
        with self._registry_lock:
            sids = list(self._sessions)
        for sid in sids:
            try:
                self.close(sid)
            except ApiError:
                continue  # closed concurrently

    # -- stepping ----------------------------------------------------------

    def advance(self, sid: str, body: dict | None = None) -> dict:
        body = body or {}
        managed = self._get(sid)
        invocations = body.get("invocations")
        if isinstance(invocations, dict):
            # JSON object keys are strings; fids are ints.
            invocations = {int(k): v for k, v in invocations.items()}
        with managed.lock:
            try:
                result = managed.session.advance(
                    body.get("minute"), invocations
                )
            except ValueError as exc:
                raise ApiError(409, str(exc)) from exc
            managed.n_advances += 1
        return result.as_dict()

    def tick(self, sid: str, body: dict | None = None) -> dict:
        body = body or {}
        managed = self._get(sid)
        action = body.get("action", "start")
        if action == "start":
            interval_ms = body.get("interval_ms", 1000)
            if not isinstance(interval_ms, (int, float)) or interval_ms < 0:
                raise ApiError(400, f"bad interval_ms: {interval_ms!r}")
            with managed.lock:
                if managed.ticker is not None and managed.ticker.running:
                    raise ApiError(409, f"session {sid} is already ticking")
                # Safe under the lock: the new thread's first advance
                # blocks on managed.lock until we release it.
                managed.ticker = _Ticker(managed, interval_ms / 1000.0)
        elif action == "stop":
            with managed.lock:
                ticker = managed.ticker
            # Join outside managed.lock — the tick loop needs it to
            # finish its in-flight advance.
            if ticker is not None:
                ticker.stop()
        else:
            raise ApiError(400, f"tick action must be start|stop, got {action!r}")
        return self.info(sid)

    # -- read-outs ---------------------------------------------------------

    def metrics(self, sid: str) -> str:
        managed = self._get(sid)
        with managed.lock:
            obs = managed.session.stepper.obs
            try:
                return render_prometheus(obs)
            except ValueError as exc:
                raise ApiError(409, str(exc)) from exc

    def snapshot(self, sid: str) -> bytes:
        managed = self._get(sid)
        with managed.lock:
            state = managed.session.snapshot()
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)

    def decisions(
        self, sid: str, fid: int | None = None, kind: str | None = None
    ) -> list[dict]:
        managed = self._get(sid)
        with managed.lock:
            return managed.session.decisions(fid, kind=kind)

    def result(self, sid: str) -> dict:
        managed = self._get(sid)
        with managed.lock:
            session = managed.session
            if not session.done:
                raise ApiError(
                    409,
                    f"session {sid} has only reached minute "
                    f"{session.next_minute} of {session.horizon}; "
                    "advance it to the horizon first",
                )
            summary = session.result().summary()
        return summary


# -- stdlib transport --------------------------------------------------------
class _ControlPlaneServer(ThreadingHTTPServer):
    """The control-plane HTTP server: a ``ThreadingHTTPServer`` with the
    attached :class:`SessionManager` reachable as ``server.manager``.

    Multi-tenant control planes see bursts of simultaneous connects
    (every tenant advancing each minute); the stdlib default backlog of
    5 drops connections under that load.
    """

    request_queue_size = 128
    daemon_threads = True
    manager: SessionManager


#: One route: (HTTP verb, path pattern, handler(match, query, body)).
_RouteHandler = Callable[
    ["dict[str, str]", "dict[str, list[str]]", bytes], Any
]


def make_server(
    host: str = "127.0.0.1",
    *,
    port: int = 0,
    manager: SessionManager | None = None,
) -> _ControlPlaneServer:
    """A ready-to-run ``ThreadingHTTPServer`` serving the v1 API.

    Returns the server; call ``serve_forever()`` (typically on a
    thread) and ``shutdown()`` to stop. ``port=0`` binds an ephemeral
    port (``server.server_address`` has the real one) — what the tests
    and the smoke driver use. The attached manager is reachable as
    ``server.manager``.
    """
    manager = manager if manager is not None else SessionManager()

    _SID = r"(?P<sid>[A-Za-z0-9_-]+)"
    routes: list[tuple[str, re.Pattern[str], _RouteHandler]] = [
        ("GET", re.compile(r"^/v1/healthz$"),
         lambda m, q, b: {"status": "ok"}),
        ("GET", re.compile(r"^/v1/sessions$"),
         lambda m, q, b: {"sessions": manager.list()}),
        ("POST", re.compile(r"^/v1/sessions$"),
         lambda m, q, b: manager.create(_json_body(b))),
        ("POST", re.compile(r"^/v1/sessions/restore$"),
         lambda m, q, b: manager.restore(b)),
        ("GET", re.compile(rf"^/v1/sessions/{_SID}$"),
         lambda m, q, b: manager.info(m["sid"])),
        ("DELETE", re.compile(rf"^/v1/sessions/{_SID}$"),
         lambda m, q, b: manager.close(m["sid"])),
        ("POST", re.compile(rf"^/v1/sessions/{_SID}/advance$"),
         lambda m, q, b: manager.advance(m["sid"], _json_body(b, {}))),
        ("POST", re.compile(rf"^/v1/sessions/{_SID}/tick$"),
         lambda m, q, b: manager.tick(m["sid"], _json_body(b, {}))),
        ("GET", re.compile(rf"^/v1/sessions/{_SID}/metrics$"),
         lambda m, q, b: _Text(manager.metrics(m["sid"]))),
        ("GET", re.compile(rf"^/v1/sessions/{_SID}/snapshot$"),
         lambda m, q, b: _Octets(manager.snapshot(m["sid"]))),
        ("GET", re.compile(rf"^/v1/sessions/{_SID}/decisions$"),
         lambda m, q, b: {
             "decisions": manager.decisions(
                 m["sid"],
                 int(q["fid"][0]) if "fid" in q else None,
                 q["kind"][0] if "kind" in q else None,
             )
         }),
        ("GET", re.compile(rf"^/v1/sessions/{_SID}/result$"),
         lambda m, q, b: manager.result(m["sid"])),
    ]

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args: Any) -> None:
            pass  # quiet by default

        def _dispatch(self, method: str) -> None:
            from urllib.parse import parse_qs, urlsplit

            split = urlsplit(self.path)
            query = parse_qs(split.query)
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            for verb, pattern, handler in routes:
                if verb != method:
                    continue
                match = pattern.match(split.path)
                if match is None:
                    continue
                try:
                    payload = handler(match.groupdict(), query, body)
                except ApiError as exc:
                    self._send_json(exc.status, {"error": str(exc)})
                except Exception as exc:  # engine bug: report, keep serving
                    self._send_json(500, {"error": f"internal: {exc}"})
                else:
                    if isinstance(payload, _Text):
                        self._send_raw(
                            200, payload.value.encode(),
                            "text/plain; version=0.0.4; charset=utf-8",
                        )
                    elif isinstance(payload, _Octets):
                        self._send_raw(
                            200, payload.value, "application/octet-stream"
                        )
                    else:
                        self._send_json(200, payload)
                return
            self._send_json(404, {"error": f"no route {method} {split.path}"})

        def _send_json(self, status: int, payload: Any) -> None:
            self._send_raw(
                status, json.dumps(payload).encode(), "application/json"
            )

        def _send_raw(self, status: int, body: bytes, ctype: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            self._dispatch("GET")

        def do_POST(self) -> None:
            self._dispatch("POST")

        def do_DELETE(self) -> None:
            self._dispatch("DELETE")

    server = _ControlPlaneServer((host, port), Handler)
    server.manager = manager
    return server


class _Text:
    """Marker wrapper: route result is already plain text."""

    def __init__(self, value: str) -> None:
        self.value = value


class _Octets:
    """Marker wrapper: route result is raw bytes."""

    def __init__(self, value: bytes) -> None:
        self.value = value


def _json_body(body: bytes, default: Any | None = None) -> Any:
    if not body:
        if default is not None:
            return default
        raise ApiError(400, "request needs a JSON body")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise ApiError(400, f"bad JSON body: {exc}") from exc


def serve(
    host: str = "127.0.0.1",
    *,
    port: int = 8750,
    manager: SessionManager | None = None,
) -> None:
    """Run the stdlib server until interrupted (the ``repro serve``
    entry point). Binds loopback by default — snapshots travel as
    pickles, so only expose the port to callers you trust."""
    server = make_server(host, port=port, manager=manager)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port}/v1")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.manager.close_all()
        server.server_close()


# -- FastAPI transport (optional extra) --------------------------------------
def create_fastapi_app(manager: SessionManager | None = None) -> Any:
    """The same v1 routes as an ASGI app (requires ``fastapi``).

    FastAPI is an optional extra — the stdlib transport above is the
    always-available (and test-covered) path; this factory exists for
    deployments that want uvicorn's event loop and OpenAPI docs:
    ``uvicorn --factory repro.serve.app:create_fastapi_app``.

    Engine advances hold the session lock in a worker thread (the def —
    not async def — handlers run in FastAPI's threadpool), matching the
    stdlib transport's per-session serialization.
    """
    try:
        from fastapi import FastAPI, HTTPException, Request, Response
    except ImportError as exc:  # pragma: no cover - optional extra
        raise ImportError(
            "create_fastapi_app needs the optional 'fastapi' extra; "
            "the stdlib transport (repro.serve.app.serve) has no "
            "dependencies"
        ) from exc

    manager = manager if manager is not None else SessionManager()
    app = FastAPI(title="repro control plane", version="1")
    app.state.manager = manager

    def _guard(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        try:
            return fn(*args, **kwargs)
        except ApiError as exc:
            raise HTTPException(exc.status, str(exc)) from exc

    @app.get("/v1/healthz")
    def healthz() -> dict:
        return {"status": "ok"}

    @app.get("/v1/sessions")
    def list_sessions() -> dict:
        return {"sessions": manager.list()}

    @app.post("/v1/sessions")
    def create_session(spec: dict) -> Any:
        return _guard(manager.create, spec)

    @app.post("/v1/sessions/restore")
    async def restore_session(request: Request) -> Any:
        return _guard(manager.restore, await request.body())

    @app.get("/v1/sessions/{sid}")
    def session_info(sid: str) -> Any:
        return _guard(manager.info, sid)

    @app.delete("/v1/sessions/{sid}")
    def close_session(sid: str) -> Any:
        return _guard(manager.close, sid)

    @app.post("/v1/sessions/{sid}/advance")
    def advance_session(sid: str, body: dict | None = None) -> Any:
        return _guard(manager.advance, sid, body)

    @app.post("/v1/sessions/{sid}/tick")
    def tick_session(sid: str, body: dict | None = None) -> Any:
        return _guard(manager.tick, sid, body)

    @app.get("/v1/sessions/{sid}/metrics")
    def session_metrics(sid: str) -> Any:
        return Response(
            _guard(manager.metrics, sid),
            media_type="text/plain; version=0.0.4; charset=utf-8",
        )

    @app.get("/v1/sessions/{sid}/snapshot")
    def session_snapshot(sid: str) -> Any:
        return Response(
            _guard(manager.snapshot, sid),
            media_type="application/octet-stream",
        )

    @app.get("/v1/sessions/{sid}/decisions")
    def session_decisions(sid: str, fid: int | None = None,
                          kind: str | None = None) -> Any:
        return {"decisions": _guard(manager.decisions, sid, fid, kind)}

    @app.get("/v1/sessions/{sid}/result")
    def session_result(sid: str) -> Any:
        return _guard(manager.result, sid)

    return app
